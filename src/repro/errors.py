"""Exception hierarchy for :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """Raised for invalid operations on the discrete-event kernel."""


class PlatformError(ReproError):
    """Raised for malformed platform trees or invalid mutations."""


class SolverError(ReproError):
    """Raised when steady-state analysis is given an infeasible input."""


class ProtocolError(ReproError):
    """Raised for invalid protocol configurations or engine misuse."""


class ExperimentError(ReproError):
    """Raised for invalid experiment configurations."""
