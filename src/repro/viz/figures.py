"""Render the paper's figures from experiment results as SVG documents.

Each ``figN_svg`` takes the corresponding experiment's result object (from
:mod:`repro.experiments`) and returns SVG text; :func:`save_all` runs a set
of experiments at a given scale and writes one ``figN.svg`` per figure.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from ..experiments import fig3, fig4, fig5, fig6, fig7
from ..experiments.common import ExperimentScale
from .svg import LineChart, PALETTE, StepChart

__all__ = ["fig3_svg", "fig4_svg", "fig5_svg", "fig6_svg", "fig7_svg", "save_all"]


def fig3_svg(result: "fig3.Fig3Result") -> str:
    """Figure 3 — normalized window throughput for three selected trees."""
    chart = LineChart(
        "Figure 3 — throughput over sliding growing window (IC/FB=3)",
        "tasks completed at beginning of window",
        "rate normalized to optimal steady state")
    chart.y_min, chart.y_max = 0.0, 1.3
    chart.add_hline(1.0)
    for series in result.series:
        chart.add_series(f"seed {series.seed} ({series.behaviour})",
                         series.samples)
    return chart.render()


def fig4_svg(result: "fig4.Fig4Result") -> str:
    """Figure 4 — CDF of trees reaching optimal steady state."""
    chart = LineChart(
        "Figure 4 — achieving maximal steady state",
        "number of tasks completed",
        "% of trees at optimal steady state")
    chart.y_min, chart.y_max = 0.0, 100.0
    for label, series in result.cdf.items():
        chart.add_series(label, list(zip(result.grid, series)))
    return chart.render()


def fig5_svg(result: "fig5.Fig5Result") -> str:
    """Figure 5 — the same CDFs split by computation-to-communication class."""
    chart = LineChart(
        "Figure 5 — impact of computation-to-communication ratios",
        "number of tasks completed",
        "% of trees at optimal steady state")
    chart.y_min, chart.y_max = 0.0, 100.0
    for i, x in enumerate(fig5.X_CLASSES):
        for config in fig5.FIG5_CONFIGS:
            series = result.cdf[(x, config.label)]
            chart.add_series(
                f"x={x} {config.label}",
                list(zip(result.grid, series)),
                color=PALETTE[i % len(PALETTE)],
                dashed=(config is fig5.FIG5_CONFIGS[0]))
    return chart.render()


def fig6_svg(result: "fig6.Fig6Result", *, dimension: str = "nodes") -> str:
    """Figure 6 — PDFs of tree size (``dimension='nodes'``) or depth."""
    if dimension == "nodes":
        title = "Figure 6(a) — tree size: all vs used nodes"
        x_label = "number of nodes in a tree"
        pdf, bin_width = result.node_pdf, 25
        series_map = result.node_series
    else:
        title = "Figure 6(b) — tree depth: all vs used nodes"
        x_label = "maximum depth of nodes in a tree"
        pdf, bin_width = result.depth_pdf, 4
        series_map = result.depth_series
    chart = StepChart(title, x_label, "fraction of trees")
    for label in series_map:
        lefts, fractions = pdf(label, bin_width)
        chart.add_distribution(label, lefts, fractions, bin_width)
    return chart.render()


def fig7_svg(result: "fig7.Fig7Result") -> str:
    """Figure 7 — cumulative completions under platform changes, with the
    per-phase optimal slopes as dashed references."""
    chart = LineChart(
        "Figure 7 — adaptability to platform changes (non-IC/FB=2)",
        "number of timesteps",
        "number of tasks completed")
    for i, scenario in enumerate(result.scenarios):
        chart.add_series(scenario.name, scenario.curve,
                         color=PALETTE[i % len(PALETTE)])
        # Post-change optimal slope, anchored at the change point.
        t_end, n_end = scenario.curve[-1]
        anchor_t, anchor_n = None, None
        for t, n in scenario.curve:
            if n >= 200:
                anchor_t, anchor_n = t, n
                break
        if anchor_t is not None:
            slope = float(scenario.optimal_after)
            ref = [(anchor_t, anchor_n),
                   (t_end, anchor_n + slope * (t_end - anchor_t))]
            chart.add_series(f"optimal after ({scenario.name})", ref,
                             color=PALETTE[i % len(PALETTE)], dashed=True)
    return chart.render()


def save_all(directory: str,
             scale: Optional[ExperimentScale] = None) -> Dict[str, str]:
    """Run the figure experiments and write ``fig*.svg`` into ``directory``.

    Returns figure-name → file path.  This is the programmatic face of the
    CLI's ``--svg`` option.
    """
    scale = scale if scale is not None else ExperimentScale()
    os.makedirs(directory, exist_ok=True)
    outputs = {
        "fig3": fig3_svg(fig3.run(scale)),
        "fig4": fig4_svg(fig4.run(scale)),
        "fig5": fig5_svg(fig5.run(scale)),
        "fig6a": fig6_svg(fig6.run(scale), dimension="nodes"),
        "fig7": fig7_svg(fig7.run(scale.with_trees(1))),
    }
    paths = {}
    for name, svg_text in outputs.items():
        path = os.path.join(directory, f"{name}.svg")
        with open(path, "w") as handle:
            handle.write(svg_text)
        paths[name] = path
    return paths
