"""Dependency-free SVG rendering of the paper's figures."""

from .svg import LineChart, PALETTE, StepChart, nice_ticks
from .figures import fig3_svg, fig4_svg, fig5_svg, fig6_svg, fig7_svg, save_all

__all__ = [
    "LineChart",
    "StepChart",
    "nice_ticks",
    "PALETTE",
    "fig3_svg",
    "fig4_svg",
    "fig5_svg",
    "fig6_svg",
    "fig7_svg",
    "save_all",
]
