"""Minimal, dependency-free SVG charting.

The experiment harness renders the paper's figures as standalone SVG files
(no matplotlib in the runtime environment).  Two chart types cover every
figure in the paper:

* :class:`LineChart` — multiple named series over numeric axes, with ticks,
  axis labels, an optional horizontal reference line (the "optimal rate"
  line of Figure 3) and a legend;
* :class:`StepChart` — step/бar-style probability distributions (Figure 6).

Charts produce plain SVG 1.1 text; everything is deterministic so tests can
parse the output with ``xml.etree``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import ReproError

__all__ = ["LineChart", "StepChart", "nice_ticks", "PALETTE"]

#: Color-blind-safe default palette (Okabe–Ito).
PALETTE = ("#0072B2", "#D55E00", "#009E73", "#CC79A7",
           "#E69F00", "#56B4E9", "#F0E442", "#000000")


def nice_ticks(lo: float, hi: float, target: int = 6) -> List[float]:
    """Round tick positions covering [lo, hi] (1/2/5 × 10^k spacing)."""
    if not (math.isfinite(lo) and math.isfinite(hi)):
        raise ReproError(f"non-finite axis range [{lo}, {hi}]")
    if hi < lo:
        lo, hi = hi, lo
    if hi == lo:
        hi = lo + 1
    raw_step = (hi - lo) / max(1, target - 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for multiple in (1, 2, 5, 10):
        step = multiple * magnitude
        if raw_step <= step:
            break
    first = math.floor(lo / step) * step
    ticks = []
    value = first
    while value <= hi + step * 1e-9:
        if value >= lo - step * 1e-9:
            ticks.append(round(value, 10))
        value += step
    return ticks


def _fmt(value: float) -> str:
    """Compact numeric label."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:g}"


@dataclass
class _Series:
    name: str
    points: List[Tuple[float, float]]
    color: str
    dashed: bool = False


class _Frame:
    """Shared plot-frame geometry and SVG assembly."""

    def __init__(self, title: str, x_label: str, y_label: str,
                 width: int, height: int):
        if width < 100 or height < 80:
            raise ReproError("chart too small to draw a frame")
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.width = width
        self.height = height
        self.margin_left = 62
        self.margin_right = 16
        self.margin_top = 34
        self.margin_bottom = 46

    @property
    def plot_w(self) -> int:
        return self.width - self.margin_left - self.margin_right

    @property
    def plot_h(self) -> int:
        return self.height - self.margin_top - self.margin_bottom

    def x_pos(self, x, lo, hi) -> float:
        span = (hi - lo) or 1
        return self.margin_left + (x - lo) / span * self.plot_w

    def y_pos(self, y, lo, hi) -> float:
        span = (hi - lo) or 1
        return self.margin_top + self.plot_h - (y - lo) / span * self.plot_h

    def header(self) -> List[str]:
        return [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}" '
            f'font-family="sans-serif" font-size="11">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            f'<text x="{self.width / 2:.1f}" y="18" text-anchor="middle" '
            f'font-size="13">{_esc(self.title)}</text>',
        ]

    def frame_and_axes(self, x_ticks, y_ticks, x_range, y_range) -> List[str]:
        parts = []
        x0, y0 = self.margin_left, self.margin_top
        parts.append(
            f'<rect x="{x0}" y="{y0}" width="{self.plot_w}" '
            f'height="{self.plot_h}" fill="none" stroke="#444"/>')
        for tick in x_ticks:
            px = self.x_pos(tick, *x_range)
            parts.append(
                f'<line x1="{px:.1f}" y1="{y0 + self.plot_h}" x2="{px:.1f}" '
                f'y2="{y0 + self.plot_h + 4}" stroke="#444"/>')
            parts.append(
                f'<text x="{px:.1f}" y="{y0 + self.plot_h + 16}" '
                f'text-anchor="middle">{_esc(_fmt(tick))}</text>')
        for tick in y_ticks:
            py = self.y_pos(tick, *y_range)
            parts.append(
                f'<line x1="{x0 - 4}" y1="{py:.1f}" x2="{x0}" y2="{py:.1f}" '
                f'stroke="#444"/>')
            parts.append(
                f'<text x="{x0 - 7}" y="{py + 3.5:.1f}" '
                f'text-anchor="end">{_esc(_fmt(tick))}</text>')
        parts.append(
            f'<text x="{x0 + self.plot_w / 2:.1f}" y="{self.height - 10}" '
            f'text-anchor="middle">{_esc(self.x_label)}</text>')
        parts.append(
            f'<text x="16" y="{y0 + self.plot_h / 2:.1f}" '
            f'text-anchor="middle" transform="rotate(-90 16 '
            f'{y0 + self.plot_h / 2:.1f})">{_esc(self.y_label)}</text>')
        return parts

    def legend(self, series: Sequence[_Series]) -> List[str]:
        parts = []
        x = self.margin_left + 10
        y = self.margin_top + 12
        for s in series:
            dash = ' stroke-dasharray="5 3"' if s.dashed else ""
            parts.append(
                f'<line x1="{x}" y1="{y - 3}" x2="{x + 18}" y2="{y - 3}" '
                f'stroke="{s.color}" stroke-width="2"{dash}/>')
            parts.append(
                f'<text x="{x + 23}" y="{y}">{_esc(s.name)}</text>')
            y += 15
        return parts


def _esc(text: str) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


class LineChart:
    """Multi-series line chart with axes, legend and reference lines."""

    def __init__(self, title: str, x_label: str, y_label: str,
                 width: int = 640, height: int = 400):
        self._frame = _Frame(title, x_label, y_label, width, height)
        self._series: List[_Series] = []
        self._hlines: List[Tuple[float, str]] = []
        self.y_min: Optional[float] = None
        self.y_max: Optional[float] = None

    def add_series(self, name: str, points: Sequence[Tuple[float, float]],
                   *, color: Optional[str] = None,
                   dashed: bool = False) -> "LineChart":
        """Add a named polyline (at least one point required)."""
        if not points:
            raise ReproError(f"series {name!r} has no points")
        color = color or PALETTE[len(self._series) % len(PALETTE)]
        self._series.append(_Series(name, [(float(x), float(y))
                                           for x, y in points], color, dashed))
        return self

    def add_hline(self, y: float, color: str = "#888") -> "LineChart":
        """Horizontal reference line (e.g. the optimal-rate level)."""
        self._hlines.append((float(y), color))
        return self

    def render(self) -> str:
        """Produce the SVG document text."""
        if not self._series:
            raise ReproError("chart has no series")
        xs = [x for s in self._series for x, _y in s.points]
        ys = [y for s in self._series for _x, y in s.points]
        ys += [y for y, _c in self._hlines]
        x_range = (min(xs), max(xs))
        y_lo = self.y_min if self.y_min is not None else min(ys)
        y_hi = self.y_max if self.y_max is not None else max(ys)
        if y_hi == y_lo:
            y_hi = y_lo + 1
        y_range = (y_lo, y_hi)

        frame = self._frame
        parts = frame.header()
        parts += frame.frame_and_axes(nice_ticks(*x_range),
                                      nice_ticks(*y_range),
                                      x_range, y_range)
        for y, color in self._hlines:
            py = frame.y_pos(y, *y_range)
            parts.append(
                f'<line x1="{frame.margin_left}" y1="{py:.1f}" '
                f'x2="{frame.margin_left + frame.plot_w}" y2="{py:.1f}" '
                f'stroke="{color}" stroke-dasharray="2 4"/>')
        for s in self._series:
            coords = " ".join(
                f"{frame.x_pos(x, *x_range):.1f},"
                f"{_clamp(frame.y_pos(y, *y_range), frame):.1f}"
                for x, y in s.points)
            dash = ' stroke-dasharray="5 3"' if s.dashed else ""
            parts.append(
                f'<polyline points="{coords}" fill="none" '
                f'stroke="{s.color}" stroke-width="2"{dash}/>')
        parts += frame.legend(self._series)
        parts.append("</svg>")
        return "\n".join(parts)


def _clamp(py: float, frame: _Frame) -> float:
    top = frame.margin_top
    bottom = frame.margin_top + frame.plot_h
    return min(max(py, top), bottom)


class StepChart:
    """Step-style distribution chart (used for the Figure 6 PDFs)."""

    def __init__(self, title: str, x_label: str, y_label: str,
                 width: int = 640, height: int = 400):
        self._chart = LineChart(title, x_label, y_label, width, height)
        self._chart.y_min = 0.0

    def add_distribution(self, name: str, lefts: Sequence[float],
                         fractions: Sequence[float], bin_width: float,
                         **kwargs) -> "StepChart":
        """Add one binned PDF as a step outline."""
        if len(lefts) != len(fractions):
            raise ReproError("lefts and fractions must have equal length")
        if not len(lefts):
            raise ReproError(f"distribution {name!r} is empty")
        points: List[Tuple[float, float]] = []
        for left, frac in zip(lefts, fractions):
            points.append((float(left), float(frac)))
            points.append((float(left) + float(bin_width), float(frac)))
        self._chart.add_series(name, points, **kwargs)
        return self

    def render(self) -> str:
        """Produce the SVG document text."""
        return self._chart.render()
