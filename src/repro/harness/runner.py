"""The experiments' entry point into the harness: :func:`run_seeds`.

``run_seeds`` wraps :func:`repro.harness.pool.run_supervised` with journal
replay and recording.  With no :class:`HarnessConfig` it degrades to the
pre-harness behaviour — serial-or-pool execution, fail-fast on the first
worker error — so library callers that never asked for crash safety see no
change.  With a harness it retries, survives worker death, optionally
journals every seed as it lands, and reports coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Optional, Sequence, Tuple

from ..errors import ExperimentError
from .checkpoint import CheckpointStore, config_digest
from .pool import RetryPolicy, RunCoverage, SeedFailure, run_supervised

__all__ = ["HarnessConfig", "SeedSweepOutcome", "run_seeds"]


@dataclass(frozen=True)
class HarnessConfig:
    """Crash-safety knobs shared by every ensemble entry point.

    Mirrors the CLI flags: ``--checkpoint-dir``, ``--resume``,
    ``--max-retries``, ``--seed-timeout``.
    """

    #: Directory for checkpoint journals (``None`` = no checkpointing).
    checkpoint_dir: Optional[str] = None
    #: Replay an existing journal and schedule only the missing seeds.
    resume: bool = False
    max_retries: int = 2
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.25
    seed_timeout: Optional[float] = None

    def __post_init__(self):
        if self.resume and not self.checkpoint_dir:
            raise ExperimentError("resume=True requires a checkpoint_dir")

    def policy(self) -> RetryPolicy:
        return RetryPolicy(max_retries=self.max_retries,
                           backoff_base=self.backoff_base,
                           backoff_factor=self.backoff_factor,
                           backoff_max=self.backoff_max,
                           jitter=self.jitter,
                           seed_timeout=self.seed_timeout)


@dataclass(frozen=True)
class SeedSweepOutcome:
    """Seed-ordered successful values plus the coverage report."""

    #: Seeds whose value is present, in input order.
    seeds: Tuple[int, ...]
    #: One value per entry of :attr:`seeds`.
    values: Tuple[Any, ...]
    coverage: RunCoverage


def run_seeds(worker: Callable[[int], Any], seeds: Sequence[int], *,
              experiment: str,
              config_parts: Iterable[Any] = (),
              harness: Optional[HarnessConfig] = None,
              workers: int = 1,
              progress: Optional[Callable[[int, int], None]] = None,
              meta: Optional[Dict[str, Any]] = None) -> SeedSweepOutcome:
    """Run ``worker(seed)`` over ``seeds`` crash-safely; seed-ordered result.

    ``experiment`` + ``config_parts`` identify the journal: two calls share
    per-seed records iff their :func:`~repro.harness.checkpoint.config_digest`
    matches.  ``progress(done, total)`` counts replayed seeds as already
    done, so a resumed run's counter starts where the killed run stopped.
    """
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    seeds = list(seeds)
    total = len(seeds)

    journal = None
    replayed: Dict[int, Any] = {}
    if harness is None:
        policy = RetryPolicy(max_retries=0, failfast=True)
    else:
        policy = harness.policy()
        if harness.checkpoint_dir:
            digest = config_digest(experiment, *config_parts)
            store = CheckpointStore(harness.checkpoint_dir)
            journal = store.open_journal(experiment, digest,
                                         resume=harness.resume, meta=meta)
            replayed = {s: journal.replayed[s] for s in seeds
                        if s in journal.replayed}

    if progress is not None and replayed:
        progress(len(replayed), total)
    todo = [s for s in seeds if s not in replayed]

    on_success = on_failure = None
    if journal is not None:
        def on_success(seed, value, attempts):
            journal.record_success(seed, value, attempts)

        def on_failure(failure: SeedFailure):
            journal.record_failure(failure.seed, failure.attempts,
                                   failure.kind, failure.error)

    try:
        results, failures, attempts = run_supervised(
            worker, todo, workers=workers, policy=policy,
            progress=(None if progress is None else
                      lambda done: progress(len(replayed) + done, total)),
            on_success=on_success, on_failure=on_failure)
    finally:
        if journal is not None:
            journal.close()

    coverage = RunCoverage(
        total=total,
        completed=len(results),
        skipped=len(replayed),
        failed=tuple(sorted(failures.values(), key=lambda f: f.seed)),
        attempts=tuple(sorted(attempts.items())),
    )
    merged = {**replayed, **results}
    if total and not merged:
        raise ExperimentError(
            f"{experiment}: every seed failed — {coverage.summary()}")
    ordered = tuple(s for s in seeds if s in merged)
    return SeedSweepOutcome(seeds=ordered,
                            values=tuple(merged[s] for s in ordered),
                            coverage=coverage)
