"""Crash-safe sweep harness: checkpoint/resume, supervised pools, retry.

The ensemble experiments of :mod:`repro.experiments` are hours-long at paper
scale and embarrassingly parallel by seed.  This package makes them survive
the death of any of their parts, the way checkpoint/restart does for the
long-running volunteer-computing campaigns the paper targets:

* :mod:`repro.harness.checkpoint` — an append-only JSONL journal of per-seed
  results keyed by ``(experiment, seed, config digest)``, created atomically
  (tmp file + fsync + rename) and fsynced per record, so a killed run resumes
  by replaying the journal and scheduling only the missing seeds;
* :mod:`repro.harness.pool` — a supervised replacement for the bare
  ``ProcessPoolExecutor``: detects ``BrokenProcessPool``/worker death,
  respawns the pool, retries each failed seed with exponential backoff and
  deterministic jitter, enforces a per-seed wall-clock timeout via a
  watchdog, and turns exhausted retries into structured
  :class:`~repro.harness.pool.SeedFailure` records instead of aborting;
* :mod:`repro.harness.runner` — :func:`~repro.harness.runner.run_seeds`, the
  entry point the experiments call: journal replay + supervised execution +
  a :class:`~repro.harness.pool.RunCoverage` report
  (``completed/failed/skipped``, per-seed attempts) attached to every
  experiment ``*Result``.

The harness preserves the PR 2 guarantee: ``workers=1`` and ``workers=N`` —
and now fresh vs. resumed runs — produce identical, seed-ordered results.
"""

from .checkpoint import CheckpointStore, SeedJournal, config_digest
from .pool import RetryPolicy, RunCoverage, SeedFailure, run_supervised
from .runner import HarnessConfig, SeedSweepOutcome, run_seeds

__all__ = [
    "CheckpointStore",
    "SeedJournal",
    "config_digest",
    "RetryPolicy",
    "RunCoverage",
    "SeedFailure",
    "run_supervised",
    "HarnessConfig",
    "SeedSweepOutcome",
    "run_seeds",
]
