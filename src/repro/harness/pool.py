"""Supervised seed execution: retry with backoff, watchdog, pool respawn.

:func:`run_supervised` replaces the bare ``ProcessPoolExecutor.map`` the
experiments used to fan seeds out with.  It survives everything a long sweep
can die of:

* a worker process killed by the OOM killer (or ``os._exit``) breaks the
  whole ``ProcessPoolExecutor`` — the supervisor catches the resulting
  ``BrokenProcessPool``, respawns the pool, and reschedules every in-flight
  seed;
* a seed stuck past ``seed_timeout`` trips the watchdog: the pool is killed
  and respawned, the overdue seed is charged a ``timeout`` attempt, and the
  innocent in-flight seeds are rescheduled free of charge;
* a seed that keeps failing is retried up to ``max_retries`` extra times
  with exponential backoff and deterministic per-seed jitter, then recorded
  as a structured :class:`SeedFailure` — the sweep completes and reports
  coverage instead of aborting;
* ``KeyboardInterrupt`` shuts the pool down with ``cancel_futures=True`` so
  Ctrl-C does not hang on orphaned workers.

Results are keyed by seed and re-assembled in seed order by the caller, so
supervision never perturbs the ``workers=1`` == ``workers=N`` guarantee.
"""

from __future__ import annotations

import heapq
import random
import time
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from ..errors import ExperimentError

__all__ = ["RetryPolicy", "SeedFailure", "RunCoverage", "run_supervised"]

#: Poll interval for the submit/collect loop when a watchdog is armed or
#: retries are pending (seconds).
_POLL_INTERVAL = 0.05


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try each seed before recording a structured failure."""

    #: Extra attempts after the first (0 = no retries).
    max_retries: int = 2
    #: First-retry delay in seconds; doubles (``backoff_factor``) per retry.
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    #: ± fraction of the delay added as deterministic per-seed jitter.
    jitter: float = 0.25
    #: Wall-clock seconds one attempt may run before the watchdog kills the
    #: pool (``None`` disables; only enforceable with ``workers > 1``).
    seed_timeout: Optional[float] = None
    #: Re-raise the first worker exception instead of recording a failure
    #: (the pre-harness behaviour; used when no harness is configured).
    failfast: bool = False

    def __post_init__(self):
        if self.max_retries < 0:
            raise ExperimentError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ExperimentError("invalid backoff parameters")
        if self.seed_timeout is not None and self.seed_timeout <= 0:
            raise ExperimentError(
                f"seed_timeout must be > 0, got {self.seed_timeout}")

    def delay(self, seed: int, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of ``seed``.

        Jitter is drawn from a per-(seed, attempt) PRNG so reruns sleep the
        same amount — the harness stays deterministic end to end.
        """
        if attempt < 1 or self.backoff_base == 0:
            return 0.0
        raw = min(self.backoff_max,
                  self.backoff_base * self.backoff_factor ** (attempt - 1))
        if self.jitter == 0:
            return raw
        rng = random.Random((seed << 20) ^ attempt)
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


@dataclass(frozen=True)
class SeedFailure:
    """One seed that exhausted its retries."""

    seed: int
    #: Total attempts made (first try + retries).
    attempts: int
    #: ``"exception"`` | ``"worker-death"`` | ``"timeout"``.
    kind: str
    error: str


@dataclass(frozen=True)
class RunCoverage:
    """What a supervised sweep actually covered.

    Attached to every experiment ``*Result`` produced under a harness so a
    run that lost seeds says so loudly instead of silently shrinking its
    denominator.
    """

    #: Seeds the sweep was asked for.
    total: int
    #: Seeds computed during this run.
    completed: int
    #: Seeds replayed from a checkpoint journal (resume).
    skipped: int
    #: Seeds that exhausted their retries, sorted by seed.
    failed: Tuple[SeedFailure, ...] = ()
    #: ``(seed, attempts)`` for every seed attempted this run, sorted.
    attempts: Tuple[Tuple[int, int], ...] = ()

    @property
    def ok(self) -> bool:
        return not self.failed and self.completed + self.skipped == self.total

    @property
    def failed_seeds(self) -> Tuple[int, ...]:
        return tuple(f.seed for f in self.failed)

    @property
    def retries(self) -> int:
        """Extra attempts beyond the first, summed over all seeds."""
        return sum(n - 1 for _seed, n in self.attempts if n > 1)

    def summary(self) -> str:
        text = (f"coverage: {self.completed}/{self.total} completed, "
                f"{self.skipped} resumed from checkpoint, "
                f"{len(self.failed)} failed")
        if self.retries:
            text += f", {self.retries} retried attempts"
        if self.failed:
            details = "; ".join(
                f"seed {f.seed}: {f.kind} after {f.attempts} attempts"
                for f in self.failed)
            text += f" [{details}]"
        return text

    @classmethod
    def merge(cls, coverages: Iterable["RunCoverage"]) -> "RunCoverage":
        """Combine per-class sweeps (Table 2, Figure 5) into one report."""
        coverages = [c for c in coverages if c is not None]
        return cls(
            total=sum(c.total for c in coverages),
            completed=sum(c.completed for c in coverages),
            skipped=sum(c.skipped for c in coverages),
            failed=tuple(f for c in coverages for f in c.failed),
            attempts=tuple(a for c in coverages for a in c.attempts),
        )


@dataclass
class _SupervisorState:
    results: Dict[int, Any] = field(default_factory=dict)
    failures: Dict[int, SeedFailure] = field(default_factory=dict)
    attempts: Dict[int, int] = field(default_factory=dict)


def run_supervised(worker: Callable[[int], Any], seeds: Sequence[int], *,
                   workers: int = 1,
                   policy: Optional[RetryPolicy] = None,
                   progress: Optional[Callable[[int], None]] = None,
                   on_success: Optional[Callable[[int, Any, int], None]] = None,
                   on_failure: Optional[Callable[[SeedFailure], None]] = None,
                   ) -> Tuple[Dict[int, Any], Dict[int, SeedFailure],
                              Dict[int, int]]:
    """Run ``worker(seed)`` for every seed under supervision.

    Returns ``(results, failures, attempts)`` — all keyed by seed.
    ``progress(done)`` is called as seeds settle (success or permanent
    failure); ``on_success(seed, value, attempts)`` fires the moment a seed
    completes (the journal hook — crash safety depends on it running before
    the next seed is awaited).
    """
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    policy = policy or RetryPolicy()
    state = _SupervisorState(attempts={s: 0 for s in seeds})
    settle = _settler(state, policy, progress, on_success, on_failure)
    if workers == 1:
        _run_serial(worker, seeds, policy, state, settle)
    else:
        _run_pool(worker, seeds, workers, policy, state, settle)
    return state.results, state.failures, state.attempts


def _settler(state, policy, progress, on_success, on_failure):
    """Build the shared success/permanent-failure bookkeeping closure."""
    done_count = [0]

    def settle(seed: int, value: Any = None, *,
               failure: Optional[SeedFailure] = None) -> None:
        if failure is not None:
            state.failures[seed] = failure
            if on_failure is not None:
                on_failure(failure)
        else:
            state.results[seed] = value
            if on_success is not None:
                on_success(seed, value, state.attempts[seed])
        done_count[0] += 1
        if progress is not None:
            progress(done_count[0])

    return settle


def _charge_attempt(state, policy, seed: int, kind: str, error: str,
                    settle) -> bool:
    """Count one failed attempt; settle the seed if retries are exhausted.

    Returns True when the seed should be rescheduled.
    """
    state.attempts[seed] += 1
    if state.attempts[seed] > policy.max_retries:
        settle(seed, failure=SeedFailure(seed=seed,
                                         attempts=state.attempts[seed],
                                         kind=kind, error=error))
        return False
    return True


def _run_serial(worker, seeds, policy, state, settle) -> None:
    """In-process path: retries work, the watchdog needs real processes."""
    for seed in seeds:
        while True:
            try:
                value = worker(seed)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                if policy.failfast:
                    raise
                if _charge_attempt(state, policy, seed, "exception",
                                   repr(exc), settle):
                    time.sleep(policy.delay(seed, state.attempts[seed]))
                    continue
                break
            else:
                state.attempts[seed] += 1
                settle(seed, value)
                break


def _run_pool(worker, seeds, workers, policy, state, settle) -> None:
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
    from concurrent.futures.process import BrokenProcessPool

    executor = ProcessPoolExecutor(max_workers=workers)
    #: min-heap of (ready_at monotonic time, seed) not yet submitted.
    ready: List[Tuple[float, int]] = [(0.0, s) for s in seeds]
    heapq.heapify(ready)
    inflight: Dict[Any, Tuple[int, float]] = {}  # future -> (seed, started)

    def respawn(broken_executor):
        # Kill lingering workers outright (the stuck ones a watchdog trip
        # leaves behind); shutdown alone would join them forever.
        processes = getattr(broken_executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except (OSError, ValueError):
                pass
        broken_executor.shutdown(wait=False, cancel_futures=True)
        return ProcessPoolExecutor(max_workers=workers)

    def reschedule(seed: int, delay: float) -> None:
        heapq.heappush(ready, (time.monotonic() + delay, seed))

    try:
        while ready or inflight:
            now = time.monotonic()
            while ready and ready[0][0] <= now:
                _, seed = heapq.heappop(ready)
                future = executor.submit(worker, seed)
                inflight[future] = (seed, time.monotonic())
            if not inflight:
                time.sleep(min(_POLL_INTERVAL,
                               max(0.0, ready[0][0] - time.monotonic())))
                continue

            wait_timeout = (_POLL_INTERVAL
                            if (ready or policy.seed_timeout is not None)
                            else None)
            done, _ = wait(set(inflight), timeout=wait_timeout,
                           return_when=FIRST_COMPLETED)

            pool_broken = False
            for future in done:
                seed, _started = inflight.pop(future)
                try:
                    value = future.result()
                except BrokenProcessPool as exc:
                    # The pool died under this seed (or while it was in
                    # flight); the culprit is unknowable, so every broken
                    # future is charged a worker-death attempt.
                    pool_broken = True
                    if policy.failfast:
                        raise
                    if _charge_attempt(state, policy, seed, "worker-death",
                                       repr(exc), settle):
                        reschedule(seed,
                                   policy.delay(seed, state.attempts[seed]))
                except Exception as exc:
                    if policy.failfast:
                        executor.shutdown(wait=False, cancel_futures=True)
                        raise
                    if _charge_attempt(state, policy, seed, "exception",
                                       repr(exc), settle):
                        reschedule(seed,
                                   policy.delay(seed, state.attempts[seed]))
                else:
                    state.attempts[seed] += 1
                    settle(seed, value)

            if pool_broken:
                executor = respawn(executor)

            if policy.seed_timeout is not None and inflight:
                now = time.monotonic()
                overdue = {f for f, (s, started) in inflight.items()
                           if now - started > policy.seed_timeout}
                if overdue:
                    # Kill the whole pool (a future already running cannot
                    # be cancelled); charge the overdue seeds a timeout
                    # attempt and reschedule the innocent bystanders free.
                    for future, (seed, started) in list(inflight.items()):
                        del inflight[future]
                        if future in overdue:
                            if _charge_attempt(
                                    state, policy, seed, "timeout",
                                    f"exceeded seed_timeout="
                                    f"{policy.seed_timeout}s", settle):
                                reschedule(seed, policy.delay(
                                    seed, state.attempts[seed]))
                        else:
                            reschedule(seed, 0.0)
                    executor = respawn(executor)
    except (KeyboardInterrupt, SystemExit):
        # Ctrl-C: kill workers outright and drop pending work, so the
        # final shutdown below never blocks on an orphaned worker.
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except (OSError, ValueError):
                pass
        executor.shutdown(wait=False, cancel_futures=True)
        raise
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
