"""Append-only JSONL checkpoint journals for seed-ensemble sweeps.

One journal file per ``(experiment, config digest)`` pair.  The first line is
a header record describing the run; every subsequent line records the final
outcome of one seed: either a pickled-and-base64'd payload (success) or a
structured failure.  Records carry a SHA-256 of the payload so corruption is
detected on replay rather than silently merged into results.

Durability model:

* the journal file is *created* atomically — header written to a temp file
  in the same directory, fsynced, then ``os.replace``\\ d into place — so a
  crash during creation can never leave a half-written header;
* appends are flushed and fsynced per record, so at most the final record
  can be lost to a crash;
* replay tolerates a truncated or garbled trailing line (the one a SIGKILL
  can produce mid-append) by skipping records that do not parse or whose
  digest does not match; every earlier record is still recovered.

Per-seed results depend only on ``(seed, per-seed configuration)``, never on
the ensemble size, so the digest deliberately excludes ``trees`` and
``base_seed``: resuming with a *larger* ensemble reuses every overlapping
seed already journaled.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import tempfile
from typing import Any, Dict, IO, Optional, Tuple

from ..errors import ExperimentError

__all__ = ["CheckpointStore", "SeedJournal", "config_digest",
           "atomic_write_text"]

SCHEMA_VERSION = 1


def config_digest(*parts: Any) -> str:
    """Stable hex digest of an experiment configuration.

    ``parts`` may be any values with deterministic ``repr`` (dataclasses,
    tuples, primitives).  Two runs share a journal iff their digests match.

    Workload/Application reprs fold their arrival-process and admission
    specs in (only when set — the stable-repr contract), so an open-loop
    sweep can never resume into a closed-bag journal or vice versa, and
    pre-service-mode journals keep their digests.
    """
    blob = "\x1f".join(repr(part) for part in parts)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically: tmp file + fsync + rename."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory,
                                    prefix=os.path.basename(path) + ".",
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    # Make the rename itself durable.
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def _payload_encode(value: Any) -> Tuple[str, str]:
    """Pickle → (base64 text, sha256 of the pickle)."""
    blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return (base64.b64encode(blob).decode("ascii"),
            hashlib.sha256(blob).hexdigest())


def _payload_decode(text: str, expected_sha: str) -> Any:
    blob = base64.b64decode(text.encode("ascii"))
    if hashlib.sha256(blob).hexdigest() != expected_sha:
        raise ValueError("payload digest mismatch")
    return pickle.loads(blob)


class SeedJournal:
    """One experiment's append-only per-seed result journal."""

    def __init__(self, path: str, experiment: str, digest: str,
                 meta: Optional[Dict[str, Any]] = None, *,
                 resume: bool = False):
        self.path = path
        self.experiment = experiment
        self.digest = digest
        #: seed → replayed payload (successes found on disk at open time).
        self.replayed: Dict[int, Any] = {}
        #: seed → (attempts, kind, error) for failures found on disk.
        self.replayed_failures: Dict[int, Tuple[int, str, str]] = {}
        self._handle: Optional[IO[str]] = None

        if resume and os.path.exists(path):
            self._replay()
        else:
            header = {
                "kind": "header",
                "schema": SCHEMA_VERSION,
                "experiment": experiment,
                "config_digest": digest,
                "meta": meta or {},
            }
            atomic_write_text(path, json.dumps(header, sort_keys=True) + "\n")
        self._handle = open(path, "a", encoding="utf-8")

    # ------------------------------------------------------------- replay
    def _replay(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            raise ExperimentError(
                f"checkpoint journal {self.path} is empty; delete it or run "
                "without --resume")
        try:
            header = json.loads(lines[0])
        except ValueError:
            raise ExperimentError(
                f"checkpoint journal {self.path} has a corrupt header; "
                "delete it or run without --resume") from None
        if header.get("kind") != "header":
            raise ExperimentError(
                f"checkpoint journal {self.path} does not start with a "
                "header record")
        if header.get("schema") != SCHEMA_VERSION:
            raise ExperimentError(
                f"checkpoint journal {self.path} uses schema "
                f"{header.get('schema')}, expected {SCHEMA_VERSION}")
        if header.get("config_digest") != self.digest:
            raise ExperimentError(
                f"checkpoint journal {self.path} was written by a different "
                f"configuration (digest {header.get('config_digest')!r} != "
                f"{self.digest!r}); use a fresh --checkpoint-dir or drop "
                "--resume")
        for line in lines[1:]:
            # Tolerate the torn trailing record a SIGKILL mid-append leaves.
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict) or "seed" not in record:
                continue
            seed = record["seed"]
            status = record.get("status")
            if status == "ok":
                try:
                    value = _payload_decode(record["payload"], record["sha"])
                except (KeyError, ValueError, pickle.UnpicklingError):
                    continue
                self.replayed[seed] = value
                self.replayed_failures.pop(seed, None)
            elif status == "failed":
                self.replayed_failures[seed] = (
                    record.get("attempts", 1),
                    record.get("failure_kind", "exception"),
                    record.get("error", ""))

    # ------------------------------------------------------------ appends
    def _append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            raise ExperimentError("journal is closed")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record_success(self, seed: int, value: Any, attempts: int) -> None:
        payload, sha = _payload_encode(value)
        self._append({"seed": seed, "status": "ok", "attempts": attempts,
                      "payload": payload, "sha": sha})

    def record_failure(self, seed: int, attempts: int, kind: str,
                       error: str) -> None:
        self._append({"seed": seed, "status": "failed", "attempts": attempts,
                      "failure_kind": kind, "error": error})

    # ---------------------------------------------------------- lifecycle
    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SeedJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CheckpointStore:
    """Directory of :class:`SeedJournal` files, one per experiment+config."""

    def __init__(self, directory: str):
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)

    def journal_path(self, experiment: str, digest: str) -> str:
        # One file per experiment (the digest lives in the header, not the
        # name): resuming after a config change then fails loudly with
        # "written by a different configuration" instead of silently
        # starting a fresh, empty journal beside the old one.
        del digest
        return os.path.join(self.directory, f"{experiment}.jsonl")

    def open_journal(self, experiment: str, digest: str, *,
                     resume: bool = False,
                     meta: Optional[Dict[str, Any]] = None) -> SeedJournal:
        """Open (resuming) or atomically create (fresh) a journal."""
        return SeedJournal(self.journal_path(experiment, digest),
                           experiment, digest, meta, resume=resume)
