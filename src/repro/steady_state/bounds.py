"""Buffer-requirement analysis (§2.2 limitation 1 and the Figure 2 studies).

The optimality proof of Theorem 1 assumes each node can queue every task it
has received but not yet processed; the period of the optimal schedule — and
hence the buffer bound — is governed by the least common multiple of the
rate denominators, which is *prohibitively large in practice* (the paper's
first practical limitation).  This module computes:

* :func:`schedule_period` — the exact LCM period ``t`` (with ``b = rate*t``
  tasks per period) of a tree's optimal steady-state allocation, making the
  blow-up observable;
* :func:`min_buffers_nonic_fork` — the analytic minimum number of task
  buffers the *highest-priority* child of a fork needs under
  non-interruptible communication (reproduces Figure 2's ``ceil(c_C / w_B)``
  arguments: 3 buffers in Figure 2(a), ``k+1`` in Figure 2(b));
* :func:`burst_bound` — a per-node upper estimate for arbitrary forks: the
  longest send burst to lower-priority children divided by the node's
  consumption time.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import List, Optional

from ..errors import SolverError
from ..platform.tree import PlatformTree
from .allocation import TreeAllocation, allocate

__all__ = ["schedule_period", "min_buffers_nonic_fork", "burst_bound"]


def schedule_period(allocation: TreeAllocation) -> int:
    """Exact period ``t`` of the optimal periodic schedule.

    The period is the least common multiple of the denominators of every
    positive node compute rate and edge inflow rate: after ``t`` timesteps
    each node has computed an integral number of tasks and each edge has
    carried an integral number.  For the paper's random trees this is
    usually astronomically large — which is the point.
    """
    lcm = 1
    for rate in list(allocation.compute_rates) + list(allocation.inflow_rates):
        if rate > 0:
            lcm = math.lcm(lcm, Fraction(rate).denominator)
    return lcm


def tasks_per_period(allocation: TreeAllocation) -> int:
    """Number of tasks ``b`` completed in one :func:`schedule_period`."""
    period = schedule_period(allocation)
    b = allocation.rate * period
    if b.denominator != 1:  # pragma: no cover - period construction forbids this
        raise SolverError("period does not yield an integral task count")
    return int(b)


def min_buffers_nonic_fork(c_slow, w_fast) -> int:
    """Minimum buffers the fast child needs under non-IC communication.

    While the parent's send port is pinned for ``c_slow`` timesteps
    delivering one task to a lower-priority child, the high-priority child
    consumes one task every ``w_fast`` timesteps and receives nothing, so it
    must enter the burst holding at least ``ceil(c_slow / w_fast)`` tasks.

    Figure 2(a): ``ceil(5/2) = 3``.  Figure 2(b): ``ceil((k*x+1)/x) = k+1``.
    """
    c_slow = Fraction(c_slow)
    w_fast = Fraction(w_fast)
    if c_slow <= 0 or w_fast <= 0:
        raise SolverError("c_slow and w_fast must be > 0")
    return math.ceil(c_slow / w_fast)


def burst_bound(tree: PlatformTree, node_id: int,
                allocation: Optional[TreeAllocation] = None) -> int:
    """Upper estimate of buffers node ``node_id`` needs under non-IC.

    The worst case for a child is its parent serving every lower-priority
    *used* sibling back to back: a burst of ``sum(c_j)`` timesteps during
    which the child receives nothing while consuming one task per ``W_i``
    timesteps (its subtree weight).  Returns
    ``ceil(burst / W_i) + 1`` (the ``+1`` is the task in service).  Exact
    minimums depend on the global schedule; this bound is what the protocol's
    buffer growth converges under (§3.1).
    """
    if allocation is None:
        allocation = allocate(tree)
    parent = tree.parent[node_id]
    if parent is None:
        return 1  # the root draws from the repository, one buffer suffices
    my_c = Fraction(tree.c[node_id])
    burst = Fraction(0)
    for sibling in tree.children[parent]:
        if sibling == node_id:
            continue
        sib_c = Fraction(tree.c[sibling])
        lower_priority = (sib_c, sibling) > (my_c, node_id)
        if lower_priority and allocation.inflow_rates[sibling] > 0:
            burst += sib_c
    if burst == 0:
        return 1
    my_weight = allocation.solution.subtree_weights[node_id]
    return math.ceil(burst / my_weight) + 1
