"""Top-down bandwidth-centric allocation: who computes what, at which rate.

The bottom-up solver gives each subtree's *capacity*; this module pushes the
root's achievable rate back down to individual nodes, yielding the exact
per-node compute rates and per-edge task flows of the optimal steady state.
At every node the available inflow is spent greedily in bandwidth-centric
order — the local CPU first (it costs no link time), then children by
ascending edge cost — subject to the two local constraints:

* inflow conservation: a node cannot hand out more tasks than it receives;
* send-port capacity: the time shares ``rate_i * c_i`` must sum to <= 1.

This reconstruction lets tests cross-validate the solver (flows conserve,
rates sum to the tree rate) and powers the "used subtree" statistics of
Figure 6 from theory as well as from simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Tuple

from ..errors import SolverError
from ..platform.tree import PlatformTree
from .solver import SteadyStateSolution, solve_tree

__all__ = ["allocate", "TreeAllocation"]


@dataclass(frozen=True)
class TreeAllocation:
    """Exact optimal steady-state flows for one tree."""

    tree: PlatformTree
    solution: SteadyStateSolution
    #: Per-node local compute rate (tasks per timestep).
    compute_rates: Tuple[Fraction, ...]
    #: Per-node inflow rate (tasks per timestep entering the subtree);
    #: at the root this equals the tree rate.
    inflow_rates: Tuple[Fraction, ...]

    @property
    def rate(self) -> Fraction:
        """Total task completion rate (== solver's optimal rate)."""
        return self.inflow_rates[self.tree.root]

    @property
    def used_nodes(self) -> List[int]:
        """Ids of nodes with a positive compute rate in the optimal schedule."""
        return [i for i, r in enumerate(self.compute_rates) if r > 0]

    def link_utilization(self, node_id: int) -> Fraction:
        """Fraction of time node ``node_id``'s send port is busy."""
        total = Fraction(0)
        for cid in self.tree.children[node_id]:
            total += self.inflow_rates[cid] * self.tree.c[cid]
        return total


def allocate(tree: PlatformTree,
             solution: SteadyStateSolution = None) -> TreeAllocation:
    """Compute the optimal per-node compute rates and per-edge flows.

    ``solution`` may be passed to reuse an existing :func:`solve_tree` run.
    """
    if solution is None:
        solution = solve_tree(tree)
    elif solution.tree is not tree:
        raise SolverError("solution was computed for a different tree object")

    n = tree.num_nodes
    compute = [Fraction(0)] * n
    inflow = [Fraction(0)] * n
    inflow[tree.root] = solution.rate

    for node_id in tree.bfs_order():
        available = inflow[node_id]
        # Local CPU first: costs no link time, capacity 1/w.
        local = min(available, Fraction(1) / Fraction(tree.w[node_id]))
        compute[node_id] = local
        available -= local

        link_budget = Fraction(1)  # send-port time share
        child_ids = sorted(
            tree.children[node_id],
            key=lambda cid: (Fraction(tree.c[cid]), cid),
        )
        for cid in child_ids:
            if available <= 0 or link_budget <= 0:
                break
            c = Fraction(tree.c[cid])
            capacity = Fraction(1) / solution.subtree_weights[cid]
            give = min(available, capacity, link_budget / c)
            inflow[cid] = give
            available -= give
            link_budget -= give * c

        if available > 0:
            # The bottom-up capacity guarantees the inflow is consumable.
            raise SolverError(
                f"allocation failed at node {node_id}: {available} tasks/step "
                "left over — solver and allocator disagree")

    return TreeAllocation(
        tree=tree,
        solution=solution,
        compute_rates=tuple(compute),
        inflow_rates=tuple(inflow),
    )
