"""Independent LP formulation of the steady-state problem (cross-validation).

Theorem 1 plus bottom-up composition is a *greedy* solution to what is
really a linear program over the whole tree:

maximize    Σ_i r_i                      (total task completion rate)
subject to  r_i ≤ 1/w_i                  (CPU capacity)
            f_i = r_i + Σ_{j∈child(i)} f_j      (flow conservation)
            Σ_{j∈child(i)} c_j · f_j ≤ 1        (send-port time share)
            f_i · c_i ≤ 1                        (receive-port time share)
            r_i, f_i ≥ 0

with ``f_i`` the task rate entering node *i*'s subtree (``f_root`` is the
total rate).  This module builds that LP explicitly and solves it with
scipy's HiGHS backend.  :func:`solve_tree_lp` is used by the test suite to
cross-validate :func:`repro.steady_state.solve_tree` on arbitrary trees —
the two must agree to numerical precision — and is exposed publicly as an
alternative solver for users who want the dual values (shadow prices of
links and CPUs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import SolverError
from ..platform.tree import PlatformTree

__all__ = ["solve_tree_lp", "LpSolution"]


@dataclass(frozen=True)
class LpSolution:
    """Solution of the steady-state LP."""

    #: Optimal total task rate (float; exact solver gives the Fraction).
    rate: float
    #: Per-node compute rates r_i.
    compute_rates: Tuple[float, ...]
    #: Per-node subtree inflow rates f_i (f_root == rate).
    inflow_rates: Tuple[float, ...]
    #: Shadow price of each node's send-port constraint (None if unbound).
    link_duals: Tuple[Optional[float], ...]


def solve_tree_lp(tree: PlatformTree) -> LpSolution:
    """Solve the whole-tree steady-state LP with scipy (HiGHS).

    Raises :class:`SolverError` if scipy is unavailable or the solve fails
    (the LP is always feasible — zero rates — so failures indicate numeric
    trouble, not modelling).
    """
    try:
        from scipy.optimize import linprog
    except ImportError as exc:  # pragma: no cover - scipy ships in CI env
        raise SolverError("solve_tree_lp requires scipy") from exc

    n = tree.num_nodes
    # Variables: x = [r_0..r_{n-1}, f_0..f_{n-1}]
    num_vars = 2 * n

    c = np.zeros(num_vars)
    c[:n] = -1.0  # maximize Σ r_i

    a_eq_rows: List[np.ndarray] = []
    b_eq: List[float] = []
    # Flow conservation per node: f_i - r_i - Σ f_child = 0.
    for i in range(n):
        row = np.zeros(num_vars)
        row[n + i] = 1.0
        row[i] = -1.0
        for j in tree.children[i]:
            row[n + j] = -1.0
        a_eq_rows.append(row)
        b_eq.append(0.0)

    a_ub_rows: List[np.ndarray] = []
    b_ub: List[float] = []
    send_port_row_index: List[Optional[int]] = [None] * n
    # Send-port per node: Σ c_j f_j ≤ 1 (only for nodes with children).
    for i in range(n):
        if tree.children[i]:
            row = np.zeros(num_vars)
            for j in tree.children[i]:
                row[n + j] = float(tree.c[j])
            send_port_row_index[i] = len(a_ub_rows)
            a_ub_rows.append(row)
            b_ub.append(1.0)

    bounds: List[Tuple[float, Optional[float]]] = []
    for i in range(n):
        bounds.append((0.0, 1.0 / float(tree.w[i])))  # r_i ≤ 1/w_i
    for i in range(n):
        if tree.parent[i] is None:
            bounds.append((0.0, None))  # f_root unconstrained above
        else:
            bounds.append((0.0, 1.0 / float(tree.c[i])))  # receive port

    result = linprog(
        c,
        A_ub=np.array(a_ub_rows) if a_ub_rows else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(a_eq_rows),
        b_eq=np.array(b_eq),
        bounds=bounds,
        method="highs",
    )
    if result.status != 0:
        raise SolverError(f"steady-state LP failed: {result.message}")

    x = result.x
    duals: List[Optional[float]] = [None] * n
    marginals = getattr(getattr(result, "ineqlin", None), "marginals", None)
    if marginals is not None:
        for i in range(n):
            idx = send_port_row_index[i]
            if idx is not None:
                duals[i] = float(-marginals[idx])

    return LpSolution(
        rate=float(-result.fun),
        compute_rates=tuple(float(v) for v in x[:n]),
        inflow_rates=tuple(float(v) for v in x[n:]),
        link_duals=tuple(duals),
    )
