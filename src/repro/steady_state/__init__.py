"""Optimal steady-state scheduling theory (Theorem 1 and its consequences).

* :func:`solve_fork` — Theorem 1 on a single-level fork (exact rationals);
* :func:`solve_tree` — bottom-up subtree weights for a whole platform tree;
* :func:`allocate` — top-down per-node compute rates / per-edge flows;
* :mod:`repro.steady_state.bounds` — schedule periods and buffer bounds.
"""

from .fork import (
    PARTIAL,
    SATURATED,
    STARVED,
    ChildAllocation,
    ForkSolution,
    solve_fork,
)
from .solver import SteadyStateSolution, solve_tree
from .allocation import TreeAllocation, allocate
from .bounds import burst_bound, min_buffers_nonic_fork, schedule_period, tasks_per_period
from .lp import LpSolution, solve_tree_lp
from .sensitivity import (
    CAPACITY_BOUND,
    UPLINK_BOUND,
    NodeBottleneck,
    SensitivityEntry,
    classify_bottlenecks,
    rate_sensitivity,
    top_improvements,
)

__all__ = [
    "solve_fork",
    "ForkSolution",
    "ChildAllocation",
    "SATURATED",
    "PARTIAL",
    "STARVED",
    "solve_tree",
    "SteadyStateSolution",
    "allocate",
    "TreeAllocation",
    "schedule_period",
    "tasks_per_period",
    "min_buffers_nonic_fork",
    "burst_bound",
    "solve_tree_lp",
    "LpSolution",
    "classify_bottlenecks",
    "rate_sensitivity",
    "top_improvements",
    "NodeBottleneck",
    "SensitivityEntry",
    "UPLINK_BOUND",
    "CAPACITY_BOUND",
]
