"""Bottom-up optimal steady-state analysis of a whole platform tree.

A bottom-up traversal applies Theorem 1 (:func:`repro.steady_state.fork.solve_fork`)
at every node: the computational weight ``W_i`` of the subtree rooted at
node *i* is the fork solution of *i* with its children's subtree weights,
clamped by *i*'s own uplink cost ``c_i``.  The root's ``W`` is the tree's
optimal computational weight ``w_tree``; its reciprocal is the optimal
steady-state task completion rate the autonomous protocols try to reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..errors import SolverError
from ..platform.tree import PlatformTree
from .fork import ForkSolution, solve_fork

__all__ = ["solve_tree", "SteadyStateSolution"]


@dataclass(frozen=True)
class SteadyStateSolution:
    """Optimal steady-state analysis of one platform tree."""

    #: The analysed platform (snapshot reference; not copied).
    tree: PlatformTree
    #: Per-node subtree computational weight ``W_i`` (time per task).
    subtree_weights: Tuple[Fraction, ...]
    #: Per-node fork solutions (leaf forks have no children).
    forks: Tuple[ForkSolution, ...]

    @property
    def w_tree(self) -> Fraction:
        """Optimal computational weight of the whole tree."""
        return self.subtree_weights[self.tree.root]

    @property
    def rate(self) -> Fraction:
        """Optimal steady-state task completion rate (tasks per timestep)."""
        return 1 / self.w_tree

    def subtree_rate(self, node_id: int) -> Fraction:
        """Maximal consumption rate of the subtree rooted at ``node_id``."""
        return 1 / self.subtree_weights[node_id]

    def fork(self, node_id: int) -> ForkSolution:
        """The Theorem-1 solution at ``node_id``."""
        return self.forks[node_id]


def solve_tree(tree: PlatformTree) -> SteadyStateSolution:
    """Compute the optimal steady-state rate of ``tree`` (exact).

    Runs in one postorder pass; every node's fork is solved with its
    children's already-computed subtree weights, so the whole analysis is
    ``O(V log V)`` (the log from sorting children by edge cost).
    """
    n = tree.num_nodes
    weights: List[Optional[Fraction]] = [None] * n
    forks: List[Optional[ForkSolution]] = [None] * n

    for node_id in tree.postorder():
        child_ids = tree.children[node_id]
        children = [(tree.c[cid], weights[cid]) for cid in child_ids]
        if any(w is None for _c, w in children):  # pragma: no cover - defensive
            raise SolverError("postorder traversal visited a parent before a child")
        solution = solve_fork(tree.w[node_id], children, c0=tree.c[node_id])
        forks[node_id] = solution
        weights[node_id] = solution.w_tree

    return SteadyStateSolution(
        tree=tree,
        subtree_weights=tuple(weights),  # type: ignore[arg-type]
        forks=tuple(forks),  # type: ignore[arg-type]
    )
