"""Bottleneck and sensitivity analysis of the optimal steady-state rate.

Theorem 1 tells us the rate; operators want to know *what to upgrade*.
This module answers two questions exactly (rational arithmetic throughout):

* :func:`classify_bottlenecks` — for every node, is its subtree's weight
  pinned by its **uplink** (``W_i = c_i``, bandwidth-bound) or by its
  **consumption capacity** (compute/port-bound)?  Which children does the
  optimal schedule starve?
* :func:`rate_sensitivity` — the exact change of the whole-tree optimal
  rate if one node's ``w`` or one edge's ``c`` improved by a given factor.
  Improving off-critical resources yields exactly zero — the analysis makes
  the *bandwidth-centric* insight quantitative: a starving child's CPU
  speed is worthless, its link is everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..errors import SolverError
from ..platform.tree import PlatformTree
from .fork import STARVED
from .solver import SteadyStateSolution, solve_tree

__all__ = [
    "classify_bottlenecks",
    "rate_sensitivity",
    "top_improvements",
    "NodeBottleneck",
    "SensitivityEntry",
    "UPLINK_BOUND",
    "CAPACITY_BOUND",
]

#: The subtree cannot consume faster than its uplink delivers (``W = c``).
UPLINK_BOUND = "uplink-bound"
#: The subtree's own compute + send-port capacity is the limit.
CAPACITY_BOUND = "capacity-bound"


@dataclass(frozen=True)
class NodeBottleneck:
    """Bottleneck classification of one node's subtree."""

    node: int
    #: :data:`UPLINK_BOUND` or :data:`CAPACITY_BOUND`.
    kind: str
    #: Children the optimal schedule sends nothing to (their whole subtrees
    #: idle regardless of compute power).
    starved_children: Tuple[int, ...]


def classify_bottlenecks(tree: PlatformTree,
                         solution: Optional[SteadyStateSolution] = None
                         ) -> List[NodeBottleneck]:
    """Classify every node's subtree as uplink- or capacity-bound."""
    if solution is None:
        solution = solve_tree(tree)
    elif solution.tree is not tree:
        raise SolverError("solution was computed for a different tree object")
    out = []
    for node_id in range(tree.num_nodes):
        fork = solution.forks[node_id]
        kind = UPLINK_BOUND if fork.bandwidth_limited else CAPACITY_BOUND
        child_ids = tree.children[node_id]
        starved = tuple(child_ids[alloc.index]
                        for alloc in fork.children if alloc.status == STARVED)
        out.append(NodeBottleneck(node_id, kind, starved))
    return out


@dataclass(frozen=True)
class SensitivityEntry:
    """Rate effect of improving one resource by the given factor."""

    #: "w" (a node's CPU) or "c" (a node's uplink edge).
    attribute: str
    node: int
    #: The improved weight that was evaluated.
    new_value: Fraction
    #: Exact rate delta (>= 0; improving a weight never hurts).
    rate_delta: Fraction


def rate_sensitivity(tree: PlatformTree,
                     improvement: Fraction = Fraction(9, 10)
                     ) -> List[SensitivityEntry]:
    """Exact rate deltas for scaling each ``w``/``c`` by ``improvement``.

    ``improvement`` must be in (0, 1); the default evaluates a 10 % speedup
    of each resource in turn (one exact re-solve each, so ``O(V^2 log V)``
    overall — fine for the paper's ≤500-node platforms).
    """
    improvement = Fraction(improvement)
    if not 0 < improvement < 1:
        raise SolverError(
            f"improvement must be a factor in (0, 1), got {improvement}")
    base_rate = solve_tree(tree).rate
    entries: List[SensitivityEntry] = []
    for node_id in range(tree.num_nodes):
        new_w = Fraction(tree.w[node_id]) * improvement
        variant = tree.copy()
        variant.set_compute_weight(node_id, new_w)
        delta = solve_tree(variant).rate - base_rate
        entries.append(SensitivityEntry("w", node_id, new_w, delta))
        if tree.parent[node_id] is not None:
            new_c = Fraction(tree.c[node_id]) * improvement
            variant = tree.copy()
            variant.set_edge_cost(node_id, new_c)
            delta = solve_tree(variant).rate - base_rate
            entries.append(SensitivityEntry("c", node_id, new_c, delta))
    return entries


def top_improvements(tree: PlatformTree, k: int = 5,
                     improvement: Fraction = Fraction(9, 10)
                     ) -> List[SensitivityEntry]:
    """The ``k`` single-resource upgrades with the largest rate gain."""
    if k < 1:
        raise SolverError(f"k must be >= 1, got {k}")
    entries = rate_sensitivity(tree, improvement)
    entries.sort(key=lambda e: (-e.rate_delta, e.attribute, e.node))
    return entries[:k]
