"""Theorem 1: optimal steady-state rate of a single-level fork.

Consider a node ``P0`` with per-task compute time ``w0``, an uplink that
delivers at most one task per ``c0`` time units (``c0 = 0`` ⇒ unlimited, the
root case), and children ``P1..Pk`` where child *i* has communication time
``c_i`` and (subtree) computational weight ``w_i``.  Then the minimal
computational weight of the fork is::

    sort children so that c_1 <= c_2 <= ... <= c_k
    p = largest index with sum_{i<=p} c_i / w_i <= 1
    eps = 1 - sum_{i<=p} c_i / w_i     (0 if p == k)
    w_fork = max(c0, 1 / (1/w0 + sum_{i<=p} 1/w_i + eps / c_{p+1}))

Intuition: feeding child *i* at its full consumption rate ``1/w_i`` keeps the
parent's single send port busy a fraction ``c_i/w_i`` of the time; the
*bandwidth-centric* order (cheapest edges first) packs the most task
deliveries into the port (a fractional knapsack with unit value and weight
``c_i``), the next child gets the leftover fraction ``eps``, and the rest
starve regardless of their compute power.  The ``c0`` term caps the fork at
its own arrival rate.

All arithmetic is exact (:class:`fractions.Fraction`), which downstream lets
the onset detector compare measured rates with the optimum without floating
point ties.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from numbers import Real
from typing import Iterable, List, Sequence, Tuple, Union

from ..errors import SolverError

__all__ = ["solve_fork", "ForkSolution", "ChildAllocation",
           "SATURATED", "PARTIAL", "STARVED"]

#: Child fed at its full consumption rate ``1/w_i``.
SATURATED = "saturated"
#: Child fed with the leftover link fraction ``eps``.
PARTIAL = "partial"
#: Child receives no tasks in the optimal steady state.
STARVED = "starved"

NumberLike = Union[int, float, Fraction]


def _fraction(value: NumberLike, what: str) -> Fraction:
    try:
        return Fraction(value)
    except (TypeError, ValueError) as exc:
        raise SolverError(f"{what} is not a number: {value!r}") from exc


@dataclass(frozen=True)
class ChildAllocation:
    """Steady-state role of one child in the optimal fork schedule."""

    #: Position in the caller's original child sequence.
    index: int
    #: Communication time of the child's edge.
    c: Fraction
    #: Computational weight of the child('s subtree).
    w: Fraction
    #: Task rate the optimal schedule delivers to this child.
    rate: Fraction
    #: Fraction of the parent's send port consumed (``rate * c``).
    link_share: Fraction
    #: One of :data:`SATURATED`, :data:`PARTIAL`, :data:`STARVED`.
    status: str


@dataclass(frozen=True)
class ForkSolution:
    """Output of :func:`solve_fork`."""

    #: Parent compute weight.
    w0: Fraction
    #: Uplink communication time (0 means no uplink constraint).
    c0: Fraction
    #: Per-child allocations, in bandwidth-centric (sorted) order.
    children: Tuple[ChildAllocation, ...]
    #: Number of fully-fed (saturated) children.
    p: int
    #: Leftover send-port fraction handed to child ``p+1``.
    epsilon: Fraction
    #: Optimal computational weight of the fork, ``max(c0, 1/raw_rate)``.
    w_tree: Fraction
    #: Optimal steady-state task rate, ``1 / w_tree``.
    rate: Fraction
    #: Rate before the ``c0`` cap (the fork's consumption capacity).
    uncapped_rate: Fraction

    @property
    def bandwidth_limited(self) -> bool:
        """True when the uplink ``c0``, not consumption capacity, binds."""
        return self.c0 > 0 and Fraction(1, 1) / self.uncapped_rate < self.c0

    def allocation_by_index(self, index: int) -> ChildAllocation:
        """Allocation of the child at the caller's original ``index``."""
        for child in self.children:
            if child.index == index:
                return child
        raise SolverError(f"no child with index {index}")


def solve_fork(w0: NumberLike, children: Sequence[Tuple[NumberLike, NumberLike]],
               c0: NumberLike = 0) -> ForkSolution:
    """Apply Theorem 1 to a single-level fork.

    Parameters
    ----------
    w0:
        Parent's per-task compute time (> 0).
    children:
        ``(c_i, w_i)`` pairs; ``c_i`` edge cost (> 0), ``w_i`` the child's
        (subtree) computational weight (> 0).
    c0:
        Parent's uplink communication time; 0 disables the arrival cap
        (the root of a tree).

    Returns the exact :class:`ForkSolution`.
    """
    w0 = _fraction(w0, "w0")
    c0 = _fraction(c0, "c0")
    if w0 <= 0:
        raise SolverError(f"w0 must be > 0, got {w0}")
    if c0 < 0:
        raise SolverError(f"c0 must be >= 0, got {c0}")

    parsed: List[Tuple[Fraction, Fraction, int]] = []
    for idx, (ci, wi) in enumerate(children):
        ci = _fraction(ci, f"child {idx} c")
        wi = _fraction(wi, f"child {idx} w")
        if ci <= 0:
            raise SolverError(f"child {idx}: c must be > 0, got {ci}")
        if wi <= 0:
            raise SolverError(f"child {idx}: w must be > 0, got {wi}")
        parsed.append((ci, wi, idx))

    # Bandwidth-centric order; original index breaks ties deterministically
    # (any tie order yields the same optimum — fractional knapsack).
    parsed.sort(key=lambda t: (t[0], t[2]))

    one = Fraction(1)
    used_link = Fraction(0)
    rate = one / w0
    allocations: List[ChildAllocation] = []
    p = 0
    epsilon = Fraction(0)
    partial_assigned = False

    for ci, wi, idx in parsed:
        share = ci / wi  # link fraction to keep this child saturated
        if not partial_assigned and used_link + share <= 1:
            used_link += share
            child_rate = one / wi
            rate += child_rate
            p += 1
            allocations.append(ChildAllocation(
                idx, ci, wi, child_rate, share, SATURATED))
        elif not partial_assigned:
            epsilon = one - used_link
            child_rate = epsilon / ci
            rate += child_rate
            used_link = one
            partial_assigned = True
            status = PARTIAL if child_rate > 0 else STARVED
            allocations.append(ChildAllocation(
                idx, ci, wi, child_rate, epsilon, status))
        else:
            allocations.append(ChildAllocation(
                idx, ci, wi, Fraction(0), Fraction(0), STARVED))

    uncapped_rate = rate
    w_tree = max(c0, one / rate)
    return ForkSolution(
        w0=w0,
        c0=c0,
        children=tuple(allocations),
        p=p,
        epsilon=epsilon,
        w_tree=w_tree,
        rate=one / w_tree,
        uncapped_rate=uncapped_rate,
    )
