"""Node- and edge-weighted rooted trees modelling heterogeneous platforms.

The paper's formal model is a tree ``T = (V, E, w, c)``: node weight ``w_i``
is the time node *i* needs to compute one task, edge weight ``c_i`` the time
to ship one task (input data plus returned result) from *i*'s parent down to
*i*.  Larger values mean slower resources.  The root holds the task
repository; it has no parent edge.

:class:`PlatformTree` stores the tree in flat parallel arrays (parent id,
edge cost, node weight, children lists) for cheap traversal by the
steady-state solver and the protocol engine, and offers validated
construction, traversals, structural queries, deep copies and mutation of
weights (the dynamic-platform experiments of §4.2.3 rewrite ``c``/``w``
mid-run).
"""

from __future__ import annotations

from numbers import Real
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import PlatformError

__all__ = ["PlatformTree", "TreeNode"]

Weight = Real  # ints keep virtual time exact; floats/Fractions also accepted


class TreeNode:
    """Read-only convenience view of one node of a :class:`PlatformTree`."""

    __slots__ = ("tree", "id")

    def __init__(self, tree: "PlatformTree", node_id: int):
        self.tree = tree
        self.id = node_id

    @property
    def w(self) -> Weight:
        """Computation time of one task at this node."""
        return self.tree.w[self.id]

    @property
    def c(self) -> Weight:
        """Communication time from the parent (0 for the root)."""
        return self.tree.c[self.id]

    @property
    def parent(self) -> Optional["TreeNode"]:
        """Parent node view, or ``None`` at the root."""
        pid = self.tree.parent[self.id]
        return None if pid is None else TreeNode(self.tree, pid)

    @property
    def children(self) -> List["TreeNode"]:
        """Child node views in id order."""
        return [TreeNode(self.tree, cid) for cid in self.tree.children[self.id]]

    @property
    def is_root(self) -> bool:
        return self.tree.parent[self.id] is None

    @property
    def is_leaf(self) -> bool:
        return not self.tree.children[self.id]

    @property
    def depth(self) -> int:
        """Number of edges on the path to the root."""
        return self.tree.depth(self.id)

    def __repr__(self) -> str:  # pragma: no cover
        return f"TreeNode(id={self.id}, w={self.w}, c={self.c})"


class PlatformTree:
    """A rooted platform tree with per-node compute and per-edge transfer costs.

    Parameters
    ----------
    w:
        Sequence of node weights; ``w[i] > 0`` is the per-task compute time
        of node ``i``.
    edges:
        ``(parent, child, cost)`` triples; every node except ``root`` must
        appear exactly once as a child, costs must be positive.
    root:
        Id of the repository node (default 0).

    The node ids are ``0 .. len(w)-1``.
    """

    __slots__ = ("w", "c", "parent", "children", "root", "_depths")

    def __init__(self, w: Sequence[Weight],
                 edges: Iterable[Tuple[int, int, Weight]], root: int = 0):
        n = len(w)
        if n == 0:
            raise PlatformError("a platform tree needs at least one node")
        if not 0 <= root < n:
            raise PlatformError(f"root id {root} out of range 0..{n - 1}")
        for i, wi in enumerate(w):
            if not wi > 0:
                raise PlatformError(f"node {i}: compute weight must be > 0, got {wi!r}")

        self.w: List[Weight] = list(w)
        self.c: List[Weight] = [0] * n  # c[root] stays 0 (no parent edge)
        self.parent: List[Optional[int]] = [None] * n
        self.children: List[List[int]] = [[] for _ in range(n)]
        self.root = root
        self._depths: Optional[List[int]] = None

        edge_count = 0
        for parent, child, cost in edges:
            if not 0 <= parent < n or not 0 <= child < n:
                raise PlatformError(f"edge ({parent}, {child}) references unknown node")
            if child == root:
                raise PlatformError("the root cannot have a parent edge")
            if self.parent[child] is not None:
                raise PlatformError(f"node {child} has two parents")
            if not cost > 0:
                raise PlatformError(
                    f"edge ({parent}, {child}): cost must be > 0, got {cost!r}")
            self.parent[child] = parent
            self.c[child] = cost
            self.children[parent].append(child)
            edge_count += 1

        # Reachability first: a disconnected component — whether a
        # self-consistent extra tree (forest) or a cycle — shows up as
        # nodes the root cannot reach, and naming them beats a generic
        # edge-count complaint.
        reached = set(self.bfs_order())
        if len(reached) != n:
            unreachable = sorted(set(range(n)) - reached)
            raise PlatformError(
                f"edges do not form a single tree: nodes unreachable from "
                f"root {root}: {unreachable}")
        if edge_count != n - 1:  # backstop; single-parent rule makes this rare
            raise PlatformError(
                f"a tree on {n} nodes needs exactly {n - 1} edges, got {edge_count}")

    # ----------------------------------------------------------- factories
    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[int, int, Weight]],
                   w, root: int = 0) -> "PlatformTree":
        """Build a tree from an edge list plus per-node weights.

        ``w`` may be a sequence indexed by node id or a mapping
        ``id → weight``; the node count is inferred from the weights and
        the edge endpoints.  Connectivity is checked by root-reachability
        BFS (in the constructor), so a forest — an extra component that is
        internally self-consistent — is rejected with a
        :class:`PlatformError` naming the unreachable nodes rather than a
        misleading edge-count/cycle complaint.
        """
        edges = list(edges)
        if isinstance(w, dict):
            ids = set(w)
            for p, ch, _c in edges:
                ids.add(p)
                ids.add(ch)
            ids.add(root)
            n = max(ids) + 1
            missing = sorted(i for i in range(n) if i not in w)
            if missing:
                raise PlatformError(f"missing weights for nodes {missing}")
            weights = [w[i] for i in range(n)]
        else:
            weights = list(w)
        return cls(weights, edges, root=root)

    @classmethod
    def single_node(cls, w: Weight) -> "PlatformTree":
        """A platform consisting of only the repository node."""
        return cls([w], [])

    @classmethod
    def fork(cls, w0: Weight, children: Sequence[Tuple[Weight, Weight]]) -> "PlatformTree":
        """Single-level fork: root plus children given as ``(c_i, w_i)`` pairs.

        This is the shape Theorem 1 is stated on.
        """
        w = [w0] + [wi for _ci, wi in children]
        edges = [(0, i + 1, ci) for i, (ci, _wi) in enumerate(children)]
        return cls(w, edges)

    @classmethod
    def linear_chain(cls, weights: Sequence[Weight],
                     costs: Sequence[Weight]) -> "PlatformTree":
        """A path ``0 → 1 → … → n-1``; ``costs[i]`` is the edge into node i+1."""
        if len(costs) != len(weights) - 1:
            raise PlatformError("need exactly len(weights)-1 costs for a chain")
        edges = [(i, i + 1, costs[i]) for i in range(len(costs))]
        return cls(weights, edges)

    # ------------------------------------------------------------- queries
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the tree."""
        return len(self.w)

    def node(self, node_id: int) -> TreeNode:
        """A :class:`TreeNode` view of node ``node_id``."""
        if not 0 <= node_id < self.num_nodes:
            raise PlatformError(f"no node {node_id}")
        return TreeNode(self, node_id)

    def nodes(self) -> Iterator[TreeNode]:
        """Iterate node views in id order."""
        return (TreeNode(self, i) for i in range(self.num_nodes))

    @property
    def leaves(self) -> List[int]:
        """Ids of all leaf nodes."""
        return [i for i in range(self.num_nodes) if not self.children[i]]

    def depth(self, node_id: int) -> int:
        """Edge distance from the root to ``node_id`` (cached)."""
        if self._depths is None:
            depths = [0] * self.num_nodes
            for nid in self.bfs_order():
                pid = self.parent[nid]
                if pid is not None:
                    depths[nid] = depths[pid] + 1
            self._depths = depths
        return self._depths[node_id]

    @property
    def max_depth(self) -> int:
        """Depth of the deepest node."""
        return max(self.depth(i) for i in range(self.num_nodes))

    def bfs_order(self) -> Iterator[int]:
        """Node ids in breadth-first order from the root."""
        queue = [self.root]
        idx = 0
        while idx < len(queue):
            nid = queue[idx]
            idx += 1
            queue.extend(self.children[nid])
            yield nid

    def postorder(self) -> Iterator[int]:
        """Node ids with every child before its parent (solver order)."""
        order = list(self.bfs_order())
        return reversed(order)

    def subtree_ids(self, node_id: int) -> List[int]:
        """All ids in the subtree rooted at ``node_id`` (inclusive)."""
        out = [node_id]
        idx = 0
        while idx < len(out):
            out.extend(self.children[out[idx]])
            idx += 1
        return out

    def path_to_root(self, node_id: int) -> List[int]:
        """Ids from ``node_id`` up to and including the root."""
        path = [node_id]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])
        return path

    def edges(self) -> Iterator[Tuple[int, int, Weight]]:
        """Iterate ``(parent, child, cost)`` triples in child-id order."""
        for child in range(self.num_nodes):
            pid = self.parent[child]
            if pid is not None:
                yield (pid, child, self.c[child])

    # ----------------------------------------------------------- mutation
    def set_edge_cost(self, node_id: int, cost: Weight) -> None:
        """Set the cost of the edge from ``node_id``'s parent (in place)."""
        if self.parent[node_id] is None:
            raise PlatformError("the root has no parent edge")
        if not cost > 0:
            raise PlatformError(f"edge cost must be > 0, got {cost!r}")
        self.c[node_id] = cost

    def set_compute_weight(self, node_id: int, w: Weight) -> None:
        """Set node ``node_id``'s per-task compute time (in place)."""
        if not 0 <= node_id < self.num_nodes:
            raise PlatformError(f"no node {node_id}")
        if not w > 0:
            raise PlatformError(f"compute weight must be > 0, got {w!r}")
        self.w[node_id] = w

    def attach_subtree(self, parent_id: int, subtree: "PlatformTree",
                       cost: Weight) -> Dict[int, int]:
        """Graft ``subtree`` below ``parent_id`` (in place).

        The subtree's root is connected to ``parent_id`` with edge ``cost``;
        its nodes get fresh ids appended after the current ones.  Returns
        the mapping from subtree-local ids to new ids.  This is the
        structural half of the paper's claim that "it is very
        straightforward to add subtrees of nodes below any currently
        connected node".
        """
        if not 0 <= parent_id < self.num_nodes:
            raise PlatformError(f"no node {parent_id} to attach under")
        if not cost > 0:
            raise PlatformError(f"attach cost must be > 0, got {cost!r}")
        base = self.num_nodes
        order = list(subtree.bfs_order())
        mapping = {old: base + i for i, old in enumerate(order)}
        for old in order:
            new = mapping[old]
            self.w.append(subtree.w[old])
            self.children.append([])
            old_parent = subtree.parent[old]
            if old_parent is None:
                self.parent.append(parent_id)
                self.c.append(cost)
                self.children[parent_id].append(new)
            else:
                new_parent = mapping[old_parent]
                self.parent.append(new_parent)
                self.c.append(subtree.c[old])
                self.children[new_parent].append(new)
        self._depths = None
        return mapping

    def pruned(self, node_id: int) -> "PlatformTree":
        """A new tree with the subtree rooted at ``node_id`` removed.

        Node ids are relabelled to stay contiguous (order preserved).
        Pruning the root is an error — there would be nothing left.
        """
        return self.pruned_many([node_id])

    def pruned_many(self, node_ids: Iterable[int]) -> "PlatformTree":
        """A new tree with the subtrees rooted at ``node_ids`` removed.

        Each id removes its whole subtree, so passing every member of an
        already-closed set (e.g. the crashed nodes of a run) is fine.
        Node ids are relabelled to stay contiguous (order preserved).
        """
        removed: set = set()
        for node_id in node_ids:
            if node_id == self.root:
                raise PlatformError("cannot prune the root")
            if not 0 <= node_id < self.num_nodes:
                raise PlatformError(f"no node {node_id}")
            if node_id not in removed:
                removed.update(self.subtree_ids(node_id))
        keep = [i for i in range(self.num_nodes) if i not in removed]
        relabel = {old: new for new, old in enumerate(keep)}
        w = [self.w[i] for i in keep]
        edges = [(relabel[p], relabel[ch], c) for p, ch, c in self.edges()
                 if ch not in removed and p not in removed]
        return PlatformTree(w, edges, root=relabel[self.root])

    def copy(self) -> "PlatformTree":
        """Deep copy (weights and structure)."""
        clone = object.__new__(PlatformTree)
        clone.w = list(self.w)
        clone.c = list(self.c)
        clone.parent = list(self.parent)
        clone.children = [list(ch) for ch in self.children]
        clone.root = self.root
        clone._depths = None
        return clone

    # ------------------------------------------------------------- dunder
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlatformTree):
            return NotImplemented
        return (self.root == other.root and self.w == other.w
                and self.c == other.c and self.parent == other.parent)

    def __hash__(self) -> int:
        return hash((self.root, tuple(self.w), tuple(self.c), tuple(self.parent)))

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover
        return (f"PlatformTree(nodes={self.num_nodes}, root={self.root}, "
                f"max_depth={self.max_depth})")
