"""Abrupt failures: node crashes, link outages, fabric faults.

Where :mod:`repro.platform.churn` models *graceful* departures (a subtree
drains and loses no work), this module models the ungraceful churn that
dominates volunteer/dispersed platforms: a node dies instantly — its
buffered and in-flight tasks vanish — or a link goes down for an interval,
killing the transfer it was carrying.  The protocol engine consumes these
events and runs the autonomous recovery protocol (see
``docs/protocol.md``): parents detect dead or unreachable children via a
request-liveness timeout with exponential backoff, lost tasks are
reclaimed into the root's repository and re-dispensed, and children are
demoted and re-admitted as links fail and heal.

Tree-addressed events (the PR 1 model — a fault is "a node" or "a node's
parent link"):

* :class:`CrashEvent` — at a virtual time, the subtree rooted at ``node``
  dies abruptly: every buffered task, every task on a CPU, and every
  transfer in flight inside (or into) the subtree is lost;
* :class:`LinkFailureEvent` — at a virtual time, the edge from ``node``'s
  parent goes down: the transfer it carries (if any) is lost, and the
  subtree below keeps computing what it holds but can receive no new work;
* :class:`LinkRepairEvent` — the edge comes back up; the child re-announces
  its outstanding requests and is re-admitted by its parent.

Graph-addressed events (for :class:`~repro.platform.graph.PlatformGraph`
runs, where a fault is a *routed* event — one failed fabric link degrades
every flow crossing it):

* :class:`EdgeFailureEvent` / :class:`EdgeRepairEvent` — a physical link,
  addressed by its dense link id, goes down / comes back.  Flows crossing
  it are killed (the in-flight tasks are lost) and the affected overlay
  edges re-route around it; hosts left with no route to the source *park*
  until the partition heals;
* :class:`SwitchCrashEvent` — a pure forwarding node dies permanently:
  every incident link goes down at once (the leaf-spine "switch failure"
  regime of datacenter fabric models);
* :class:`DegradeEvent` — a link's bandwidth is multiplied by ``factor``
  for ``duration`` timesteps, then restored.  Routing is unaffected (the
  link still carries traffic); only the flows crossing it re-settle.

On a graph run, tree-addressed events remain a validated special case:
``CrashEvent(node)`` kills the single *host* ``node`` (its overlay
children survive, re-parent, and re-route — unlike the tree engine, which
has no routes to fall back on and loses the whole subtree), and
``LinkFailureEvent``/``LinkRepairEvent`` target the one physical link of
the overlay route into ``node`` (an error when that route is multi-hop —
address the fabric link directly with :class:`EdgeFailureEvent`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Set, Union

from ..errors import PlatformError
from .tree import PlatformTree

__all__ = [
    "CrashEvent",
    "LinkFailureEvent",
    "LinkRepairEvent",
    "EdgeFailureEvent",
    "EdgeRepairEvent",
    "SwitchCrashEvent",
    "DegradeEvent",
    "FaultSchedule",
    "chaos_schedule",
]


@dataclass(frozen=True)
class CrashEvent:
    """The subtree rooted at ``node`` (tree runs) — or the single host
    ``node`` (graph runs) — dies abruptly at ``at_time``."""

    at_time: int
    node: int

    def __post_init__(self):
        if self.at_time < 0:
            raise PlatformError("at_time must be >= 0")
        if self.node < 0:
            raise PlatformError("node id must be >= 0")


@dataclass(frozen=True)
class LinkFailureEvent:
    """The edge from ``node``'s parent to ``node`` goes down at ``at_time``."""

    at_time: int
    node: int

    def __post_init__(self):
        if self.at_time < 0:
            raise PlatformError("at_time must be >= 0")
        if self.node < 0:
            raise PlatformError("node id must be >= 0")


@dataclass(frozen=True)
class LinkRepairEvent:
    """The edge from ``node``'s parent to ``node`` comes back at ``at_time``."""

    at_time: int
    node: int

    def __post_init__(self):
        if self.at_time < 0:
            raise PlatformError("at_time must be >= 0")
        if self.node < 0:
            raise PlatformError("node id must be >= 0")


@dataclass(frozen=True)
class EdgeFailureEvent:
    """Physical link ``link`` (a graph link id) goes down at ``at_time``."""

    at_time: int
    link: int

    def __post_init__(self):
        if self.at_time < 0:
            raise PlatformError("at_time must be >= 0")
        if self.link < 0:
            raise PlatformError("link id must be >= 0")


@dataclass(frozen=True)
class EdgeRepairEvent:
    """Physical link ``link`` comes back up at ``at_time``."""

    at_time: int
    link: int

    def __post_init__(self):
        if self.at_time < 0:
            raise PlatformError("at_time must be >= 0")
        if self.link < 0:
            raise PlatformError("link id must be >= 0")


@dataclass(frozen=True)
class SwitchCrashEvent:
    """Switch ``node`` dies permanently at ``at_time``: every incident
    link goes down at once and never repairs."""

    at_time: int
    node: int

    def __post_init__(self):
        if self.at_time < 0:
            raise PlatformError("at_time must be >= 0")
        if self.node < 0:
            raise PlatformError("node id must be >= 0")


@dataclass(frozen=True)
class DegradeEvent:
    """Link ``link``'s bandwidth is multiplied by ``factor`` (a Fraction
    in ``(0, 1)``) for ``duration`` timesteps, then restored.  Routing is
    unaffected; flows crossing the link re-settle at the new capacity."""

    at_time: int
    link: int
    factor: Fraction
    duration: int

    def __post_init__(self):
        if self.at_time < 0:
            raise PlatformError("at_time must be >= 0")
        if self.link < 0:
            raise PlatformError("link id must be >= 0")
        factor = self.factor
        if not isinstance(factor, Fraction):
            if isinstance(factor, int):
                factor = Fraction(factor)
            else:
                raise PlatformError(
                    "degrade factor must be an exact Fraction (floats would "
                    f"break fingerprint determinism), got {factor!r}")
            object.__setattr__(self, "factor", factor)
        if not 0 < factor < 1:
            raise PlatformError(
                f"degrade factor must be in (0, 1), got {factor}")
        if self.duration <= 0:
            raise PlatformError(
                f"degrade duration must be > 0, got {self.duration}")

    @property
    def ends_at(self) -> int:
        return self.at_time + self.duration


FaultEvent = Union[CrashEvent, LinkFailureEvent, LinkRepairEvent,
                   EdgeFailureEvent, EdgeRepairEvent, SwitchCrashEvent,
                   DegradeEvent]


#: Deterministic rank of same-time events: link failures apply first, then
#: repairs, then crashes.  Failure-before-repair makes a same-instant
#: fail/repair pair on an up link a well-defined zero-length blip (and a
#: repair+fail pair on a *down* link a deterministic validation error
#: instead of an insertion-order coin flip); crashes run last so link
#: events always act on a node that is still alive at that instant.  The
#: graph-addressed kinds extend the ranking with the same failure <
#: repair < crash shape (degrades last: they act on links that are still
#: up after every same-instant topology change has been applied), and all
#: tree-addressed kinds sort before graph-addressed ones so existing tree
#: schedules keep their exact byte order.
_EVENT_RANK = {LinkFailureEvent: 0, LinkRepairEvent: 1, CrashEvent: 2,
               EdgeFailureEvent: 3, EdgeRepairEvent: 4, SwitchCrashEvent: 5,
               DegradeEvent: 6}

#: Event kinds addressed by graph link id rather than node id.
_LINK_ADDRESSED = (EdgeFailureEvent, EdgeRepairEvent, DegradeEvent)


def _sort_id(event: FaultEvent) -> int:
    """The id component of the ``(at_time, kind, id)`` total order."""
    if isinstance(event, _LINK_ADDRESSED):
        return event.link
    return event.node


class FaultSchedule:
    """Time-ordered crashes, link outages, and fabric faults for one run.

    Events are normalized to a deterministic total order
    ``(at_time, kind, id)`` — kind ranked failure < repair < crash for the
    tree-addressed events, then edge-failure < edge-repair < switch-crash
    < degrade for the graph-addressed ones — so schedules built from
    differently-ordered event lists behave identically, and
    same-``at_time`` overlaps have one defined meaning (see
    ``_EVENT_RANK``).
    """

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self.events: List[FaultEvent] = sorted(
            events,
            key=lambda e: (e.at_time, _EVENT_RANK[type(e)], _sort_id(e)))

    def has_graph_events(self) -> bool:
        """Whether any event is graph-addressed (edge/switch/degrade)."""
        return any(isinstance(e, _LINK_ADDRESSED + (SwitchCrashEvent,))
                   for e in self.events)

    def validate(self, tree: PlatformTree) -> None:
        """Static checks against the *initial* tree.

        Faults may reference nodes added by earlier churn joins, so
        id-range checks happen when an event fires; here we only reject
        what can never become valid.
        """
        down: set = set()
        crashed: set = set()
        for event in self.events:
            if isinstance(event, _LINK_ADDRESSED + (SwitchCrashEvent,)):
                raise PlatformError(
                    f"{type(event).__name__} is graph-addressed; tree runs "
                    "take node-addressed CrashEvent/LinkFailureEvent/"
                    "LinkRepairEvent only")
            if event.node == tree.root:
                raise PlatformError(
                    "the repository root cannot crash or lose its (nonexistent) "
                    "parent link")
            if isinstance(event, LinkFailureEvent):
                if event.node in crashed:
                    raise PlatformError(
                        f"link to node {event.node} fails at "
                        f"t={event.at_time}, after the node's crash — "
                        "post-crash link events would fire against a dead "
                        "subtree")
                if event.node in down:
                    raise PlatformError(
                        f"link to node {event.node} fails at t={event.at_time} "
                        "while already down")
                down.add(event.node)
            elif isinstance(event, LinkRepairEvent):
                if event.node in crashed:
                    raise PlatformError(
                        f"link to node {event.node} repaired at "
                        f"t={event.at_time}, after the node's crash — "
                        "post-crash link events would fire against a dead "
                        "subtree")
                if event.node not in down:
                    raise PlatformError(
                        f"link to node {event.node} repaired at "
                        f"t={event.at_time} but was never down")
                down.discard(event.node)
            elif isinstance(event, CrashEvent):
                crashed.add(event.node)

    def validate_graph(self, graph, overlay=None) -> None:
        """Static checks against a :class:`~repro.platform.graph.
        PlatformGraph` (and optionally the overlay the run will use).

        Rejects out-of-range link/node ids, events targeting the
        repository, switch events on hosts (and vice versa), double
        failures / spurious repairs per link — including links taken down
        permanently by a switch or host crash — overlapping degrade
        windows, and tree-addressed link events whose overlay route is
        multi-hop (those must address the fabric link directly).
        """
        num_links = graph.num_links
        host_route: Dict[int, int] = {}
        if overlay is not None:
            for oid in range(1, len(overlay.hosts)):
                route = overlay.routes[oid]
                if len(route) == 1:
                    host_route[overlay.hosts[oid]] = route[0]
        down: Set[int] = set()            # links currently failed
        dead_links: Set[int] = set()      # links gone for good (crashes)
        dead_nodes: Set[int] = set()
        degraded_until: Dict[int, int] = {}

        def _check_node(node: int) -> None:
            if not 0 <= node < graph.num_nodes:
                raise PlatformError(
                    f"fault at t={event.at_time} targets unknown node {node}")
            if node == graph.root:
                raise PlatformError(
                    "the repository root cannot crash or lose its links")
            if node in dead_nodes:
                raise PlatformError(
                    f"fault at t={event.at_time} targets node {node}, "
                    "which has already crashed")

        def _check_link(link: int) -> int:
            if not 0 <= link < num_links:
                raise PlatformError(
                    f"fault at t={event.at_time} targets unknown link {link}")
            if link in dead_links:
                raise PlatformError(
                    f"fault at t={event.at_time} targets link {link}, "
                    "which died with a crashed node and never repairs")
            return link

        def _kill_incident(node: int) -> None:
            for link_id, u, v, _cost in graph.links():
                if u == node or v == node:
                    dead_links.add(link_id)
                    down.discard(link_id)

        for event in self.events:
            if isinstance(event, EdgeFailureEvent):
                link = _check_link(event.link)
                if link in down:
                    raise PlatformError(
                        f"link {link} fails at t={event.at_time} while "
                        "already down")
                down.add(link)
            elif isinstance(event, EdgeRepairEvent):
                link = _check_link(event.link)
                if link not in down:
                    raise PlatformError(
                        f"link {link} repaired at t={event.at_time} but was "
                        "never down")
                down.discard(link)
            elif isinstance(event, DegradeEvent):
                link = _check_link(event.link)
                if degraded_until.get(link, -1) > event.at_time:
                    raise PlatformError(
                        f"link {link} degraded at t={event.at_time} while a "
                        "previous degrade window is still open")
                degraded_until[link] = event.ends_at
            elif isinstance(event, SwitchCrashEvent):
                _check_node(event.node)
                if graph.w[event.node] is not None:
                    raise PlatformError(
                        f"SwitchCrashEvent targets node {event.node}, which "
                        "is a host — use CrashEvent for hosts")
                dead_nodes.add(event.node)
                _kill_incident(event.node)
            elif isinstance(event, CrashEvent):
                _check_node(event.node)
                if graph.w[event.node] is None:
                    raise PlatformError(
                        f"CrashEvent targets node {event.node}, which is a "
                        "switch — use SwitchCrashEvent for switches")
                dead_nodes.add(event.node)
                _kill_incident(event.node)
            else:  # tree-addressed link events
                _check_node(event.node)
                if graph.w[event.node] is None:
                    raise PlatformError(
                        f"tree-addressed link event targets node "
                        f"{event.node}, which is a switch")
                if overlay is not None:
                    link = host_route.get(event.node)
                    if link is None:
                        raise PlatformError(
                            f"host {event.node}'s overlay route is "
                            "multi-hop; address the fabric link directly "
                            "with EdgeFailureEvent/EdgeRepairEvent")
                    link = _check_link(link)
                    if isinstance(event, LinkFailureEvent):
                        if link in down:
                            raise PlatformError(
                                f"link {link} (into host {event.node}) fails "
                                f"at t={event.at_time} while already down")
                        down.add(link)
                    else:
                        if link not in down:
                            raise PlatformError(
                                f"link {link} (into host {event.node}) "
                                f"repaired at t={event.at_time} but was "
                                "never down")
                        down.discard(link)

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)


# --------------------------------------------------------------- chaos
def chaos_schedule(platform, *, seed: int, events: int = 6,
                   horizon: int = 600) -> FaultSchedule:
    """Seeded random fault schedule, valid by construction.

    Draws ``events`` faults uniformly over ``[1, horizon]`` against
    ``platform`` — a :class:`PlatformTree` (node-addressed crashes and
    link fail/repair pairs) or a :class:`~repro.platform.graph.
    PlatformGraph` (edge fail/repair pairs, degrade windows, host and
    switch crashes).  Generated schedules always pass
    :meth:`FaultSchedule.validate` / :meth:`~FaultSchedule.validate_graph`:
    outages alternate per target, nothing targets the repository, and no
    event targets a node or link a crash already destroyed.  The same
    ``(platform, seed)`` pair always yields the same schedule — the chaos
    soak's reproducibility lever.
    """
    if events < 0:
        raise PlatformError(f"events must be >= 0, got {events}")
    if horizon < 2:
        raise PlatformError(f"horizon must be >= 2, got {horizon}")
    rng = random.Random(seed)
    out: List[FaultEvent] = []

    if isinstance(platform, PlatformTree):
        nodes = [n for n in range(platform.num_nodes) if n != platform.root]
        crashed: Set[int] = set()
        budget = events
        while budget > 0 and len(crashed) < len(nodes):
            t = rng.randint(1, horizon)
            node = rng.choice(nodes)
            if node in crashed:
                continue
            kind = rng.random()
            if kind < 0.35:
                # Crash the node — and refuse link events against it from
                # now on (validate()'s post-crash rule).  Crashing the
                # whole candidate pool is allowed: the root reclaims and
                # computes everything itself.
                for sub in platform.subtree_ids(node):
                    crashed.add(sub)
                out.append(CrashEvent(at_time=t, node=node))
                budget -= 1
            else:
                # A fail/repair pair wholly before any crash of the node.
                repair_at = rng.randint(t + 1, t + max(2, horizon // 2))
                out.append(LinkFailureEvent(at_time=t, node=node))
                out.append(LinkRepairEvent(at_time=repair_at, node=node))
                budget -= 1
        schedule = FaultSchedule(_drop_post_crash(out))
        schedule.validate(platform)
        return schedule

    # Graph platform.
    hosts = [h for h in platform.hosts if h != platform.root]
    switches = list(platform.switches)
    dead_nodes: Set[int] = set()
    dead_links: Set[int] = set()
    degraded_until: Dict[int, int] = {}
    budget = events
    attempts = 0
    while budget > 0 and attempts < events * 20:
        attempts += 1
        t = rng.randint(1, horizon)
        kind = rng.random()
        if kind < 0.15 and switches:
            node = rng.choice(switches)
            if node in dead_nodes:
                continue
            dead_nodes.add(node)
            for link_id, u, v, _c in platform.links():
                if u == node or v == node:
                    dead_links.add(link_id)
            out.append(SwitchCrashEvent(at_time=t, node=node))
            budget -= 1
        elif kind < 0.35 and hosts:
            node = rng.choice(hosts)
            if node in dead_nodes:
                continue
            dead_nodes.add(node)
            for link_id, u, v, _c in platform.links():
                if u == node or v == node:
                    dead_links.add(link_id)
            out.append(CrashEvent(at_time=t, node=node))
            budget -= 1
        elif kind < 0.55:
            link = rng.randrange(platform.num_links)
            if link in dead_links:
                continue
            window = degraded_until.get(link, 0)
            if window > t:
                continue
            duration = rng.randint(10, max(11, horizon // 4))
            degraded_until[link] = t + duration
            out.append(DegradeEvent(at_time=t, link=link,
                                    factor=Fraction(1, rng.randint(2, 8)),
                                    duration=duration))
            budget -= 1
        else:
            link = rng.randrange(platform.num_links)
            if link in dead_links:
                continue
            repair_at = rng.randint(t + 1, t + max(2, horizon // 2))
            out.append(EdgeFailureEvent(at_time=t, link=link))
            out.append(EdgeRepairEvent(at_time=repair_at, link=link))
            budget -= 1
    # Crashes drawn after an outage pair may have killed the pair's link
    # or node retroactively; drop the now-invalid events and re-check.
    kept: List[FaultEvent] = []
    crash_at: Dict[int, int] = {}
    link_crash_at: Dict[int, int] = {}
    for event in sorted(out, key=lambda e: (e.at_time,
                                            _EVENT_RANK[type(e)],
                                            _sort_id(e))):
        if isinstance(event, (CrashEvent, SwitchCrashEvent)):
            crash_at[event.node] = event.at_time
            for link_id, u, v, _c in platform.links():
                if u == event.node or v == event.node:
                    link_crash_at.setdefault(link_id, event.at_time)
            kept.append(event)
        elif isinstance(event, _LINK_ADDRESSED):
            if event.link in link_crash_at \
                    and event.at_time >= link_crash_at[event.link]:
                continue
            if isinstance(event, DegradeEvent) \
                    and event.link in link_crash_at \
                    and event.ends_at >= link_crash_at[event.link]:
                continue
            kept.append(event)
        else:
            kept.append(event)
    kept = _rebalance_pairs(kept)
    schedule = FaultSchedule(kept)
    schedule.validate_graph(platform)
    return schedule


def _drop_post_crash(events: List[FaultEvent]) -> List[FaultEvent]:
    """Drop tree link events landing at/after a crash of their node, and
    re-balance fail/repair alternation afterwards."""
    crash_at: Dict[int, int] = {}
    for event in events:
        if isinstance(event, CrashEvent):
            prev = crash_at.get(event.node)
            if prev is None or event.at_time < prev:
                crash_at[event.node] = event.at_time
    kept = [e for e in events
            if isinstance(e, CrashEvent)
            or e.node not in crash_at or e.at_time < crash_at[e.node]]
    return _rebalance_pairs(kept)


def _rebalance_pairs(events: List[FaultEvent]) -> List[FaultEvent]:
    """Drop repairs whose failure was dropped, and failures whose repair
    was dropped *if* leaving the link down forever would be invalid —
    permanent outages are fine, so only spurious repairs are culled."""
    ordered = sorted(events, key=lambda e: (e.at_time,
                                            _EVENT_RANK[type(e)],
                                            _sort_id(e)))
    down_nodes: Set[int] = set()
    down_links: Set[int] = set()
    kept: List[FaultEvent] = []
    for event in ordered:
        if isinstance(event, LinkFailureEvent):
            if event.node in down_nodes:
                continue
            down_nodes.add(event.node)
        elif isinstance(event, LinkRepairEvent):
            if event.node not in down_nodes:
                continue
            down_nodes.discard(event.node)
        elif isinstance(event, EdgeFailureEvent):
            if event.link in down_links:
                continue
            down_links.add(event.link)
        elif isinstance(event, EdgeRepairEvent):
            if event.link not in down_links:
                continue
            down_links.discard(event.link)
        kept.append(event)
    return kept
