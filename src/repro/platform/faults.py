"""Abrupt failures: node crashes and link outages with in-flight task loss.

Where :mod:`repro.platform.churn` models *graceful* departures (a subtree
drains and loses no work), this module models the ungraceful churn that
dominates volunteer/dispersed platforms: a node dies instantly — its
buffered and in-flight tasks vanish — or a link goes down for an interval,
killing the transfer it was carrying.  The protocol engine consumes these
events and runs the autonomous recovery protocol (see
``docs/protocol.md``): parents detect dead or unreachable children via a
request-liveness timeout with exponential backoff, lost tasks are
reclaimed into the root's repository and re-dispensed, and children are
demoted and re-admitted as links fail and heal.

* :class:`CrashEvent` — at a virtual time, the subtree rooted at ``node``
  dies abruptly: every buffered task, every task on a CPU, and every
  transfer in flight inside (or into) the subtree is lost;
* :class:`LinkFailureEvent` — at a virtual time, the edge from ``node``'s
  parent goes down: the transfer it carries (if any) is lost, and the
  subtree below keeps computing what it holds but can receive no new work;
* :class:`LinkRepairEvent` — the edge comes back up; the child re-announces
  its outstanding requests and is re-admitted by its parent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Union

from ..errors import PlatformError
from .tree import PlatformTree

__all__ = [
    "CrashEvent",
    "LinkFailureEvent",
    "LinkRepairEvent",
    "FaultSchedule",
]


@dataclass(frozen=True)
class CrashEvent:
    """The subtree rooted at ``node`` dies abruptly at ``at_time``."""

    at_time: int
    node: int

    def __post_init__(self):
        if self.at_time < 0:
            raise PlatformError("at_time must be >= 0")
        if self.node < 0:
            raise PlatformError("node id must be >= 0")


@dataclass(frozen=True)
class LinkFailureEvent:
    """The edge from ``node``'s parent to ``node`` goes down at ``at_time``."""

    at_time: int
    node: int

    def __post_init__(self):
        if self.at_time < 0:
            raise PlatformError("at_time must be >= 0")
        if self.node < 0:
            raise PlatformError("node id must be >= 0")


@dataclass(frozen=True)
class LinkRepairEvent:
    """The edge from ``node``'s parent to ``node`` comes back at ``at_time``."""

    at_time: int
    node: int

    def __post_init__(self):
        if self.at_time < 0:
            raise PlatformError("at_time must be >= 0")
        if self.node < 0:
            raise PlatformError("node id must be >= 0")


FaultEvent = Union[CrashEvent, LinkFailureEvent, LinkRepairEvent]


#: Deterministic rank of same-time events: link failures apply first, then
#: repairs, then crashes.  Failure-before-repair makes a same-instant
#: fail/repair pair on an up link a well-defined zero-length blip (and a
#: repair+fail pair on a *down* link a deterministic validation error
#: instead of an insertion-order coin flip); crashes run last so link
#: events always act on a node that is still alive at that instant.
_EVENT_RANK = {LinkFailureEvent: 0, LinkRepairEvent: 1, CrashEvent: 2}


class FaultSchedule:
    """Time-ordered crashes and link outages for one run.

    Events are normalized to a deterministic total order
    ``(at_time, kind, node)`` — kind ranked failure < repair < crash —
    so schedules built from differently-ordered event lists behave
    identically, and same-``at_time`` overlaps have one defined meaning
    (see ``_EVENT_RANK``).
    """

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self.events: List[FaultEvent] = sorted(
            events,
            key=lambda e: (e.at_time, _EVENT_RANK[type(e)], e.node))

    def validate(self, tree: PlatformTree) -> None:
        """Static checks against the *initial* tree.

        Faults may reference nodes added by earlier churn joins, so
        id-range checks happen when an event fires; here we only reject
        what can never become valid.
        """
        down: set = set()
        for event in self.events:
            if event.node == tree.root:
                raise PlatformError(
                    "the repository root cannot crash or lose its (nonexistent) "
                    "parent link")
            if isinstance(event, LinkFailureEvent):
                if event.node in down:
                    raise PlatformError(
                        f"link to node {event.node} fails at t={event.at_time} "
                        "while already down")
                down.add(event.node)
            elif isinstance(event, LinkRepairEvent):
                if event.node not in down:
                    raise PlatformError(
                        f"link to node {event.node} repaired at "
                        f"t={event.at_time} but was never down")
                down.discard(event.node)

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)
