"""General platform graphs: routed topologies with shared-link contention.

The paper's formal model is a tree; real platforms are graphs — star
platforms (Marchal/Rehn/Robert/Vivien), linear daisy chains
(Gallet/Robert/Vivien), and datacenter fabrics (leaf-spine / two-level
fat-tree networks with max-min or fair-share bandwidth allocation).
:class:`PlatformGraph` models those directly:

* **nodes** are either *hosts* (compute weight ``w > 0``, may run the
  protocol) or *switches* (``w is None`` — pure forwarding elements that
  appear only on routes);
* **links** are undirected and identified by dense ids ``0..L-1``; link
  ``i`` has per-task transfer time ``c_i > 0``, i.e. capacity
  ``1/c_i`` tasks per timestep *shared by every flow crossing it, in
  either direction* (the paper's ``c`` also bundles the forward payload
  with the returned result on one full-duplex-free link);
* **routing is static**: routes are shortest paths under summed link cost
  with deterministic tie-breaking (fewest hops, then lowest node id),
  precomputed lazily into a route table;
* **contention** on shared links is resolved by the allocators in
  :mod:`repro.platform.contention` — progressive-filling max-min by
  default, or per-link fair share (``contention="fairshare"``).

The scheduling protocols stay tree-based: a graph is simulated through an
:class:`Overlay` — a spanning tree over the *hosts* whose every overlay
edge is mapped to a physical route.  Trees embed exactly
(:meth:`PlatformGraph.from_tree` keeps their implicit parent-path routes,
one private link per overlay edge), which is what makes the tree engine a
validated special case: the graph path reproduces tree results
bit-identically (see ``tests/protocols/test_graph_equivalence.py``).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from fractions import Fraction
from numbers import Real
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import PlatformError
from .generator import PAPER_DEFAULTS, TreeGeneratorParams
from .tree import PlatformTree

__all__ = ["PlatformGraph", "Overlay", "build_overlay", "generate_platform",
           "GRAPH_TOPOLOGIES", "CONTENTION_MODES"]

Weight = Real

#: Shapes :func:`generate_platform` can draw (``tree`` is handled by the
#: classic :func:`repro.platform.generator.generate_tree`).
GRAPH_TOPOLOGIES = ("star", "chain", "leafspine")

#: Shared-link bandwidth allocation policies (see
#: :mod:`repro.platform.contention`).
CONTENTION_MODES = ("maxmin", "fairshare")


@dataclass(frozen=True)
class Overlay:
    """A spanning tree over a graph's hosts, with per-edge physical routes.

    ``tree`` relabels hosts to dense overlay ids (the root first, then
    ascending graph id — the identity mapping whenever the graph came from
    a ``root=0`` tree); ``hosts[i]`` is the graph node behind overlay node
    ``i``; ``routes[i]`` is the tuple of physical link ids the overlay
    edge *into* node ``i`` traverses (empty for the root).
    """

    tree: PlatformTree
    hosts: Tuple[int, ...]
    routes: Tuple[Tuple[int, ...], ...]

    def host_of(self, overlay_id: int) -> int:
        """Graph node id behind overlay node ``overlay_id``."""
        return self.hosts[overlay_id]


class PlatformGraph:
    """A routed platform graph with shared-link contention.

    Parameters
    ----------
    w:
        Per-node compute weights.  ``w[i] > 0`` marks a host; ``None``
        marks a switch (no compute, never a protocol agent).
    links:
        ``(u, v, cost)`` triples.  Links are undirected, self-loops and
        parallel links are rejected, costs must be ``> 0``.  Link ids are
        assigned in declaration order — they are the deterministic
        tie-breaker of the max-min allocator, so declaration order is part
        of the platform's identity.
    root:
        Repository node (must be a host).  Every node must be reachable
        from it.
    contention:
        ``"maxmin"`` (progressive filling, default) or ``"fairshare"``
        (per-link equal split, not globally work-conserving).
    meta:
        Optional generator annotations (e.g. leaf-spine group layout);
        round-tripped by serialization, never consulted by the engine.
    """

    __slots__ = ("w", "link_u", "link_v", "link_c", "adj", "root",
                 "contention", "meta", "_route_cache", "link_up", "_degrade")

    def __init__(self, w: Sequence[Optional[Weight]],
                 links: Iterable[Tuple[int, int, Weight]], root: int = 0,
                 *, contention: str = "maxmin",
                 meta: Optional[Dict[str, Any]] = None):
        n = len(w)
        if n == 0:
            raise PlatformError("a platform graph needs at least one node")
        if not 0 <= root < n:
            raise PlatformError(f"root id {root} out of range 0..{n - 1}")
        if contention not in CONTENTION_MODES:
            raise PlatformError(
                f"unknown contention mode {contention!r}; "
                f"choose from {CONTENTION_MODES}")
        for i, wi in enumerate(w):
            if wi is not None and not wi > 0:
                raise PlatformError(
                    f"node {i}: compute weight must be > 0 (or None for a "
                    f"switch), got {wi!r}")
        if w[root] is None:
            raise PlatformError(
                f"root {root} is a switch; the repository must be a host")

        self.w: List[Optional[Weight]] = list(w)
        self.link_u: List[int] = []
        self.link_v: List[int] = []
        self.link_c: List[Weight] = []
        self.adj: List[Dict[int, int]] = [dict() for _ in range(n)]
        self.root = root
        self.contention = contention
        self.meta: Dict[str, Any] = dict(meta) if meta else {}
        self._route_cache: Dict[int, Tuple[list, list]] = {}
        self._degrade: Dict[int, Fraction] = {}

        for u, v, cost in links:
            if not (0 <= u < n and 0 <= v < n):
                raise PlatformError(f"link ({u}, {v}) references unknown node")
            if u == v:
                raise PlatformError(f"self-loop at node {u}")
            if v in self.adj[u]:
                raise PlatformError(f"parallel link between {u} and {v}")
            if not cost > 0:
                # A zero/negative cost would become an infinite/negative
                # link capacity and a ZeroDivisionError (or a silently
                # instantaneous transfer) deep in the engine hot loop —
                # reject it here, at construction.
                raise PlatformError(
                    f"link ({u}, {v}): cost must be > 0, got {cost!r}")
            link_id = len(self.link_c)
            self.link_u.append(u)
            self.link_v.append(v)
            self.link_c.append(cost)
            self.adj[u][v] = link_id
            self.adj[v][u] = link_id
        self.link_up: List[bool] = [True] * len(self.link_c)

        unreachable = self._unreachable_from(root)
        if unreachable:
            raise PlatformError(
                f"nodes unreachable from root {root}: {unreachable}")

    # ------------------------------------------------------------- queries
    @property
    def num_nodes(self) -> int:
        return len(self.w)

    @property
    def num_links(self) -> int:
        return len(self.link_c)

    @property
    def hosts(self) -> List[int]:
        """Ids of compute-capable nodes, ascending."""
        return [i for i, wi in enumerate(self.w) if wi is not None]

    @property
    def switches(self) -> List[int]:
        """Ids of pure forwarding nodes, ascending."""
        return [i for i, wi in enumerate(self.w) if wi is None]

    def links(self) -> Iterator[Tuple[int, int, int, Weight]]:
        """Iterate ``(link_id, u, v, cost)`` in id order."""
        for i in range(self.num_links):
            yield (i, self.link_u[i], self.link_v[i], self.link_c[i])

    def capacity(self, link_id: int) -> Fraction:
        """Link bandwidth in tasks per timestep (``1 / cost``), scaled by
        any active :class:`~repro.platform.faults.DegradeEvent` factor."""
        base = Fraction(1, 1) / Fraction(self.link_c[link_id])
        factor = self._degrade.get(link_id)
        return base * factor if factor is not None else base

    def link_capacities(self) -> Dict[int, Fraction]:
        """``link id → capacity`` for the contention allocators."""
        return {i: self.capacity(i) for i in range(self.num_links)}

    def _unreachable_from(self, start: int) -> List[int]:
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v in self.adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return sorted(set(range(self.num_nodes)) - seen)

    # ------------------------------------------------------------- routing
    def _shortest_from(self, src: int) -> Tuple[list, list]:
        """Deterministic Dijkstra: ``(prev_node, prev_link)`` arrays.

        Paths minimise summed link cost, then hop count; remaining ties
        resolve toward lower node ids (the lowest-id frontier node relaxes
        its neighbours first and later equal-cost paths never overwrite).
        """
        cached = self._route_cache.get(src)
        if cached is not None:
            return cached
        n = self.num_nodes
        dist: List[Optional[Tuple[Weight, int]]] = [None] * n
        prev_node: List[Optional[int]] = [None] * n
        prev_link: List[Optional[int]] = [None] * n
        dist[src] = (0, 0)
        heap: List[Tuple[Weight, int, int]] = [(0, 0, src)]
        done = [False] * n
        while heap:
            d, hops, u = heapq.heappop(heap)
            if done[u]:
                continue
            done[u] = True
            for v in sorted(self.adj[u]):
                if done[v]:
                    continue
                link = self.adj[u][v]
                if not self.link_up[link]:
                    continue
                key = (d + self.link_c[link], hops + 1)
                if dist[v] is None or key < dist[v]:
                    dist[v] = key
                    prev_node[v] = u
                    prev_link[v] = link
                    heapq.heappush(heap, (key[0], key[1], v))
        self._route_cache[src] = (prev_node, prev_link)
        return prev_node, prev_link

    def route(self, src: int, dst: int) -> Tuple[int, ...]:
        """Static route between two nodes as a tuple of link ids."""
        if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
            raise PlatformError(f"route endpoints ({src}, {dst}) out of range")
        prev_node, prev_link = self._shortest_from(src)
        if dst != src and prev_node[dst] is None:
            raise PlatformError(f"no route from {src} to {dst}")
        links: List[int] = []
        node = dst
        while node != src:
            links.append(prev_link[node])
            node = prev_node[node]
        return tuple(reversed(links))

    def route_or_none(self, src: int, dst: int) -> Optional[Tuple[int, ...]]:
        """Like :meth:`route`, but ``None`` when ``dst`` is unreachable
        over the currently-up links (deterministic partition detection)."""
        if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
            raise PlatformError(f"route endpoints ({src}, {dst}) out of range")
        prev_node, prev_link = self._shortest_from(src)
        if dst != src and prev_node[dst] is None:
            return None
        links: List[int] = []
        node = dst
        while node != src:
            links.append(prev_link[node])
            node = prev_node[node]
        return tuple(reversed(links))

    def route_cost(self, links: Sequence[int]) -> Weight:
        """Exclusive per-task transfer time of a route: its bottleneck
        link cost (the fluid model pipelines across hops)."""
        return max((self.link_c[l] for l in links), default=0)

    # ------------------------------------------------------------- overlay
    def overlay(self, *, root: Optional[int] = None) -> Overlay:
        """The default *relay* overlay: each host's overlay parent is the
        last host on its shortest path from the root.

        On a tree this reproduces the tree itself; on a chain it yields
        store-and-forward relays (every intermediate host is an agent); on
        a star or a switched fabric whose interior holds no hosts it
        degenerates to a one-level fork under the root.

        ``root`` re-roots the overlay at another *host* (an application
        source node): same host set, shortest paths recomputed from that
        host, and overlay id 0 mapped to it.
        """
        src = self.root if root is None else root
        if src != self.root and (not 0 <= src < self.num_nodes
                                 or self.w[src] is None):
            raise PlatformError(
                f"overlay root {src} is not a host of this platform")
        prev_node, _prev_link = self._shortest_from(src)
        parent_of: Dict[int, int] = {}
        routes: Dict[int, Tuple[int, ...]] = {}
        for h in self.hosts:
            if h == src:
                continue
            if prev_node[h] is None:
                raise PlatformError(f"host {h} unreachable from host {src}")
            # Walk the shortest path back to the previous host; the route
            # is exactly that path suffix (so relay routes compose into
            # the root's shortest-path tree).
            links: List[int] = []
            node = h
            while True:
                pred = prev_node[node]
                links.append(self.adj[node][pred])
                node = pred
                if self.w[node] is not None:
                    break
            parent_of[h] = node
            routes[h] = tuple(reversed(links))
        return build_overlay(self, parent_of, routes, root=src)

    @classmethod
    def from_tree(cls, tree: PlatformTree, *,
                  contention: str = "maxmin") -> "PlatformGraph":
        """Embed a platform tree: one private link per parent edge.

        Link ids follow child-id order, mirroring the tree's implicit
        parent-path routes.  The default overlay of the result is the tree
        itself (node-for-node when ``tree.root == 0``).
        """
        links = [(p, child, c) for p, child, c in tree.edges()]
        return cls(list(tree.w), links, root=tree.root, contention=contention,
                   meta={"kind": "tree"})

    # ---------------------------------------------------------- generators
    @classmethod
    def star(cls, root_w: Weight, leaves: Sequence[Tuple[Weight, Weight]],
             *, contention: str = "maxmin") -> "PlatformGraph":
        """One-hop star: a repository center plus ``(c_i, w_i)`` leaves.

        The master-worker platform of the star-scheduling literature; the
        degenerate graph of :meth:`PlatformTree.fork`.
        """
        w = [root_w] + [wi for _ci, wi in leaves]
        links = [(0, i + 1, ci) for i, (ci, _wi) in enumerate(leaves)]
        return cls(w, links, root=0, contention=contention,
                   meta={"kind": "star"})

    @classmethod
    def chain(cls, weights: Sequence[Weight], costs: Sequence[Weight],
              *, contention: str = "maxmin") -> "PlatformGraph":
        """Linear daisy chain ``0 — 1 — … — n-1`` (Gallet/Robert/Vivien).

        The degenerate graph of :meth:`PlatformTree.linear_chain`; its
        relay overlay makes every interior host a store-and-forward agent.
        """
        if len(costs) != len(weights) - 1:
            raise PlatformError("need exactly len(weights)-1 costs for a chain")
        links = [(i, i + 1, costs[i]) for i in range(len(costs))]
        return cls(list(weights), links, root=0, contention=contention,
                   meta={"kind": "chain"})

    @classmethod
    def leaf_spine(cls, host_w: Sequence[Weight], hosts_per_leaf: int,
                   num_spines: int = 2, *,
                   access_costs: Optional[Sequence[Weight]] = None,
                   fabric_cost: Weight = 1,
                   contention: str = "maxmin") -> "PlatformGraph":
        """Two-level fat-tree / leaf-spine fabric.

        ``len(host_w)`` hosts hang in groups of ``hosts_per_leaf`` under
        leaf switches; every leaf connects to every spine.  Host ``h``
        sits under leaf ``h // hosts_per_leaf``; node ids are hosts first,
        then leaf switches, then spines.  ``access_costs[h]`` is host
        ``h``'s access-link cost (default all 1); ``fabric_cost`` is the
        leaf-spine link cost.  The repository is host 0.
        """
        num_hosts = len(host_w)
        if num_hosts == 0:
            raise PlatformError("leaf_spine needs at least one host")
        if hosts_per_leaf < 1:
            raise PlatformError("hosts_per_leaf must be >= 1")
        if num_spines < 1:
            raise PlatformError("num_spines must be >= 1")
        if access_costs is None:
            access_costs = [1] * num_hosts
        if len(access_costs) != num_hosts:
            raise PlatformError("need one access cost per host")
        num_leaves = (num_hosts + hosts_per_leaf - 1) // hosts_per_leaf
        first_leaf = num_hosts
        first_spine = num_hosts + num_leaves
        w: List[Optional[Weight]] = (list(host_w)
                                     + [None] * (num_leaves + num_spines))
        links: List[Tuple[int, int, Weight]] = []
        for h in range(num_hosts):
            links.append((h, first_leaf + h // hosts_per_leaf,
                          access_costs[h]))
        for leaf in range(num_leaves):
            for spine in range(num_spines):
                links.append((first_leaf + leaf, first_spine + spine,
                              fabric_cost))
        return cls(w, links, root=0, contention=contention,
                   meta={"kind": "leafspine", "hosts_per_leaf": hosts_per_leaf,
                         "num_leaves": num_leaves, "num_spines": num_spines})

    # ----------------------------------------------------------- mutation
    def set_link_cost(self, link_id: int, cost: Weight) -> None:
        """Set link ``link_id``'s per-task transfer time (in place)."""
        if not 0 <= link_id < self.num_links:
            raise PlatformError(f"no link {link_id}")
        if not cost > 0:
            raise PlatformError(f"link cost must be > 0, got {cost!r}")
        self.link_c[link_id] = cost
        self._route_cache.clear()

    # --------------------------------------------------------------- faults
    def fail_link(self, link_id: int) -> None:
        """Take link ``link_id`` down; routes recompute on next lookup."""
        if not 0 <= link_id < self.num_links:
            raise PlatformError(f"no link {link_id}")
        if not self.link_up[link_id]:
            raise PlatformError(f"link {link_id} is already down")
        self.link_up[link_id] = False
        self._route_cache.clear()

    def repair_link(self, link_id: int) -> None:
        """Bring link ``link_id`` back up; routes recompute on next lookup."""
        if not 0 <= link_id < self.num_links:
            raise PlatformError(f"no link {link_id}")
        if self.link_up[link_id]:
            raise PlatformError(f"link {link_id} is already up")
        self.link_up[link_id] = True
        self._route_cache.clear()

    def crash_node(self, node: int) -> List[int]:
        """Permanently down every link incident to ``node`` (a crashed
        host or switch).  Returns the newly-downed link ids, ascending."""
        if not 0 <= node < self.num_nodes:
            raise PlatformError(f"no node {node}")
        downed: List[int] = []
        for link_id in sorted(self.adj[node].values()):
            if self.link_up[link_id]:
                self.link_up[link_id] = False
                downed.append(link_id)
        if downed:
            self._route_cache.clear()
        return downed

    def set_degrade(self, link_id: int, factor: Optional[Fraction]) -> None:
        """Apply (or with ``None`` clear) a bandwidth-degrade factor on
        ``link_id``.  Routing is unaffected — only :meth:`capacity`."""
        if not 0 <= link_id < self.num_links:
            raise PlatformError(f"no link {link_id}")
        if factor is None:
            self._degrade.pop(link_id, None)
        else:
            self._degrade[link_id] = factor

    def set_compute_weight(self, node_id: int, w: Weight) -> None:
        """Set host ``node_id``'s per-task compute time (in place)."""
        if not 0 <= node_id < self.num_nodes:
            raise PlatformError(f"no node {node_id}")
        if self.w[node_id] is None:
            raise PlatformError(f"node {node_id} is a switch (no compute)")
        if not w > 0:
            raise PlatformError(f"compute weight must be > 0, got {w!r}")
        self.w[node_id] = w

    def copy(self) -> "PlatformGraph":
        """Deep copy (weights, links, meta; route cache not shared)."""
        clone = object.__new__(PlatformGraph)
        clone.w = list(self.w)
        clone.link_u = list(self.link_u)
        clone.link_v = list(self.link_v)
        clone.link_c = list(self.link_c)
        clone.adj = [dict(a) for a in self.adj]
        clone.root = self.root
        clone.contention = self.contention
        clone.meta = dict(self.meta)
        clone._route_cache = {}
        clone.link_up = list(self.link_up)
        clone._degrade = dict(self._degrade)
        return clone

    # ------------------------------------------------------------- dunder
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlatformGraph):
            return NotImplemented
        return (self.root == other.root and self.w == other.w
                and self.link_u == other.link_u
                and self.link_v == other.link_v
                and self.link_c == other.link_c
                and self.contention == other.contention)

    def __hash__(self) -> int:
        return hash((self.root, tuple(self.w), tuple(self.link_u),
                     tuple(self.link_v), tuple(self.link_c), self.contention))

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover
        return (f"PlatformGraph(nodes={self.num_nodes}, "
                f"links={self.num_links}, hosts={len(self.hosts)}, "
                f"root={self.root}, contention={self.contention!r})")


def build_overlay(graph: PlatformGraph, parent_of: Dict[int, int],
                  routes: Optional[Dict[int, Tuple[int, ...]]] = None, *,
                  root: Optional[int] = None) -> Overlay:
    """Assemble an :class:`Overlay` from a host parent map.

    ``parent_of`` maps every non-root host to its overlay parent host;
    ``routes`` optionally pins the physical route per child (defaulting to
    the graph's static shortest-path route).  Overlay edge costs are the
    route's bottleneck link cost (:meth:`PlatformGraph.route_cost`).
    ``root`` overrides the graph root (a re-rooted overlay for an
    application whose source is another host).
    """
    if root is None:
        root = graph.root
    elif root not in graph.hosts:
        raise PlatformError(f"overlay root {root} is not a host")
    hosts = [root] + [h for h in sorted(graph.hosts) if h != root]
    new_id = {h: i for i, h in enumerate(hosts)}
    for h in graph.hosts:
        if h == root:
            continue
        if h not in parent_of:
            raise PlatformError(f"overlay parent map misses host {h}")
        p = parent_of[h]
        if p not in new_id:
            raise PlatformError(
                f"overlay parent {p} of host {h} is not a host")
    route_of: List[Tuple[int, ...]] = [()] * len(hosts)
    edges: List[Tuple[int, int, Weight]] = []
    for h in hosts[1:]:
        links = (routes.get(h) if routes is not None else None)
        if links is None:
            links = graph.route(parent_of[h], h)
        if not links:
            raise PlatformError(
                f"empty route for overlay edge {parent_of[h]} -> {h}")
        route_of[new_id[h]] = tuple(links)
        edges.append((new_id[parent_of[h]], new_id[h],
                      graph.route_cost(links)))
    w = [graph.w[h] for h in hosts]
    tree = PlatformTree(w, edges, root=0)
    return Overlay(tree=tree, hosts=tuple(hosts), routes=tuple(route_of))


def generate_platform(topology: str,
                      params: Optional[TreeGeneratorParams] = None, *,
                      seed: Optional[int] = None,
                      rng: Optional[random.Random] = None,
                      contention: str = "maxmin") -> PlatformGraph:
    """Generate one random platform of the given shape.

    Sizes and weight ranges reuse the paper's tree-generator parameters
    (§4.1): node count uniform in ``[min_nodes, max_nodes]``, link costs
    uniform in ``[min_comm, max_comm]``, compute weights uniform in
    ``[min_comp, max_comp]``.  Leaf-spine fabrics draw their host count
    from the same range, pack hosts ``8`` per leaf over ``2`` spines and
    use ``min_comm`` as the (fast) fabric link cost.
    """
    if topology not in GRAPH_TOPOLOGIES:
        raise PlatformError(
            f"unknown topology {topology!r}; choose from {GRAPH_TOPOLOGIES}")
    if params is None:
        params = PAPER_DEFAULTS
    if rng is not None and seed is not None:
        raise PlatformError("pass either seed or rng, not both")
    if rng is None:
        rng = random.Random(seed)

    n = rng.randint(params.min_nodes, params.max_nodes)
    lo_w, hi_w = params.min_comp, params.max_comp
    lo_c, hi_c = params.min_comm, params.max_comm

    if topology == "star":
        root_w = rng.randint(lo_w, hi_w)
        leaves = [(rng.randint(lo_c, hi_c), rng.randint(lo_w, hi_w))
                  for _ in range(n - 1)]
        return PlatformGraph.star(root_w, leaves, contention=contention)
    if topology == "chain":
        weights = [rng.randint(lo_w, hi_w) for _ in range(n)]
        costs = [rng.randint(lo_c, hi_c) for _ in range(n - 1)]
        return PlatformGraph.chain(weights, costs, contention=contention)
    # leafspine: n hosts in groups of 8 under leaves, 2 spines, fast fabric.
    host_w = [rng.randint(lo_w, hi_w) for _ in range(n)]
    access = [rng.randint(lo_c, hi_c) for _ in range(n)]
    return PlatformGraph.leaf_spine(host_w, hosts_per_leaf=8, num_spines=2,
                                    access_costs=access,
                                    fabric_cost=params.min_comm,
                                    contention=contention)
