"""Shared-link bandwidth allocation for concurrent transfers.

Concurrent flows crossing the same physical link split its capacity.  Two
policies are provided, both computed in exact :class:`~fractions.Fraction`
arithmetic so simulation fingerprints stay platform-independent:

* :func:`max_min_rates` — progressive filling (the classic max-min fair
  allocation used by fluid network models such as SimGrid's): repeatedly
  raise every unfrozen flow's rate uniformly until some link saturates,
  freeze that link's flows at the fair-share level, and continue with the
  capacity that remains.  Saturated links are chosen in ``(fair-share
  level, link id)`` order — a deterministic tie-break, so the allocation
  never depends on dict iteration order (the PR 3 workers=1 == workers=N
  bit-identity invariant extends to graphs).
* :func:`fair_share_rates` — each flow gets the minimum over its route of
  ``capacity / crossing-flow-count``.  One pass, no global
  work-conservation; a useful lower-bound alternative
  (``contention="fairshare"``).

:class:`LinkContention` is the DES-facing manager: it tracks active flows
as ``(volume, rate)`` fluid transfers, reallocates on every start/finish,
and reports which flows actually changed rate so the engine only
reschedules the timers it must — on a tree-degenerate graph no flow ever
shares a link, rates never change, and the event calendar stays
bit-identical to the tree engine's.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..errors import PlatformError

__all__ = ["max_min_rates", "fair_share_rates", "selfish_rates",
           "LinkContention"]

FlowId = Hashable


def _exact(value) -> object:
    """Normalize an integral Fraction to int.

    Tree-degenerate runs must stay all-integer so their arithmetic — and
    therefore their fingerprints — matches the tree engine exactly.
    """
    if isinstance(value, Fraction) and value.denominator == 1:
        return value.numerator
    return value


def max_min_rates(flows: Mapping[FlowId, Sequence[int]],
                  capacities: Mapping[int, Fraction],
                  ) -> Dict[FlowId, Fraction]:
    """Max-min fair rates via progressive filling.

    ``flows`` maps each flow id to the link ids its route crosses;
    ``capacities`` maps link id to bandwidth.  Each round computes every
    link's fair-share level ``(capacity - frozen usage) / unfrozen flow
    count``, saturates the bottleneck — the link minimizing ``(level,
    link id)`` — and freezes its flows at that level.  Repeats until all
    flows are frozen.  Runs in O(L · rounds); exact Fractions throughout.
    """
    rates: Dict[FlowId, Fraction] = {}
    if not flows:
        return rates
    # Flows on each link, in deterministic (insertion) order of `flows`.
    link_flows: Dict[int, List[FlowId]] = {}
    for fid, route in flows.items():
        if not route:
            raise PlatformError(f"flow {fid!r} has an empty route")
        for link in set(route):
            link_flows.setdefault(link, []).append(fid)
    frozen_usage: Dict[int, Fraction] = {link: Fraction(0)
                                         for link in link_flows}
    unfrozen: Dict[FlowId, Tuple[int, ...]] = {
        fid: tuple(sorted(set(route))) for fid, route in flows.items()}
    while unfrozen:
        counts: Dict[int, int] = {}
        for route in unfrozen.values():
            for link in route:
                counts[link] = counts.get(link, 0) + 1
        bottleneck: Optional[int] = None
        level: Optional[Fraction] = None
        for link in sorted(counts):
            cap = capacities.get(link)
            if cap is None:
                raise PlatformError(f"flow crosses unknown link {link}")
            share = (cap - frozen_usage[link]) / counts[link]
            if level is None or share < level:
                level = share
                bottleneck = link
        if level < 0:
            level = Fraction(0)
        # Freeze every unfrozen flow crossing the bottleneck at `level`.
        for fid in link_flows[bottleneck]:
            route = unfrozen.pop(fid, None)
            if route is None:
                continue
            rates[fid] = level
            for link in route:
                frozen_usage[link] += level
    return rates


def fair_share_rates(flows: Mapping[FlowId, Sequence[int]],
                     capacities: Mapping[int, Fraction],
                     ) -> Dict[FlowId, Fraction]:
    """Per-link equal split: rate = min over the route of cap/n_flows."""
    counts: Dict[int, int] = {}
    for fid, route in flows.items():
        if not route:
            raise PlatformError(f"flow {fid!r} has an empty route")
        for link in set(route):
            counts[link] = counts.get(link, 0) + 1
    rates: Dict[FlowId, Fraction] = {}
    for fid, route in flows.items():
        share = None
        for link in set(route):
            cap = capacities.get(link)
            if cap is None:
                raise PlatformError(f"flow crosses unknown link {link}")
            s = cap / counts[link]
            if share is None or s < share:
                share = s
        rates[fid] = share
    return rates


def selfish_rates(flows: Mapping[FlowId, Sequence[int]],
                  capacities: Mapping[int, Fraction],
                  priorities: Optional[Mapping[FlowId, object]] = None,
                  ) -> Dict[FlowId, Fraction]:
    """Strict-priority filling: higher-priority flows grab bandwidth first.

    Flows are grouped by priority tag (lower sorts first = more urgent,
    matching the protocol's bandwidth-centric ``(c, node id)`` keys) and
    each class is max-min filled against whatever capacity the classes
    before it left behind.  Untagged flows (priority ``None``) form the
    last class.  With a single class this degenerates to plain
    :func:`max_min_rates` — equal-priority apps therefore share fairly,
    which is the deterministic tie-break.
    """
    priorities = priorities or {}
    classes: Dict[object, Dict[FlowId, Sequence[int]]] = {}
    for fid, route in flows.items():
        classes.setdefault(priorities.get(fid), {})[fid] = route
    # None (untagged) last; tagged classes in ascending priority order.
    order = sorted((key for key in classes if key is not None)) \
        + ([None] if None in classes else [])
    remaining = dict(capacities)
    rates: Dict[FlowId, Fraction] = {}
    for key in order:
        class_rates = max_min_rates(classes[key], remaining)
        for fid, rate in class_rates.items():
            rates[fid] = rate
            for link in set(flows[fid]):
                left = remaining[link] - rate
                remaining[link] = left if left > 0 else Fraction(0)
    return rates


_ALLOCATORS = {"maxmin": max_min_rates, "fairshare": fair_share_rates,
               "selfish": selfish_rates}


class _Flow:
    __slots__ = ("route", "volume", "rate", "since")

    def __init__(self, route: Tuple[int, ...], volume, rate, since):
        self.route = route
        self.volume = volume    # remaining volume in tasks
        self.rate = rate        # current allocated rate (tasks/step)
        self.since = since      # sim time of the last volume settlement


class LinkContention:
    """Fluid-flow manager for concurrent transfers over shared links.

    The engine registers a flow when a transfer starts and removes it when
    it finishes (or is preempted); each change triggers a reallocation.
    Remaining volumes are settled lazily — only flows whose rate actually
    changes get their volume updated (``volume -= rate × elapsed``) and
    are reported back so the engine reschedules exactly those timers.
    Exact Fractions keep every settlement lossless.
    """

    __slots__ = ("capacities", "mode", "_alloc", "_flows", "_priorities",
                 "reallocations", "rate_changes")

    def __init__(self, capacities: Mapping[int, Fraction],
                 mode: str = "maxmin"):
        try:
            self._alloc = _ALLOCATORS[mode]
        except KeyError:
            raise PlatformError(
                f"unknown contention mode {mode!r}; "
                f"choose from {tuple(_ALLOCATORS)}") from None
        self.mode = mode
        self.capacities = dict(capacities)
        self._flows: Dict[FlowId, _Flow] = {}
        self._priorities: Dict[FlowId, object] = {}
        self.reallocations = 0      # allocator invocations (telemetry)
        self.rate_changes = 0       # flows whose rate changed mid-flight

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, fid: FlowId) -> bool:
        return fid in self._flows

    def rate_of(self, fid: FlowId):
        return self._flows[fid].rate

    def remaining_volume(self, fid: FlowId, now):
        """Remaining volume of a flow at sim time ``now`` (not settled)."""
        flow = self._flows[fid]
        return _exact(flow.volume - flow.rate * (now - flow.since))

    def start(self, fid: FlowId, route: Sequence[int], volume,
              now, priority=None) -> List[Tuple[FlowId, object, object]]:
        """Register a flow; returns rate updates (see :meth:`_reallocate`).

        The new flow itself is always included in the updates with its
        initial rate and full volume.  ``priority`` tags the flow for the
        ``selfish`` allocator (lower sorts first); other modes ignore it.
        """
        if fid in self._flows:
            raise PlatformError(f"flow {fid!r} already active")
        flow = _Flow(tuple(route), volume, Fraction(0), now)
        self._flows[fid] = flow
        if priority is not None:
            self._priorities[fid] = priority
        updates = self._reallocate(now)
        if all(u[0] != fid for u in updates):
            updates.append((fid, flow.rate, _exact(flow.volume)))
        return updates

    def finish(self, fid: FlowId, now) -> List[Tuple[FlowId, object, object]]:
        """Remove a completed/preempted flow; reallocate the survivors."""
        if fid not in self._flows:
            raise PlatformError(f"no active flow {fid!r}")
        del self._flows[fid]
        self._priorities.pop(fid, None)
        return self._reallocate(now)

    def pause(self, fid: FlowId, now):
        """Remove a flow mid-flight; returns ``(remaining_volume,
        updates)`` so the engine can shelve the leftover volume."""
        remaining = self.remaining_volume(fid, now)
        updates = self.finish(fid, now)
        return remaining, updates

    def kill_crossing(self, links, now):
        """Drop every flow whose route crosses any of ``links`` (a failed
        link set), then reallocate the survivors once.

        Returns ``(killed, updates)``: the dropped flow ids in their
        deterministic insertion order (their in-flight volume is lost —
        the caller books the task loss), and the usual rate updates for
        the flows that remain.
        """
        link_set = set(links)
        killed = [fid for fid, flow in self._flows.items()
                  if link_set.intersection(flow.route)]
        for fid in killed:
            del self._flows[fid]
            self._priorities.pop(fid, None)
        updates = self._reallocate(now) if killed else []
        return killed, updates

    def set_capacity(self, link, cap,
                     now) -> List[Tuple[FlowId, object, object]]:
        """Change one link's capacity (degrade/restore) and re-settle the
        flows crossing it; returns the usual rate updates."""
        if link not in self.capacities:
            raise PlatformError(f"no link {link!r}")
        self.capacities[link] = cap
        return self._reallocate(now)

    def _reallocate(self, now) -> List[Tuple[FlowId, object, object]]:
        """Re-run the allocator; settle and report rate-changed flows.

        Returns ``[(flow id, new rate, remaining volume), ...]`` for every
        flow whose rate differs from before.  Untouched flows keep their
        timers — the bit-identity lever for tree-degenerate graphs.
        """
        self.reallocations += 1
        routes = {fid: flow.route for fid, flow in self._flows.items()}
        if self.mode == "selfish":
            new_rates = self._alloc(routes, self.capacities, self._priorities)
        else:
            new_rates = self._alloc(routes, self.capacities)
        updates: List[Tuple[FlowId, object, object]] = []
        for fid, flow in self._flows.items():
            new_rate = _exact(new_rates[fid])
            if new_rate == flow.rate:
                continue
            if flow.rate:  # settle progress made at the old rate
                flow.volume = _exact(flow.volume
                                     - flow.rate * (now - flow.since))
                self.rate_changes += 1
            flow.rate = new_rate
            flow.since = now
            updates.append((fid, new_rate, _exact(flow.volume)))
        return updates
