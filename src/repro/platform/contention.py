"""Shared-link bandwidth allocation for concurrent transfers.

Concurrent flows crossing the same physical link split its capacity.  Two
reference policies are provided, both computed in exact
:class:`~fractions.Fraction` arithmetic so simulation fingerprints stay
platform-independent:

* :func:`max_min_rates` — progressive filling (the classic max-min fair
  allocation used by fluid network models such as SimGrid's): repeatedly
  raise every unfrozen flow's rate uniformly until some link saturates,
  freeze that link's flows at the fair-share level, and continue with the
  capacity that remains.  Saturated links are chosen in ``(fair-share
  level, link id)`` order — a deterministic tie-break, so the allocation
  never depends on dict iteration order (the PR 3 workers=1 == workers=N
  bit-identity invariant extends to graphs).
* :func:`fair_share_rates` — each flow gets the minimum over its route of
  ``capacity / crossing-flow-count``.  One pass, no global
  work-conservation; a useful lower-bound alternative
  (``contention="fairshare"``).

:class:`LinkContention` is the DES-facing manager: it tracks active flows
as ``(volume, rate)`` fluid transfers, reallocates on every start/finish,
and reports which flows actually changed rate so the engine only
reschedules the timers it must — on a tree-degenerate graph no flow ever
shares a link, rates never change, and the event calendar stays
bit-identical to the tree engine's.

The manager is an **incremental, state-carrying kernel** (it used to
re-run the from-scratch solve on every event).  Three layers, cheapest
first, all provably bit-identical to the reference allocators:

1. **Dirty-region settling** — persistent per-link flow sets let each
   event recompute only the connected component(s) of the flow/link
   sharing graph that the changed flow touches.  Progressive filling
   decomposes over components (a bottleneck level in one component never
   references capacities or counts of another), so flows outside the
   dirty region keep their cached rates exactly.  A lone flow on
   otherwise-idle links short-circuits to ``min(capacity)``.
2. **Memoization** — solve results are cached under the *frozen flow-set
   signature*: the multiset of (priority class, deduped route) pairs plus
   the region's link capacities.  Flows with identical routes are
   symmetric under every allocator, so steady-state runs that revisit the
   same flow configuration (the common case the warp engine exploits)
   skip the solve entirely.
3. **Integer-scaled arithmetic** — capacities are normalized to a common
   denominator once per epoch (re-derived when ``set_capacity`` changes a
   denominator), letting progressive filling run in machine ints with
   cross-multiplied bottleneck comparisons; Fractions are reconstructed
   only at the settle boundary.  When degrade events push the common
   denominator past a fixed bound the kernel falls back to exact Fraction
   arithmetic — same results, just slower.

``LinkContention(..., incremental=False)`` restores the from-scratch
reference behaviour (used by the benchmark speedup gate and the
equality property tests).
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..errors import PlatformError

__all__ = ["max_min_rates", "fair_share_rates", "selfish_rates",
           "LinkContention"]

FlowId = Hashable

#: Common-denominator bound for the integer fast path.  Progressive
#: filling multiplies the running denominator by each bottleneck's flow
#: count, so the starting scale must leave big-int headroom; past this
#: the kernel falls back to Fraction arithmetic (exactness either way).
_INT_SCALE_LIMIT = 1 << 63

#: Memo entries kept before the cache is wholesale cleared (bounded
#: memory on adversarial churn; steady-state runs reuse a handful).
_MEMO_LIMIT = 4096

#: Shared zero rate for newly registered flows (every ``start`` needs
#: one; constructing a fresh Fraction runs the gcd machinery each time).
_ZERO = Fraction(0)


def _exact(value) -> object:
    """Normalize an integral Fraction to int.

    Tree-degenerate runs must stay all-integer so their arithmetic — and
    therefore their fingerprints — matches the tree engine exactly.
    """
    if isinstance(value, Fraction) and value.denominator == 1:
        return value.numerator
    return value


def max_min_rates(flows: Mapping[FlowId, Sequence[int]],
                  capacities: Mapping[int, Fraction],
                  ) -> Dict[FlowId, Fraction]:
    """Max-min fair rates via progressive filling.

    ``flows`` maps each flow id to the link ids its route crosses;
    ``capacities`` maps link id to bandwidth.  Each round computes every
    link's fair-share level ``(capacity - frozen usage) / unfrozen flow
    count``, saturates the bottleneck — the link minimizing ``(level,
    link id)`` — and freezes its flows at that level.  Repeats until all
    flows are frozen.  Link counts and remaining capacities are
    maintained incrementally as flows freeze, so a round costs only the
    links still carrying unfrozen flows; exact Fractions throughout.
    """
    rates: Dict[FlowId, Fraction] = {}
    if not flows:
        return rates
    # Flows on each link, in deterministic (insertion) order of `flows`.
    link_flows: Dict[int, List[FlowId]] = {}
    flow_links: Dict[FlowId, Tuple[int, ...]] = {}
    for fid, route in flows.items():
        if not route:
            raise PlatformError(f"flow {fid!r} has an empty route")
        links = tuple(sorted(set(route)))
        flow_links[fid] = links
        for link in links:
            link_flows.setdefault(link, []).append(fid)
    remaining: Dict[int, Fraction] = {}
    counts: Dict[int, int] = {}
    for link in sorted(link_flows):
        cap = capacities.get(link)
        if cap is None:
            raise PlatformError(f"flow crosses unknown link {link}")
        remaining[link] = cap
        counts[link] = len(link_flows[link])
    unfrozen = len(flows)
    while unfrozen:
        bottleneck: Optional[int] = None
        level: Optional[Fraction] = None
        for link, count in counts.items():
            share = remaining[link] / count
            if (level is None or share < level
                    or (share == level and link < bottleneck)):
                level = share
                bottleneck = link
        if level < 0:
            level = Fraction(0)
        # Freeze every unfrozen flow crossing the bottleneck at `level`,
        # retiring its share from every link it crosses.
        for fid in link_flows[bottleneck]:
            if fid in rates:
                continue
            rates[fid] = level
            unfrozen -= 1
            for link in flow_links[fid]:
                remaining[link] -= level
                count = counts[link] - 1
                if count:
                    counts[link] = count
                else:
                    del counts[link]
    return rates


def fair_share_rates(flows: Mapping[FlowId, Sequence[int]],
                     capacities: Mapping[int, Fraction],
                     ) -> Dict[FlowId, Fraction]:
    """Per-link equal split: rate = min over the route of cap/n_flows."""
    counts: Dict[int, int] = {}
    for fid, route in flows.items():
        if not route:
            raise PlatformError(f"flow {fid!r} has an empty route")
        for link in set(route):
            counts[link] = counts.get(link, 0) + 1
    rates: Dict[FlowId, Fraction] = {}
    for fid, route in flows.items():
        share = None
        for link in set(route):
            cap = capacities.get(link)
            if cap is None:
                raise PlatformError(f"flow crosses unknown link {link}")
            s = cap / counts[link]
            if share is None or s < share:
                share = s
        rates[fid] = share
    return rates


def selfish_rates(flows: Mapping[FlowId, Sequence[int]],
                  capacities: Mapping[int, Fraction],
                  priorities: Optional[Mapping[FlowId, object]] = None,
                  ) -> Dict[FlowId, Fraction]:
    """Strict-priority filling: higher-priority flows grab bandwidth first.

    Flows are grouped by priority tag (lower sorts first = more urgent,
    matching the protocol's bandwidth-centric ``(c, node id)`` keys) and
    each class is max-min filled against whatever capacity the classes
    before it left behind.  Untagged flows (priority ``None``) form the
    last class.  With a single class this degenerates to plain
    :func:`max_min_rates` — equal-priority apps therefore share fairly,
    which is the deterministic tie-break.
    """
    priorities = priorities or {}
    classes: Dict[object, Dict[FlowId, Sequence[int]]] = {}
    for fid, route in flows.items():
        classes.setdefault(priorities.get(fid), {})[fid] = route
    # None (untagged) last; tagged classes in ascending priority order.
    order = sorted((key for key in classes if key is not None)) \
        + ([None] if None in classes else [])
    remaining = dict(capacities)
    rates: Dict[FlowId, Fraction] = {}
    for key in order:
        class_rates = max_min_rates(classes[key], remaining)
        for fid, rate in class_rates.items():
            rates[fid] = rate
            for link in set(flows[fid]):
                left = remaining[link] - rate
                remaining[link] = left if left > 0 else Fraction(0)
    return rates


_ALLOCATORS = {"maxmin": max_min_rates, "fairshare": fair_share_rates,
               "selfish": selfish_rates}


def _common_denominator(caps) -> Optional[int]:
    """lcm of the capacities' denominators, or ``None`` past the int
    bound (→ Fraction fallback)."""
    scale = 1
    for cap in caps:
        den = cap.denominator  # ints carry .denominator == 1
        if den != 1:
            scale = scale * den // gcd(scale, den)
            if scale > _INT_SCALE_LIMIT:
                return None
    return scale


def _scaled_caps(caps: Mapping[int, Fraction], scale: int) -> Dict[int, int]:
    """Capacities as exact machine ints at ``scale``× (``cap * scale``
    is integral by construction of the common denominator)."""
    return {link: int(cap * scale) for link, cap in caps.items()}


def _max_min_int(flows: Mapping[FlowId, Tuple[int, ...]],
                 int_caps: Mapping[int, int],
                 scale: int) -> Dict[FlowId, Fraction]:
    """Progressive filling in integer arithmetic (routes pre-deduped).

    Remaining capacities are ints over a running denominator ``level_den
    = scale``; saturating a bottleneck with ``n`` unfrozen flows
    multiplies every live remainder (and the denominator) by ``n`` so the
    fair-share level itself becomes an integer.  Bottleneck selection
    cross-multiplies instead of dividing.  Exactly mirrors
    :func:`max_min_rates` round for round; Fractions are built only for
    the final per-flow rates.
    """
    rates: Dict[FlowId, Fraction] = {}
    link_flows: Dict[int, List[FlowId]] = {}
    for fid, links in flows.items():
        for link in links:
            link_flows.setdefault(link, []).append(fid)
    remaining = {link: int_caps[link] for link in link_flows}
    counts = {link: len(fids) for link, fids in link_flows.items()}
    level_den = scale
    unfrozen = len(flows)
    while unfrozen:
        bottleneck = None
        best_num = best_count = 1
        for link, count in counts.items():
            num = remaining[link]
            if bottleneck is None:
                bottleneck, best_num, best_count = link, num, count
                continue
            lhs = num * best_count
            rhs = best_num * count
            if lhs < rhs or (lhs == rhs and link < bottleneck):
                bottleneck, best_num, best_count = link, num, count
        if best_num < 0:
            best_num = 0
        if best_count != 1:
            for link in counts:
                remaining[link] *= best_count
            level_den *= best_count
        level = best_num
        for fid in link_flows[bottleneck]:
            if fid in rates:
                continue
            rates[fid] = Fraction(level, level_den)
            unfrozen -= 1
            for link in flows[fid]:
                remaining[link] -= level
                count = counts[link] - 1
                if count:
                    counts[link] = count
                else:
                    del counts[link]
    return rates


class _Flow:
    __slots__ = ("route", "links", "volume", "rate", "since", "seq")

    def __init__(self, route: Tuple[int, ...], links: Tuple[int, ...],
                 volume, rate, since, seq: int):
        self.route = route
        self.links = links      # deduped sorted route (cached once)
        self.volume = volume    # remaining volume in tasks
        self.rate = rate        # current allocated rate (tasks/step)
        self.since = since      # sim time of the last volume settlement
        self.seq = seq          # registration order (restores insertion
                                # order over a dirty region without
                                # scanning the whole flow table)


class LinkContention:
    """Fluid-flow manager for concurrent transfers over shared links.

    The engine registers a flow when a transfer starts and removes it when
    it finishes (or is preempted); each change triggers an incremental
    re-settle of the dirty region (see the module docstring for the
    kernel's three layers).  Remaining volumes are settled lazily — only
    flows whose rate actually changes get their volume updated
    (``volume -= rate × elapsed``) and are reported back so the engine
    reschedules exactly those timers.  Exact arithmetic keeps every
    settlement lossless.

    Solver statistics (``stats()``) feed the telemetry registry:
    reallocation events, dirty-set sizes, memo hits, and how often each
    arithmetic path ran.
    """

    __slots__ = ("capacities", "mode", "incremental", "_selfish", "_flows",
                 "_priorities", "_link_flows", "_memo", "_scales",
                 "_flow_seq", "reallocations",
                 "rate_changes", "settles_full", "settles_incremental",
                 "solves_trivial", "solves_int", "solves_fraction",
                 "memo_hits", "memo_evictions", "dirty_flows",
                 "dirty_links")

    def __init__(self, capacities: Mapping[int, Fraction],
                 mode: str = "maxmin", *, incremental: bool = True):
        if mode not in _ALLOCATORS:
            raise PlatformError(
                f"unknown contention mode {mode!r}; "
                f"choose from {tuple(_ALLOCATORS)}")
        self.mode = mode
        self.incremental = incremental
        self._selfish = mode == "selfish"
        self.capacities = dict(capacities)
        self._flows: Dict[FlowId, _Flow] = {}
        self._priorities: Dict[FlowId, object] = {}
        #: link id → insertion-ordered set (dict keys) of crossing flows.
        self._link_flows: Dict[int, Dict[FlowId, None]] = {}
        #: frozen flow-set signature → {tag: rate} (valid for the current
        #: capacity epoch; cleared wholesale by :meth:`set_capacity`).
        self._memo: Dict[tuple, Dict[object, Fraction]] = {}
        #: region links tuple → (scale, int caps), cached per epoch.
        self._scales: Dict[tuple, tuple] = {}
        self._flow_seq = 0
        self.reallocations = 0      # settle events (telemetry)
        self.rate_changes = 0       # flows whose rate changed mid-flight
        self.settles_full = 0       # dirty region spanned every flow
        self.settles_incremental = 0
        self.solves_trivial = 0     # lone flow on idle links: min(cap)
        self.solves_int = 0         # integer-scaled progressive fillings
        self.solves_fraction = 0    # exact-Fraction fallbacks
        self.memo_hits = 0
        self.memo_evictions = 0
        self.dirty_flows = 0        # cumulative dirty-set sizes
        self.dirty_links = 0

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, fid: FlowId) -> bool:
        return fid in self._flows

    def rate_of(self, fid: FlowId):
        return self._flows[fid].rate

    def stats(self) -> Dict[str, int]:
        """Solver statistics snapshot (telemetry counters)."""
        return {
            "reallocations": self.reallocations,
            "rate_changes": self.rate_changes,
            "settles_full": self.settles_full,
            "settles_incremental": self.settles_incremental,
            "solves_trivial": self.solves_trivial,
            "solves_int": self.solves_int,
            "solves_fraction": self.solves_fraction,
            "memo_hits": self.memo_hits,
            "memo_evictions": self.memo_evictions,
            "memo_size": len(self._memo),
            "dirty_flows": self.dirty_flows,
            "dirty_links": self.dirty_links,
        }

    def remaining_volume(self, fid: FlowId, now):
        """Remaining volume of a flow at sim time ``now`` (not settled)."""
        flow = self._flows[fid]
        if not flow.rate:  # starved/new flow: no progress to subtract
            return _exact(flow.volume)
        return _exact(flow.volume - flow.rate * (now - flow.since))

    def start(self, fid: FlowId, route: Sequence[int], volume,
              now, priority=None) -> List[Tuple[FlowId, object, object]]:
        """Register a flow; returns rate updates (see :meth:`_settle`).

        The new flow itself is always included in the updates with its
        initial rate and full volume.  ``priority`` tags the flow for the
        ``selfish`` allocator (lower sorts first); other modes ignore it.
        """
        if fid in self._flows:
            raise PlatformError(f"flow {fid!r} already active")
        if not route:
            raise PlatformError(f"flow {fid!r} has an empty route")
        route = tuple(route)
        links = route if len(route) == 1 else tuple(sorted(set(route)))
        for link in links:
            if link not in self.capacities:
                raise PlatformError(f"flow crosses unknown link {link}")
        seq = self._flow_seq + 1
        self._flow_seq = seq
        flow = _Flow(route, links, volume, _ZERO, now, seq)
        self._flows[fid] = flow
        link_flows = self._link_flows
        shared = False
        for link in links:
            crossing = link_flows.get(link)
            if crossing is None:
                link_flows[link] = {fid: None}
            else:
                crossing[fid] = None
                shared = True
        if priority is not None:
            self._priorities[fid] = priority
        if self.incremental and not shared:
            # Exclusive links: the flow is alone in its component, so its
            # rate is min(cap) under every allocator and nobody else moves
            # — skip the closure/solve machinery entirely.
            self.reallocations += 1
            self.settles_incremental += 1
            self.solves_trivial += 1
            self.dirty_flows += 1
            self.dirty_links += len(links)
            capacities = self.capacities
            if len(links) == 1:
                rate = _exact(capacities[links[0]])
            else:
                rate = _exact(min(capacities[link] for link in links))
            if rate != flow.rate:
                flow.rate = rate
            return [(fid, flow.rate, _exact(flow.volume))]
        updates = self._settle(links, now)
        if all(u[0] != fid for u in updates):
            updates.append((fid, flow.rate, _exact(flow.volume)))
        return updates

    def finish(self, fid: FlowId, now) -> List[Tuple[FlowId, object, object]]:
        """Remove a completed/preempted flow; re-settle the survivors."""
        flow = self._flows.pop(fid, None)
        if flow is None:
            raise PlatformError(f"no active flow {fid!r}")
        self._priorities.pop(fid, None)
        self._unlink(fid, flow)
        links = flow.links
        if self.incremental:
            link_flows = self._link_flows
            for link in links:
                if link in link_flows:
                    break
            else:
                # The departed flow had its links to itself: the dirty
                # region is empty and nobody's rate can change.  Counter
                # bookkeeping matches what _settle would have recorded.
                self.reallocations += 1
                if self._flows:
                    self.dirty_links += len(links)
                return []
        return self._settle(links, now)

    def pause(self, fid: FlowId, now):
        """Remove a flow mid-flight; returns ``(remaining_volume,
        updates)`` so the engine can shelve the leftover volume."""
        remaining = self.remaining_volume(fid, now)
        updates = self.finish(fid, now)
        return remaining, updates

    def kill_crossing(self, links, now):
        """Drop every flow whose route crosses any of ``links`` (a failed
        link set), then re-settle the survivors once.

        Returns ``(killed, updates)``: the dropped flow ids in their
        deterministic insertion order (their in-flight volume is lost —
        the caller books the task loss), and the usual rate updates for
        the flows that remain.
        """
        link_flows = self._link_flows
        doomed = set()
        for link in links:
            doomed.update(link_flows.get(link, ()))
        if not doomed:
            return [], []
        killed = [fid for fid in self._flows if fid in doomed]
        seeds: set = set()
        for fid in killed:
            flow = self._flows.pop(fid)
            self._priorities.pop(fid, None)
            self._unlink(fid, flow)
            seeds.update(flow.links)
        return killed, self._settle(seeds, now)

    def set_capacity(self, link, cap,
                     now) -> List[Tuple[FlowId, object, object]]:
        """Change one link's capacity (degrade/restore) and re-settle the
        flows crossing it; returns the usual rate updates."""
        if link not in self.capacities:
            raise PlatformError(f"no link {link!r}")
        self.capacities[link] = cap
        # Epoch boundary: memoized solutions and integer scales are keyed
        # on flow signatures *within* one capacity configuration (the new
        # capacity may also carry a new denominator), so both caches are
        # dropped wholesale and rebuilt lazily by the next solves.
        self._memo.clear()
        self._scales.clear()
        return self._settle((link,), now)

    # ----------------------------------------------------------- internals
    def _unlink(self, fid: FlowId, flow: _Flow) -> None:
        link_flows = self._link_flows
        for link in flow.links:
            crossing = link_flows[link]
            del crossing[fid]
            if not crossing:
                del link_flows[link]

    def _closure(self, seeds) -> set:
        """Flows in the connected sharing components touching ``seeds``.

        Links connect to the flows crossing them; flows connect to every
        link on their route.  The closure is a union of whole components,
        which is exactly the region whose allocation the triggering event
        can perturb (progressive filling never reads across components).
        """
        link_flows = self._link_flows
        flows = self._flows
        seen_links = set()
        affected = set()
        stack = list(seeds)
        while stack:
            link = stack.pop()
            if link in seen_links:
                continue
            seen_links.add(link)
            for fid in link_flows.get(link, ()):
                if fid not in affected:
                    affected.add(fid)
                    for other in flows[fid].links:
                        if other not in seen_links:
                            stack.append(other)
        self.dirty_links += len(seen_links)
        return affected

    def _settle(self, seeds, now) -> List[Tuple[FlowId, object, object]]:
        """Recompute the dirty region; settle and report rate-changed
        flows.

        Returns ``[(flow id, new rate, remaining volume), ...]`` for every
        flow whose rate differs from before.  Untouched flows keep their
        timers — the bit-identity lever for tree-degenerate graphs — and
        flows outside the dirty region are never even compared.
        """
        self.reallocations += 1
        flows = self._flows
        if not flows:
            return []
        if not self.incremental:
            # Reference mode: from-scratch solve over everything, exactly
            # the pre-incremental kernel (benchmark twin / test oracle).
            self.settles_full += 1
            self.solves_fraction += 1
            routes = {fid: flow.route for fid, flow in flows.items()}
            if self._selfish:
                new_rates = selfish_rates(routes, self.capacities,
                                          self._priorities)
            else:
                new_rates = _ALLOCATORS[self.mode](routes, self.capacities)
            new_rates = {fid: _exact(rate)
                         for fid, rate in new_rates.items()}
            ordered = list(flows)
        else:
            affected = self._closure(seeds)
            if not affected:
                return []
            self.dirty_flows += len(affected)
            if len(affected) == len(flows):
                self.settles_full += 1
                ordered = list(flows)
            elif len(affected) == 1:
                self.settles_incremental += 1
                ordered = list(affected)
            else:
                self.settles_incremental += 1
                # Insertion order of the flow table, restricted to the
                # region: updates must fire in the same relative order as
                # a full reallocation would report them.
                ordered = sorted(affected,
                                 key=lambda f: flows[f].seq)
            new_rates = self._solve(ordered)
        updates: List[Tuple[FlowId, object, object]] = []
        for fid in ordered:
            flow = flows[fid]
            new_rate = new_rates[fid]
            # ``is`` first: memo hits hand back the identical rate objects
            # every time, so an unchanged flow skips Fraction.__eq__.
            if new_rate is flow.rate or new_rate == flow.rate:
                continue
            if flow.rate:  # settle progress made at the old rate
                flow.volume = _exact(flow.volume
                                     - flow.rate * (now - flow.since))
                self.rate_changes += 1
            flow.rate = new_rate
            flow.since = now
            updates.append((fid, new_rate, _exact(flow.volume)))
        return updates

    def _solve(self, ordered: List[FlowId]) -> Dict[FlowId, Fraction]:
        """Exact rates for the region's flows (memo → trivial → solver).

        Rates come back :func:`_exact`-normalized, and a given signature
        always hands back the *same* rate objects, so the settle loop's
        identity check short-circuits unchanged flows.
        """
        flows = self._flows
        capacities = self.capacities
        if len(ordered) == 1:
            # A lone flow owns every link it crosses (anything sharing
            # one would be in its component): rate = min capacity under
            # every allocator.
            self.solves_trivial += 1
            fid = ordered[0]
            return {fid: _exact(min(capacities[link]
                                    for link in flows[fid].links))}

        selfish = self._selfish
        # Frozen flow-set signature: flows are interchangeable within a
        # (priority class, deduped route) bucket under every allocator,
        # and link capacities are fixed within an epoch (set_capacity
        # clears the memo), so the multiset of buckets alone determines
        # the solution.
        if selfish:
            priorities = self._priorities
            tagged = [(priorities.get(fid), flows[fid].links)
                      for fid in ordered]
            groups: Dict[object, List[Tuple[int, ...]]] = {}
            for prio, links in tagged:
                groups.setdefault(prio, []).append(links)
            order = sorted(key for key in groups if key is not None)
            if None in groups:
                order.append(None)
            signature = tuple((prio, tuple(sorted(groups[prio])))
                              for prio in order)
        else:
            tagged = [flows[fid].links for fid in ordered]
            signature = tuple(sorted(tagged))
        cached = self._memo.get(signature)
        if cached is not None:
            self.memo_hits += 1
            return {fid: cached[tag] for fid, tag in zip(ordered, tagged)}

        region_links = sorted({link for fid in ordered
                               for link in flows[fid].links})
        routes = {fid: flows[fid].links for fid in ordered}
        if selfish:
            rates = self._solve_selfish(routes, region_links)
        elif self.mode == "fairshare":
            rates = self._solve_fairshare(routes, region_links)
        else:
            rates = self._solve_maxmin(routes, region_links)
        for fid in ordered:
            rates[fid] = _exact(rates[fid])

        if len(self._memo) >= _MEMO_LIMIT:
            self._memo.clear()
            self.memo_evictions += 1
        self._memo[signature] = {tag: rates[fid]
                                 for fid, tag in zip(ordered, tagged)}
        return rates

    def _region_scale(self, region_links) -> tuple:
        """``(scale, int caps)`` for a region, cached per epoch.

        The scale is the lcm of the *region's* capacity denominators —
        derived per region rather than globally because one exotic
        denominator anywhere else in the fabric would otherwise push
        every solve onto the Fraction path.  ``(None, None)`` means the
        region itself is past the int bound (→ Fraction fallback).
        """
        key = tuple(region_links)
        cached = self._scales.get(key)
        if cached is None:
            caps = {link: self.capacities[link] for link in region_links}
            scale = _common_denominator(caps.values())
            cached = (scale,
                      None if scale is None else _scaled_caps(caps, scale))
            if len(self._scales) >= _MEMO_LIMIT:
                self._scales.clear()
            self._scales[key] = cached
        return cached

    def _solve_maxmin(self, routes, region_links) -> Dict[FlowId, Fraction]:
        scale, int_caps = self._region_scale(region_links)
        if scale is None:
            self.solves_fraction += 1
            return max_min_rates(routes,
                                 {link: self.capacities[link]
                                  for link in region_links})
        self.solves_int += 1
        return _max_min_int(routes, int_caps, scale)

    def _solve_fairshare(self, routes,
                         region_links) -> Dict[FlowId, Fraction]:
        scale, int_caps = self._region_scale(region_links)
        if scale is None:
            self.solves_fraction += 1
            return fair_share_rates(routes,
                                    {link: self.capacities[link]
                                     for link in region_links})
        self.solves_int += 1
        counts: Dict[int, int] = {}
        for links in routes.values():
            for link in links:
                counts[link] = counts.get(link, 0) + 1
        rates: Dict[FlowId, Fraction] = {}
        for fid, links in routes.items():
            best_num = best_count = None
            for link in links:
                num, count = int_caps[link], counts[link]
                if best_num is None or num * best_count < best_num * count:
                    best_num, best_count = num, count
            rates[fid] = Fraction(best_num, best_count * scale)
        return rates

    def _solve_selfish(self, routes, region_links) -> Dict[FlowId, Fraction]:
        """Strict-priority filling, class by class, each class through the
        integer path when its remaining capacities allow it.

        The first class sees the epoch capacities; later classes see
        remnants whose denominators carry the earlier levels, so each
        class re-derives its own scale (classes are few — one per app).
        """
        priorities = self._priorities
        classes: Dict[object, Dict[FlowId, Tuple[int, ...]]] = {}
        for fid, links in routes.items():
            classes.setdefault(priorities.get(fid), {})[fid] = links
        order = sorted(key for key in classes if key is not None)
        if None in classes:
            order.append(None)
        remaining = {link: self.capacities[link] for link in region_links}
        rates: Dict[FlowId, Fraction] = {}
        for key in order:
            class_flows = classes[key]
            scale = _common_denominator(remaining.values())
            if scale is None:
                self.solves_fraction += 1
                class_rates = max_min_rates(class_flows, remaining)
            else:
                self.solves_int += 1
                class_rates = _max_min_int(class_flows,
                                           _scaled_caps(remaining, scale),
                                           scale)
            for fid, rate in class_rates.items():
                rates[fid] = rate
                for link in class_flows[fid]:
                    left = remaining[link] - rate
                    remaining[link] = left if left > 0 else Fraction(0)
        return rates
