"""The paper's hand-constructed example platforms.

* :func:`figure1_tree` — the 8-node, 3-site tree of Figure 1 used by the
  adaptability study (§4.2.3).  The paper pins down node ``P1``'s weights
  there (``c1 = 1``, ``w1 = 3``); the remaining weights are chosen to be
  representative of the figure (moderate heterogeneity, sites reachable
  through single gateways) and are documented per node below.
* :func:`figure2a_tree` — the fork of Figure 2(a): one buffer does not
  suffice (fast child B starves while the parent serves slow child C).
* :func:`figure2b_tree` — the parametric fork of Figure 2(b): for every
  ``k`` there is a tree where child B needs more than ``k`` buffers.
"""

from __future__ import annotations

from .tree import PlatformTree

__all__ = ["figure1_tree", "figure2a_tree", "figure2b_tree"]

#: Node weights of the Figure 1 tree (id → per-task compute time).
FIGURE1_W = [4, 3, 5, 6, 4, 2, 6, 4]
#: Edges of the Figure 1 tree as (parent, child, cost).
FIGURE1_EDGES = [
    (0, 1, 1),   # P0 → P1   (site 1; §4.2.3: c1 = 1, w1 = 3)
    (0, 2, 3),   # P0 → P2   (site 1 gateway into site 2)
    (2, 3, 5),   # P2 → P3   (site 2)
    (2, 4, 6),   # P2 → P4   (site 2)
    (0, 5, 2),   # P0 → P5   (site 3 gateway)
    (5, 6, 1),   # P5 → P6   (site 3)
    (5, 7, 4),   # P5 → P7   (site 3)
]


def figure1_tree() -> PlatformTree:
    """The three-site example platform of Figure 1 (root ``P0``)."""
    return PlatformTree(FIGURE1_W, FIGURE1_EDGES)


def figure2a_tree(parent_w: int = 10**9) -> PlatformTree:
    """Figure 2(a): root A with children B (c=1, w=2) and C (c=5, w=8).

    While A spends 5 time units sending one task to C, the high-priority
    child B consumes 2.5 tasks, so B needs at least 3 buffered tasks to keep
    busy under non-interruptible communication.  ``parent_w`` defaults to an
    effectively-infinite compute time so the study isolates B and C, as in
    the paper's figure.
    """
    return PlatformTree.fork(parent_w, [(1, 2), (5, 8)])


def figure2b_tree(k: int, x: int = 4, parent_w: int = 10**9,
                  c_w: int = 4) -> PlatformTree:
    """Figure 2(b): B (c=1, w=x) and C (c=k*x+1, w=c_w), x > 1.

    While A sends one task to C — taking ``k*x + 1`` time units — B consumes
    ``k + 1/x`` tasks, so B needs more than ``k`` buffered tasks to sustain
    its rate: non-interruptible communication with any fixed buffer count
    ``k`` fails on the instance built with that ``k``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if x <= 1:
        raise ValueError(f"the construction requires x > 1, got {x}")
    return PlatformTree.fork(parent_w, [(1, x), (k * x + 1, c_w)])
