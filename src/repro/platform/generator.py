"""Random platform-tree generator following the paper's methodology (§4.1).

Each tree is described by five parameters ``m, n, b, d, x``:

* the number of nodes is uniform in ``[m, n]``;
* edges are chosen one at a time between two uniformly random nodes and kept
  iff they do not create a cycle (i.e. a uniform evolution of a random forest
  into a spanning tree);
* each edge's task communication time is uniform in ``[b, d]`` timesteps;
* each node's task computation time is uniform in ``[x/100, x]`` timesteps.

The paper's defaults are ``m=10, n=500, b=1, d=100, x=10 000``, which
produced trees averaging 245 nodes with depths 2–82.  Node 0 is the root
(node labels are themselves random, so this is a uniformly random root).
All draws use a caller-supplied seed for reproducibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterator, Optional

from ..errors import PlatformError
from .tree import PlatformTree

__all__ = ["TreeGeneratorParams", "generate_tree", "generate_ensemble", "PAPER_DEFAULTS"]


@dataclass(frozen=True)
class TreeGeneratorParams:
    """The five generator parameters of §4.1 (naming follows the paper)."""

    #: Minimum number of nodes (paper: ``m``).
    min_nodes: int = 10
    #: Maximum number of nodes (paper: ``n``).
    max_nodes: int = 500
    #: Minimum task communication time per edge (paper: ``b``).
    min_comm: int = 1
    #: Maximum task communication time per edge (paper: ``d``).
    max_comm: int = 100
    #: Maximum task computation time per node (paper: ``x``); the minimum is
    #: ``max(1, x // comp_divisor)``.
    max_comp: int = 10_000
    #: Divisor giving the lower computation bound (paper: 100).
    comp_divisor: int = 100

    def __post_init__(self):
        if not 1 <= self.min_nodes <= self.max_nodes:
            raise PlatformError(
                f"need 1 <= min_nodes <= max_nodes, got {self.min_nodes}, {self.max_nodes}")
        if not 1 <= self.min_comm <= self.max_comm:
            raise PlatformError(
                f"need 1 <= min_comm <= max_comm, got {self.min_comm}, {self.max_comm}")
        if self.max_comp < 1 or self.comp_divisor < 1:
            raise PlatformError("max_comp and comp_divisor must be >= 1")

    @property
    def min_comp(self) -> int:
        """Lower bound of the computation-time distribution."""
        return max(1, self.max_comp // self.comp_divisor)

    def with_max_comp(self, x: int) -> "TreeGeneratorParams":
        """Copy with a different ``x`` (used by the Figure 5 / Table 2 sweeps)."""
        return replace(self, max_comp=x)


#: The exact parameter set used for the bulk of the paper's simulations.
PAPER_DEFAULTS = TreeGeneratorParams()


def generate_tree(params: Optional[TreeGeneratorParams] = None, *,
                  seed: Optional[int] = None,
                  rng: Optional[random.Random] = None) -> PlatformTree:
    """Generate one random platform tree.

    Exactly one source of randomness may be given: a ``seed`` (creates a
    private :class:`random.Random`) or an existing ``rng``.  With neither, a
    fresh unseeded generator is used (non-reproducible).
    """
    if params is None:
        params = PAPER_DEFAULTS
    if rng is not None and seed is not None:
        raise PlatformError("pass either seed or rng, not both")
    if rng is None:
        rng = random.Random(seed)

    n = rng.randint(params.min_nodes, params.max_nodes)

    # Random forest-to-tree evolution with a union-find accept/reject loop,
    # exactly as described in the paper ("edges are chosen one by one to
    # connect two randomly-chosen nodes, provided that adding the edge
    # doesn't create a cycle").
    find_parent = list(range(n))

    def find(i: int) -> int:
        root = i
        while find_parent[root] != root:
            root = find_parent[root]
        while find_parent[i] != root:  # path compression
            find_parent[i], i = root, find_parent[i]
        return root

    adjacency: list[list[int]] = [[] for _ in range(n)]
    accepted = 0
    while accepted < n - 1:
        a = rng.randrange(n)
        b = rng.randrange(n)
        ra, rb = find(a), find(b)
        if ra == rb:
            continue
        find_parent[ra] = rb
        adjacency[a].append(b)
        adjacency[b].append(a)
        accepted += 1

    # Root the undirected tree at node 0 and draw weights.
    parent_of = [-1] * n
    order = [0]
    seen = [False] * n
    seen[0] = True
    idx = 0
    while idx < len(order):
        u = order[idx]
        idx += 1
        for v in adjacency[u]:
            if not seen[v]:
                seen[v] = True
                parent_of[v] = u
                order.append(v)

    lo_w, hi_w = params.min_comp, params.max_comp
    w = [rng.randint(lo_w, hi_w) for _ in range(n)]
    edges = [
        (parent_of[child], child, rng.randint(params.min_comm, params.max_comm))
        for child in range(1, n)
    ]
    return PlatformTree(w, edges, root=0)


def generate_ensemble(count: int, params: Optional[TreeGeneratorParams] = None,
                      *, base_seed: int = 0) -> Iterator[PlatformTree]:
    """Yield ``count`` trees with per-tree seeds ``base_seed + i``.

    Per-tree seeding (rather than one shared stream) lets experiments
    regenerate tree *i* in isolation — e.g. to re-run a single outlier.
    """
    if count < 0:
        raise PlatformError(f"count must be >= 0, got {count}")
    for i in range(count):
        yield generate_tree(params, seed=base_seed + i)
