"""Dynamic resource pools: nodes joining and (gracefully) leaving mid-run.

The paper's §6 future work: *"we will also conduct simulations and
experiments to assess the resilience of our scheduling approach to …
dynamically evolving pools of resources"*, and §3 claims scalability
because "it is very straightforward to add subtrees of nodes below any
currently connected node".  This module provides the events; the protocol
engine consumes them:

* :class:`JoinEvent` — at a virtual time, a whole subtree of fresh nodes
  attaches below an existing node and starts requesting work, with zero
  global coordination;
* :class:`LeaveEvent` — at a virtual time, a subtree *gracefully departs*:
  it withdraws its outstanding requests, accepts whatever is already in
  flight, finishes the tasks it holds (no work is lost), and never asks
  for more.

Abrupt failure (crashes and link outages that destroy buffered and
in-flight tasks) is modelled separately — see :mod:`repro.platform.faults`
and the recovery protocol described in ``docs/protocol.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Union

from ..errors import PlatformError
from .tree import PlatformTree

__all__ = ["JoinEvent", "LeaveEvent", "ChurnSchedule"]


@dataclass(frozen=True)
class JoinEvent:
    """A subtree of new nodes attaches below ``parent`` at ``at_time``."""

    at_time: int
    #: Node id (in the tree as it stands when the event fires) to attach under.
    parent: int
    #: The joining platform; its root becomes ``parent``'s new child.
    subtree: PlatformTree
    #: Edge cost from ``parent`` to the subtree's root.
    attach_cost: int

    def __post_init__(self):
        if self.at_time < 0:
            raise PlatformError("at_time must be >= 0")
        if self.parent < 0:
            raise PlatformError("parent id must be >= 0")
        if not isinstance(self.subtree, PlatformTree):
            raise PlatformError("subtree must be a PlatformTree")
        if not self.attach_cost > 0:
            raise PlatformError("attach_cost must be > 0")


@dataclass(frozen=True)
class LeaveEvent:
    """The subtree rooted at ``node`` departs gracefully at ``at_time``."""

    at_time: int
    node: int

    def __post_init__(self):
        if self.at_time < 0:
            raise PlatformError("at_time must be >= 0")
        if self.node < 0:
            raise PlatformError("node id must be >= 0")


ChurnEvent = Union[JoinEvent, LeaveEvent]


class ChurnSchedule:
    """Time-ordered joins and leaves for one run."""

    def __init__(self, events: Iterable[ChurnEvent] = ()):
        self.events: List[ChurnEvent] = sorted(
            events, key=lambda e: e.at_time)

    def validate(self, tree: PlatformTree) -> None:
        """Static checks against the *initial* tree.

        Joins may reference nodes added by earlier joins and leaves may
        target joined subtrees, so id-range checks for those happen when
        the event fires; here we only reject what can never become valid.
        """
        size = tree.num_nodes
        for event in self.events:
            if isinstance(event, JoinEvent):
                size += event.subtree.num_nodes
            else:
                if event.node == tree.root:
                    raise PlatformError("the repository root cannot leave")
                if event.node >= size:
                    raise PlatformError(
                        f"leave targets node {event.node}, which cannot exist "
                        f"by t={event.at_time} (at most {size} nodes)")

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)
