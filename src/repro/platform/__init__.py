"""Platform model: weighted trees and graphs, generation, overlays.

The tree model (§2.1 of the paper): nodes are compute resources with
per-task compute time ``w``, edges are links with per-task transfer time
``c`` (input plus returned output).  See :class:`PlatformTree`.

:class:`PlatformGraph` generalizes this to routed graphs with shared-link
contention (max-min / fair-share allocation; see
:mod:`repro.platform.contention`); trees embed as the validated special
case via :meth:`PlatformGraph.from_tree`.
"""

from .tree import PlatformTree, TreeNode
from .graph import (
    CONTENTION_MODES,
    GRAPH_TOPOLOGIES,
    Overlay,
    PlatformGraph,
    build_overlay,
    generate_platform,
)
from .contention import LinkContention, fair_share_rates, max_min_rates
from .generator import (
    PAPER_DEFAULTS,
    TreeGeneratorParams,
    generate_ensemble,
    generate_tree,
)
from .examples import figure1_tree, figure2a_tree, figure2b_tree
from .mutation import Mutation, MutationSchedule
from .churn import ChurnSchedule, JoinEvent, LeaveEvent
from .faults import (CrashEvent, DegradeEvent, EdgeFailureEvent,
                     EdgeRepairEvent, FaultSchedule, LinkFailureEvent,
                     LinkRepairEvent, SwitchCrashEvent, chaos_schedule)
from .serialize import from_dict, from_json, to_dict, to_dot, to_json
from . import overlay

__all__ = [
    "PlatformTree",
    "TreeNode",
    "PlatformGraph",
    "Overlay",
    "build_overlay",
    "generate_platform",
    "GRAPH_TOPOLOGIES",
    "CONTENTION_MODES",
    "LinkContention",
    "max_min_rates",
    "fair_share_rates",
    "TreeGeneratorParams",
    "PAPER_DEFAULTS",
    "generate_tree",
    "generate_ensemble",
    "figure1_tree",
    "figure2a_tree",
    "figure2b_tree",
    "Mutation",
    "MutationSchedule",
    "ChurnSchedule",
    "JoinEvent",
    "LeaveEvent",
    "CrashEvent",
    "LinkFailureEvent",
    "LinkRepairEvent",
    "EdgeFailureEvent",
    "EdgeRepairEvent",
    "SwitchCrashEvent",
    "DegradeEvent",
    "FaultSchedule",
    "chaos_schedule",
    "to_dict",
    "from_dict",
    "to_json",
    "from_json",
    "to_dot",
    "overlay",
]
