"""Dynamic platform changes for the adaptability experiments (§4.2.3).

The paper perturbs the Figure 1 platform mid-run: after 200 of 1000 tasks
complete, either the communication time ``c1`` rises from 1 to 3 (network
contention) or the compute time ``w1`` drops from 3 to 1 (processor
contention relief).  A :class:`Mutation` describes one such change, fired
either when a given number of tasks has completed or at a virtual time; a
:class:`MutationSchedule` is an ordered collection the protocol engine
consumes during a run.

Activities already in progress keep their original duration; the new weight
applies from the next transfer/computation on, which models a rate change
observed only by subsequent operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Literal, Optional, Tuple

from ..errors import PlatformError
from .tree import PlatformTree

__all__ = ["Mutation", "MutationSchedule"]


@dataclass(frozen=True)
class Mutation:
    """One weight change: set ``attribute`` of ``node`` to ``value``.

    Exactly one of ``after_tasks`` (completed-task trigger) and ``at_time``
    (virtual-time trigger) must be given.
    """

    node: int
    attribute: Literal["c", "w"]
    value: int
    after_tasks: Optional[int] = None
    at_time: Optional[int] = None

    def __post_init__(self):
        if self.attribute not in ("c", "w"):
            raise PlatformError(f"attribute must be 'c' or 'w', got {self.attribute!r}")
        if not self.value > 0:
            raise PlatformError(f"mutated weight must be > 0, got {self.value!r}")
        if (self.after_tasks is None) == (self.at_time is None):
            raise PlatformError("specify exactly one of after_tasks / at_time")
        if self.after_tasks is not None and self.after_tasks < 0:
            raise PlatformError("after_tasks must be >= 0")
        if self.at_time is not None and self.at_time < 0:
            raise PlatformError("at_time must be >= 0")

    def apply(self, tree: PlatformTree) -> None:
        """Apply this change to ``tree`` in place."""
        if self.attribute == "c":
            tree.set_edge_cost(self.node, self.value)
        else:
            tree.set_compute_weight(self.node, self.value)


class MutationSchedule:
    """An ordered set of mutations validated against a tree.

    Iterating yields mutations; :meth:`task_triggered` and
    :meth:`time_triggered` split them by trigger kind for the engine.
    """

    def __init__(self, mutations: Iterable[Mutation] = ()):
        self.mutations: List[Mutation] = list(mutations)

    def validate(self, tree: PlatformTree) -> None:
        """Check every mutation references a legal node/edge of ``tree``."""
        for m in self.mutations:
            if not 0 <= m.node < tree.num_nodes:
                raise PlatformError(f"mutation references unknown node {m.node}")
            if m.attribute == "c" and tree.parent[m.node] is None:
                raise PlatformError("cannot mutate the root's (nonexistent) parent edge")

    def task_triggered(self) -> List[Mutation]:
        """Mutations firing on completed-task counts, sorted by trigger."""
        out = [m for m in self.mutations if m.after_tasks is not None]
        out.sort(key=lambda m: m.after_tasks)
        return out

    def time_triggered(self) -> List[Mutation]:
        """Mutations firing at virtual times, sorted by trigger."""
        out = [m for m in self.mutations if m.at_time is not None]
        out.sort(key=lambda m: m.at_time)
        return out

    def phases(self, tree: PlatformTree) -> List[Tuple[Optional[int], PlatformTree]]:
        """Successive platform states as ``(task_trigger, tree)`` pairs.

        The first entry is ``(None, original tree)``; each task-triggered
        mutation contributes the platform as it stands after that mutation.
        Used to draw the per-phase optimal-rate reference lines of Fig. 7(b).
        """
        out: List[Tuple[Optional[int], PlatformTree]] = [(None, tree.copy())]
        current = tree.copy()
        for m in self.task_triggered():
            current = current.copy()
            m.apply(current)
            out.append((m.after_tasks, current))
        return out

    def __iter__(self) -> Iterator[Mutation]:
        return iter(self.mutations)

    def __len__(self) -> int:
        return len(self.mutations)

    def __bool__(self) -> bool:
        return bool(self.mutations)
