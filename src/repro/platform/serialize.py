"""Serialization of platforms: JSON round-trips and Graphviz export.

The tree JSON schema is intentionally boring and stable::

    {"root": 0,
     "nodes": [{"id": 0, "w": 4}, ...],
     "edges": [{"parent": 0, "child": 1, "c": 1}, ...]}

so ensembles can be archived, diffed and shared between experiment runs.
Platform graphs use a sibling schema distinguished by ``"kind": "graph"``
(switches carry ``"w": null``; link ids are implicit in array order,
which is part of a graph's identity — see the max-min tie-break)::

    {"kind": "graph", "root": 0, "contention": "maxmin",
     "nodes": [{"id": 0, "w": 4}, {"id": 3, "w": null}, ...],
     "links": [{"u": 0, "v": 3, "c": 2}, ...],
     "meta": {"kind": "leafspine", ...}}

:func:`from_dict`/:func:`from_json` dispatch on ``"kind"`` — documents
without it stay trees, so every pre-existing archive still loads.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Union

from ..errors import PlatformError
from .graph import PlatformGraph
from .tree import PlatformTree

__all__ = ["to_dict", "from_dict", "to_json", "from_json", "to_dot"]

Platform = Union[PlatformTree, PlatformGraph]


def to_dict(platform: Platform) -> Dict[str, Any]:
    """Plain-data representation of a tree or graph platform."""
    if isinstance(platform, PlatformGraph):
        doc: Dict[str, Any] = {
            "kind": "graph",
            "root": platform.root,
            "contention": platform.contention,
            "nodes": [{"id": i, "w": platform.w[i]}
                      for i in range(platform.num_nodes)],
            "links": [{"u": u, "v": v, "c": c}
                      for _i, u, v, c in platform.links()],
        }
        if platform.meta:
            doc["meta"] = dict(platform.meta)
        return doc
    return {
        "root": platform.root,
        "nodes": [{"id": i, "w": platform.w[i]}
                  for i in range(platform.num_nodes)],
        "edges": [{"parent": p, "child": ch, "c": c}
                  for p, ch, c in platform.edges()],
    }


def _nodes_to_weights(data: Dict[str, Any]) -> list:
    nodes = sorted(data["nodes"], key=lambda nd: nd["id"])
    expected_ids = list(range(len(nodes)))
    if [nd["id"] for nd in nodes] != expected_ids:
        raise PlatformError(f"node ids must be 0..{len(nodes) - 1}")
    return [nd["w"] for nd in nodes]


def from_dict(data: Dict[str, Any]) -> Platform:
    """Rebuild a platform from :func:`to_dict` output (validating as it
    goes).  ``"kind": "graph"`` yields a :class:`PlatformGraph`; anything
    else (including legacy documents with no ``kind``) a
    :class:`PlatformTree`."""
    kind = data.get("kind", "tree") if isinstance(data, dict) else "tree"
    try:
        if kind == "graph":
            w = _nodes_to_weights(data)
            links = [(l["u"], l["v"], l["c"]) for l in data["links"]]
            return PlatformGraph(w, links, root=data["root"],
                                 contention=data.get("contention", "maxmin"),
                                 meta=data.get("meta"))
        if kind != "tree":
            raise PlatformError(f"unknown platform kind {kind!r}")
        w = _nodes_to_weights(data)
        edges = [(e["parent"], e["child"], e["c"]) for e in data["edges"]]
        root = data["root"]
    except (KeyError, TypeError) as exc:
        raise PlatformError(f"malformed platform document: {exc!r}") from exc
    return PlatformTree(w, edges, root=root)


def to_json(platform: Platform, *, indent: int = None) -> str:
    """JSON text for a tree or graph platform."""
    return json.dumps(to_dict(platform), indent=indent)


def from_json(text: str) -> Platform:
    """Parse JSON text produced by :func:`to_json`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PlatformError(f"invalid JSON: {exc}") from exc
    return from_dict(data)


def to_dot(platform: Platform, *, name: str = "platform") -> str:
    """Graphviz DOT text.

    Trees render as a digraph (``P<i> w=<w>`` nodes, edges labelled
    ``c``); graphs as an undirected graph with box-shaped switches.
    """
    if isinstance(platform, PlatformGraph):
        lines = [f"graph {name} {{", "  layout=neato;"]
        for i in range(platform.num_nodes):
            if platform.w[i] is None:
                lines.append(f'  n{i} [label="S{i}" shape=box];')
            else:
                shape = ("doublecircle" if i == platform.root else "circle")
                lines.append(
                    f'  n{i} [label="P{i}\\nw={platform.w[i]}" shape={shape}];')
        for _i, u, v, cost in platform.links():
            lines.append(f'  n{u} -- n{v} [label="{cost}"];')
        lines.append("}")
        return "\n".join(lines)
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    for i in range(platform.num_nodes):
        shape = "doublecircle" if i == platform.root else "circle"
        lines.append(f'  n{i} [label="P{i}\\nw={platform.w[i]}" shape={shape}];')
    for parent, child, cost in platform.edges():
        lines.append(f'  n{parent} -> n{child} [label="{cost}"];')
    lines.append("}")
    return "\n".join(lines)
