"""Serialization of platform trees: JSON round-trips and Graphviz export.

The JSON schema is intentionally boring and stable::

    {"root": 0,
     "nodes": [{"id": 0, "w": 4}, ...],
     "edges": [{"parent": 0, "child": 1, "c": 1}, ...]}

so ensembles can be archived, diffed and shared between experiment runs.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from ..errors import PlatformError
from .tree import PlatformTree

__all__ = ["to_dict", "from_dict", "to_json", "from_json", "to_dot"]


def to_dict(tree: PlatformTree) -> Dict[str, Any]:
    """Plain-data representation of ``tree``."""
    return {
        "root": tree.root,
        "nodes": [{"id": i, "w": tree.w[i]} for i in range(tree.num_nodes)],
        "edges": [{"parent": p, "child": ch, "c": c} for p, ch, c in tree.edges()],
    }


def from_dict(data: Dict[str, Any]) -> PlatformTree:
    """Rebuild a tree from :func:`to_dict` output (validating as it goes)."""
    try:
        nodes = sorted(data["nodes"], key=lambda nd: nd["id"])
        expected_ids = list(range(len(nodes)))
        if [nd["id"] for nd in nodes] != expected_ids:
            raise PlatformError(f"node ids must be 0..{len(nodes) - 1}")
        w = [nd["w"] for nd in nodes]
        edges = [(e["parent"], e["child"], e["c"]) for e in data["edges"]]
        root = data["root"]
    except (KeyError, TypeError) as exc:
        raise PlatformError(f"malformed tree document: {exc!r}") from exc
    return PlatformTree(w, edges, root=root)


def to_json(tree: PlatformTree, *, indent: int = None) -> str:
    """JSON text for ``tree``."""
    return json.dumps(to_dict(tree), indent=indent)


def from_json(text: str) -> PlatformTree:
    """Parse JSON text produced by :func:`to_json`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PlatformError(f"invalid JSON: {exc}") from exc
    return from_dict(data)


def to_dot(tree: PlatformTree, *, name: str = "platform") -> str:
    """Graphviz DOT text: nodes labelled ``P<i> w=<w>``, edges with ``c``."""
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    for i in range(tree.num_nodes):
        shape = "doublecircle" if i == tree.root else "circle"
        lines.append(f'  n{i} [label="P{i}\\nw={tree.w[i]}" shape={shape}];')
    for parent, child, cost in tree.edges():
        lines.append(f'  n{parent} -> n{child} [label="{cost}"];')
    lines.append("}")
    return "\n".join(lines)
