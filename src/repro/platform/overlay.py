"""Tree-overlay construction from general physical topologies (§6 future work).

The paper leaves open "on what basis the overlay network should be
constructed": the platform is really a general graph of hosts and links, and
the scheduling model needs a spanning tree rooted at the data repository.
This module implements and compares candidate constructions:

* :func:`bfs_overlay` — minimum-hop tree (breadth-first from the root);
* :func:`shortest_path_overlay` — Dijkstra tree minimising summed edge cost
  from the root (favors short pipelines);
* :func:`mst_overlay` — Prim minimum-spanning tree on edge cost (favors
  globally cheap links, i.e. *bandwidth-first*);
* :func:`random_overlay` — uniform random spanning structure (baseline).

:func:`compare_overlays` ranks constructions by the optimal steady-state
rate of the resulting tree (computed with :mod:`repro.steady_state`), which
is exactly the yardstick the paper proposes.

The physical topology is a plain adjacency structure (``networkx`` graphs
are accepted and converted when available, but not required).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import PlatformError
from .tree import PlatformTree

__all__ = [
    "PhysicalTopology",
    "bfs_overlay",
    "shortest_path_overlay",
    "mst_overlay",
    "random_overlay",
    "compare_overlays",
    "OverlayComparison",
]


class PhysicalTopology:
    """An undirected host graph with per-host compute and per-link costs.

    Parameters
    ----------
    w:
        Per-host compute times (``w[i] > 0``).
    links:
        ``(u, v, cost)`` triples (undirected, no self-loops, ``cost > 0``).
        Parallel links keep the cheapest cost.
    """

    def __init__(self, w: Sequence[int], links: Iterable[Tuple[int, int, int]]):
        n = len(w)
        if n == 0:
            raise PlatformError("a topology needs at least one host")
        for i, wi in enumerate(w):
            if not wi > 0:
                raise PlatformError(f"host {i}: compute weight must be > 0")
        self.w = list(w)
        self.adj: List[Dict[int, int]] = [dict() for _ in range(n)]
        for u, v, cost in links:
            if u == v:
                raise PlatformError(f"self-loop at host {u}")
            if not (0 <= u < n and 0 <= v < n):
                raise PlatformError(f"link ({u}, {v}) references unknown host")
            if not cost > 0:
                raise PlatformError(f"link ({u}, {v}): cost must be > 0")
            previous = self.adj[u].get(v)
            if previous is None or cost < previous:
                self.adj[u][v] = cost
                self.adj[v][u] = cost

    @classmethod
    def from_networkx(cls, graph, *, weight_attr: str = "w",
                      cost_attr: str = "c") -> "PhysicalTopology":
        """Convert a ``networkx.Graph``; nodes must be ``0..n-1``."""
        n = graph.number_of_nodes()
        if sorted(graph.nodes) != list(range(n)):
            raise PlatformError("networkx graph nodes must be labelled 0..n-1")
        w = [graph.nodes[i][weight_attr] for i in range(n)]
        links = [(u, v, data[cost_attr]) for u, v, data in graph.edges(data=True)]
        return cls(w, links)

    @property
    def num_hosts(self) -> int:
        return len(self.w)

    def check_connected_from(self, root: int) -> None:
        """Raise :class:`PlatformError` unless all hosts are reachable."""
        seen = {root}
        stack = [root]
        while stack:
            u = stack.pop()
            for v in self.adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        if len(seen) != self.num_hosts:
            raise PlatformError(
                f"topology is disconnected: only {len(seen)}/{self.num_hosts} "
                f"hosts reachable from root {root}")


def _relabel(topology: PhysicalTopology, root: int,
             parent_of: Dict[int, Tuple[int, int]]) -> PlatformTree:
    """Build a PlatformTree (root relabelled to id 0) from a parent map."""
    order = [root] + [h for h in range(topology.num_hosts) if h != root]
    new_id = {host: i for i, host in enumerate(order)}
    w = [topology.w[host] for host in order]
    edges = [(new_id[parent], new_id[child], cost)
             for child, (parent, cost) in parent_of.items()]
    return PlatformTree(w, edges, root=0)


def bfs_overlay(topology: PhysicalTopology, root: int = 0) -> PlatformTree:
    """Minimum-hop spanning tree (ties broken by host id)."""
    topology.check_connected_from(root)
    parent_of: Dict[int, Tuple[int, int]] = {}
    queue = [root]
    seen = {root}
    idx = 0
    while idx < len(queue):
        u = queue[idx]
        idx += 1
        for v in sorted(topology.adj[u]):
            if v not in seen:
                seen.add(v)
                parent_of[v] = (u, topology.adj[u][v])
                queue.append(v)
    return _relabel(topology, root, parent_of)


def shortest_path_overlay(topology: PhysicalTopology, root: int = 0) -> PlatformTree:
    """Dijkstra tree: each host attaches along its cheapest path from root."""
    topology.check_connected_from(root)
    dist = {root: 0}
    parent_of: Dict[int, Tuple[int, int]] = {}
    heap: List[Tuple[int, int, int, int]] = [(0, root, -1, 0)]
    done = set()
    while heap:
        d, u, parent, cost = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        if parent >= 0:
            parent_of[u] = (parent, cost)
        for v, link_cost in topology.adj[u].items():
            nd = d + link_cost
            if v not in done and nd < dist.get(v, float("inf")):
                dist[v] = nd
                heapq.heappush(heap, (nd, v, u, link_cost))
    return _relabel(topology, root, parent_of)


def mst_overlay(topology: PhysicalTopology, root: int = 0) -> PlatformTree:
    """Prim minimum spanning tree on link cost, grown from the root."""
    topology.check_connected_from(root)
    parent_of: Dict[int, Tuple[int, int]] = {}
    heap: List[Tuple[int, int, int]] = [(0, root, -1)]
    done = set()
    while heap:
        cost, u, parent = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        if parent >= 0:
            parent_of[u] = (parent, cost)
        for v, link_cost in topology.adj[u].items():
            if v not in done:
                heapq.heappush(heap, (link_cost, v, u))
    return _relabel(topology, root, parent_of)


def random_overlay(topology: PhysicalTopology, root: int = 0,
                   *, seed: Optional[int] = None) -> PlatformTree:
    """Random spanning tree via randomized Prim growth (baseline)."""
    topology.check_connected_from(root)
    rng = random.Random(seed)
    parent_of: Dict[int, Tuple[int, int]] = {}
    frontier: List[Tuple[int, int]] = [(root, -1)]
    done = set()
    while frontier:
        idx = rng.randrange(len(frontier))
        u, parent = frontier.pop(idx)
        if u in done:
            continue
        done.add(u)
        if parent >= 0:
            parent_of[u] = (parent, topology.adj[parent][u])
        for v in topology.adj[u]:
            if v not in done:
                frontier.append((v, u))
    return _relabel(topology, root, parent_of)


@dataclass(frozen=True)
class OverlayComparison:
    """Result row of :func:`compare_overlays` (rates are floats, higher wins)."""

    strategy: str
    tree: PlatformTree
    rate: float


def compare_overlays(topology: PhysicalTopology, root: int = 0,
                     *, seed: Optional[int] = None) -> List[OverlayComparison]:
    """Build all overlay variants and rank them by optimal steady-state rate."""
    from ..steady_state import solve_tree  # local import: avoids package cycle

    builders = [
        ("bfs", lambda: bfs_overlay(topology, root)),
        ("shortest-path", lambda: shortest_path_overlay(topology, root)),
        ("mst", lambda: mst_overlay(topology, root)),
        ("random", lambda: random_overlay(topology, root, seed=seed)),
    ]
    rows = []
    for name, build in builders:
        tree = build()
        rows.append(OverlayComparison(name, tree, float(solve_tree(tree).rate)))
    rows.sort(key=lambda row: row.rate, reverse=True)
    return rows
