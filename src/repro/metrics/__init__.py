"""Measurement layer: windowed throughput, onset detection, buffer and
used-subtree statistics, ensemble aggregation (§4.1 methodology)."""

from .windows import (
    normalized_window_rates,
    num_windows,
    steady_state_rate,
    window_rate,
    window_rates,
)
from .onset import (
    PAPER_NUM_TASKS,
    PAPER_THRESHOLD_WINDOW,
    default_threshold,
    detect_onset,
    reached_optimal,
)
from .buffers import buffers_at_completions, reached_within_buffers
from .usage import UsageStats, histogram_pdf, node_utilization, usage_stats
from .ensemble import median_or_none, onset_cdf, percentage_reached, summarize
from .phases import PhaseBreakdown, phase_breakdown
from .faults import (
    RecoveryReport,
    degraded_windows,
    post_recovery_rate,
    recovery_latencies,
    recovery_report,
)

__all__ = [
    "window_rate",
    "window_rates",
    "normalized_window_rates",
    "num_windows",
    "steady_state_rate",
    "detect_onset",
    "reached_optimal",
    "default_threshold",
    "PAPER_THRESHOLD_WINDOW",
    "PAPER_NUM_TASKS",
    "buffers_at_completions",
    "reached_within_buffers",
    "UsageStats",
    "usage_stats",
    "histogram_pdf",
    "node_utilization",
    "median_or_none",
    "onset_cdf",
    "percentage_reached",
    "summarize",
    "PhaseBreakdown",
    "phase_breakdown",
    "RecoveryReport",
    "recovery_latencies",
    "post_recovery_rate",
    "degraded_windows",
    "recovery_report",
]
