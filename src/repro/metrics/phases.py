"""Execution-phase analysis: startup / steady state / wind-down (§2.1).

The paper describes a complete schedule as "a startup interval where some
nodes are not yet running at full speed, then a periodic steady-state
interval where b tasks are executed every t time units, and finally a
wind-down interval where some but not all nodes are finished", and observes
(from simulations not displayed) that *"for all protocols the startup time
increases as the computation-to-communication ratio increases"* and that
more fixed buffers lengthen startup.  This module makes those phases
measurable for a single run.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Union

from ..errors import ReproError
from ..protocols.result import SimulationResult
from .onset import detect_onset

__all__ = ["PhaseBreakdown", "phase_breakdown"]


@dataclass(frozen=True)
class PhaseBreakdown:
    """Durations (virtual timesteps) of one run's three phases.

    ``startup`` runs to the completion of the onset window's first task
    (``None`` when the run never reached optimal steady state — then
    ``steady`` is ``None`` too and the whole middle counts as ``other``).
    ``wind_down`` starts when the repository hands out its last task.
    """

    makespan: int
    onset_window: Optional[int]
    startup: Optional[int]
    steady: Optional[int]
    wind_down: int

    @property
    def reached_steady_state(self) -> bool:
        return self.onset_window is not None

    @property
    def startup_fraction(self) -> Optional[float]:
        """Share of the makespan spent starting up."""
        if self.startup is None or self.makespan == 0:
            return None
        return self.startup / self.makespan


def phase_breakdown(result: SimulationResult,
                    optimal_rate: Union[Fraction, int],
                    threshold_window: Optional[int] = None) -> PhaseBreakdown:
    """Split one run into startup / steady / wind-down durations."""
    times = result.completion_times
    if not times:
        raise ReproError("phase_breakdown needs a non-empty run")
    makespan = times[-1]
    exhausted = result.repository_exhausted_at
    if exhausted is None:  # pragma: no cover - engine always sets it
        raise ReproError("run did not record repository exhaustion")
    wind_down = makespan - exhausted

    onset = detect_onset(times, optimal_rate, threshold_window)
    if onset is None:
        return PhaseBreakdown(makespan=makespan, onset_window=None,
                              startup=None, steady=None, wind_down=wind_down)
    startup = times[onset - 1]  # completion time of the onset window's start
    steady = max(0, exhausted - startup)
    return PhaseBreakdown(makespan=makespan, onset_window=onset,
                          startup=startup, steady=steady,
                          wind_down=wind_down)
