"""Buffer-usage statistics (Table 1 / Table 2 inputs)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..errors import ReproError
from ..protocols.result import SimulationResult

__all__ = ["buffers_at_completions", "reached_within_buffers"]


def buffers_at_completions(result: SimulationResult,
                           task_counts: Sequence[int]) -> Dict[int, Optional[int]]:
    """Global buffer high-water when each of ``task_counts`` tasks completed.

    Requires the run to have been made with ``record_buffer_timeline=True``;
    counts beyond the run's task total map to ``None``.
    """
    timeline = result.buffer_high_water_at_completion
    if result.num_tasks > 0 and not timeline:
        raise ReproError(
            "run was not recorded with record_buffer_timeline=True")
    out: Dict[int, Optional[int]] = {}
    for count in task_counts:
        if count < 1:
            raise ReproError(f"task count must be >= 1, got {count}")
        out[count] = timeline[count - 1] if count <= len(timeline) else None
    return out


def reached_within_buffers(onset: Optional[int], max_buffers: int,
                           budget: int) -> bool:
    """Table 1's cell predicate: reached optimal using at most ``budget``
    buffers per node."""
    return onset is not None and max_buffers <= budget
