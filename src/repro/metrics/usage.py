"""Used-subtree statistics (Figure 6): which part of the tree does work.

The paper compares, over the ensemble, the distribution of tree sizes and
depths of *all* nodes against the sub-tree of *used* nodes (nodes that
computed at least one task during the protocol simulation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..protocols.result import SimulationResult

__all__ = ["UsageStats", "usage_stats", "histogram_pdf", "node_utilization"]


@dataclass(frozen=True)
class UsageStats:
    """Size/depth of the full tree vs its used sub-tree for one run."""

    total_nodes: int
    used_nodes: int
    total_depth: int
    used_depth: int

    @property
    def used_fraction(self) -> float:
        """Share of nodes that computed at least one task."""
        return self.used_nodes / self.total_nodes


def usage_stats(result: SimulationResult) -> UsageStats:
    """Extract Figure-6 statistics from one simulation result."""
    tree = result.tree
    return UsageStats(
        total_nodes=tree.num_nodes,
        used_nodes=result.num_used_nodes,
        total_depth=tree.max_depth,
        used_depth=result.used_depth,
    )


def node_utilization(result: SimulationResult) -> np.ndarray:
    """Fraction of the run each node spent computing (length num_nodes).

    ``computed_i · w_i / makespan`` per node.  Built only from per-node
    tallies and the final completion time, both of which steady-state warp
    extrapolates exactly, so warped and exact runs agree — and it works for
    runs that skipped completion-time recording entirely.
    """
    makespan = result.makespan
    if makespan <= 0:
        raise ReproError("node_utilization needs a non-trivial run")
    computed = np.asarray(result.per_node_computed, dtype=np.float64)
    weights = np.asarray(result.tree.w, dtype=np.float64)
    return computed * weights / makespan


def histogram_pdf(values: Sequence[int], bin_width: int = 1,
                  upper: int = None) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical PDF over integer values binned by ``bin_width``.

    Returns ``(bin_lefts, fractions)`` with fractions summing to 1 (empty
    input returns two empty arrays).  Used to regenerate Figure 6's curves.
    """
    if bin_width < 1:
        raise ReproError(f"bin_width must be >= 1, got {bin_width}")
    data = np.asarray(list(values), dtype=np.int64)
    if data.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0)
    top = int(data.max()) if upper is None else upper
    edges = np.arange(0, top + 2 * bin_width, bin_width)
    counts, _ = np.histogram(data, bins=edges)
    fractions = counts / data.size
    return edges[:-1], fractions
