"""Ensemble aggregation: CDFs over trees, medians, percentage tables.

These helpers turn per-tree metrics (onset task counts, buffer usage,
usage statistics) into the rows the paper's figures and tables report.
``None`` onsets mean "never reached optimal" and are excluded from CDF
numerators but kept in the denominator, exactly like the paper's
percentage-of-trees plots.
"""

from __future__ import annotations

import statistics
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError

__all__ = ["onset_cdf", "percentage_reached", "median_or_none", "summarize"]


def onset_cdf(onsets: Sequence[Optional[int]],
              xs: Sequence[int]) -> np.ndarray:
    """Fraction of trees whose onset is ``<= x`` for each x (Figure 4/5).

    ``None`` entries (never reached) count in the denominator only.
    """
    if not onsets:
        raise ReproError("onset_cdf needs at least one tree")
    reached = np.array(sorted(o for o in onsets if o is not None), dtype=np.int64)
    xs_arr = np.asarray(list(xs), dtype=np.int64)
    counts = np.searchsorted(reached, xs_arr, side="right")
    return counts / len(onsets)


def percentage_reached(onsets: Sequence[Optional[int]]) -> float:
    """Percentage of trees that reached optimal steady state (0–100)."""
    if not onsets:
        raise ReproError("percentage_reached needs at least one tree")
    return 100.0 * sum(1 for o in onsets if o is not None) / len(onsets)


def median_or_none(values: Iterable[Optional[float]]) -> Optional[float]:
    """Median of the non-``None`` values (``None`` if all missing)."""
    present = [v for v in values if v is not None]
    if not present:
        return None
    return statistics.median(present)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / median / min / max of a metric across an ensemble."""
    if not values:
        raise ReproError("summarize needs at least one value")
    return {
        "mean": statistics.fmean(values),
        "median": statistics.median(values),
        "min": min(values),
        "max": max(values),
    }
