"""Fault-recovery metrics: how well a run absorbed abrupt failures.

Companion to :mod:`repro.platform.faults` and the engine's recovery
protocol.  Everything here is computed *after* the run from the fields
:class:`~repro.protocols.result.SimulationResult` records:

* **re-execution cost** — task instances destroyed by faults that the root
  had to dispense a second time (``tasks_reexecuted``);
* **wasted link time** — transfers killed mid-flight (``transfers_wasted``);
* **recovery latency** — virtual time from each crash to the first reclaim
  of its lost work (detection via the request-liveness timeout, plus the
  exponential-backoff probes);
* **degraded-throughput windows** — growing windows (§4.1) whose rate falls
  below a threshold of the *surviving* platform's optimal steady-state
  rate, i.e. how long the failure was actually felt;
* **post-recovery rate** — the achieved rate after the last reclaim, to be
  compared against ``solve_tree(result.surviving_tree()).rate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Tuple

from ..protocols.result import SimulationResult
from ..steady_state.solver import solve_tree
from .windows import window_rates

__all__ = [
    "RecoveryReport",
    "recovery_latencies",
    "post_recovery_rate",
    "degraded_windows",
    "recovery_report",
]


def recovery_latencies(result: SimulationResult) -> List[int]:
    """Per-crash latency until the first reclaim at or after it.

    A crash whose lost work was never reclaimed (impossible for completed
    runs unless it destroyed zero in-system instances) contributes nothing.
    """
    latencies: List[int] = []
    for crash_at in result.crash_times:
        later = [t for t in result.reclaim_times if t >= crash_at]
        if later:
            latencies.append(min(later) - crash_at)
    return latencies


def post_recovery_rate(result: SimulationResult) -> Optional[Fraction]:
    """Exact mean completion rate after the last fault was recovered.

    Measures from the first completion after the last crash/reclaim up to
    the repository's exhaustion (the wind-down tail, where nodes merely
    drain their buffers, is excluded like the startup phase is by the
    paper's growing windows).  ``None`` when fewer than two completions
    fall inside that span.
    """
    cutoff = max(
        result.crash_times[-1] if result.crash_times else 0,
        result.reclaim_times[-1] if result.reclaim_times else 0,
    )
    end = result.repository_exhausted_at
    if end is None:
        end = result.makespan
    times = [t for t in result.completion_times if cutoff < t <= end]
    if len(times) < 2 or times[-1] == times[0]:
        return None
    return Fraction(len(times) - 1, times[-1] - times[0])


def degraded_windows(result: SimulationResult,
                     threshold: float = 0.9) -> List[int]:
    """Growing-window indices whose rate is below ``threshold`` × the
    surviving platform's optimal steady-state rate."""
    optimal = float(solve_tree(result.surviving_tree()).rate)
    limit = threshold * optimal
    rates = window_rates(result.completion_times)
    return [x + 1 for x, rate in enumerate(rates) if rate < limit]


@dataclass(frozen=True)
class RecoveryReport:
    """One-stop summary of a faulty run's recovery behaviour."""

    tasks_reexecuted: int
    transfers_wasted: int
    num_crashed_nodes: int
    recovery_latencies: Tuple[int, ...]
    #: Optimal steady-state rate of the platform minus crashed subtrees.
    surviving_optimal_rate: Fraction
    #: Achieved rate after the last recovery (None if too little data).
    post_recovery_rate: Optional[Fraction]
    #: Growing windows below 90% of the surviving optimal.
    degraded_window_count: int
    total_windows: int

    @property
    def post_recovery_efficiency(self) -> Optional[float]:
        """``post_recovery_rate / surviving_optimal_rate`` (None if unknown)."""
        if self.post_recovery_rate is None:
            return None
        return float(self.post_recovery_rate / self.surviving_optimal_rate)


def recovery_report(result: SimulationResult,
                    threshold: float = 0.9) -> RecoveryReport:
    """Compute the full :class:`RecoveryReport` for one run."""
    degraded = degraded_windows(result, threshold)
    return RecoveryReport(
        tasks_reexecuted=result.tasks_reexecuted,
        transfers_wasted=result.transfers_wasted,
        num_crashed_nodes=len(result.crashed_node_ids),
        recovery_latencies=tuple(recovery_latencies(result)),
        surviving_optimal_rate=solve_tree(result.surviving_tree()).rate,
        post_recovery_rate=post_recovery_rate(result),
        degraded_window_count=len(degraded),
        total_windows=len(result.completion_times) // 2,
    )
