"""Sliding growing-window throughput rates (§4.1 methodology).

The paper measures the average execution rate between the completion of task
``x`` and task ``2x``: the point at x on the x-axis is
``(2x - x) / (t_2x - t_x)``.  As the run proceeds the window grows, so it
eventually excludes the startup phase while covering at least one full
period of the steady-state schedule.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ReproError

__all__ = ["window_rate", "window_rates", "normalized_window_rates",
           "num_windows", "steady_state_rate"]


def num_windows(num_completions: int) -> int:
    """Largest valid window index (x needs both t_x and t_2x)."""
    return num_completions // 2


def window_rate(completion_times: Sequence[int], x: int) -> Fraction:
    """Exact average rate over the window from task ``x`` to task ``2x``."""
    if x < 1 or 2 * x > len(completion_times):
        raise ReproError(
            f"window {x} out of range for {len(completion_times)} completions")
    dt = completion_times[2 * x - 1] - completion_times[x - 1]
    if dt < 0:
        # Completion times are non-decreasing by construction; a negative
        # span means the input is corrupted, not an infinite burst.
        raise ReproError(
            f"completion times out of order: t_{2 * x} < t_{x} "
            f"({completion_times[2 * x - 1]} < {completion_times[x - 1]})")
    if dt == 0:
        # x tasks completed in zero time (burst at one timestep): treat as
        # an infinite spike; callers compare rates, so saturate high.
        return Fraction(x, 1) * 10**9
    return Fraction(x, dt)


def window_rates(completion_times: Sequence[int]) -> np.ndarray:
    """Float rates for every window ``x = 1 .. N//2`` (vectorized).

    Intended for plotting/reporting; use :func:`window_rate` (exact) or the
    onset detector when comparing against the optimal rate.
    """
    times = np.asarray(completion_times, dtype=np.float64)
    n = num_windows(len(times))
    if n == 0:
        return np.empty(0)
    xs = np.arange(1, n + 1, dtype=np.float64)
    dt = times[2 * np.arange(1, n + 1) - 1] - times[np.arange(1, n + 1) - 1]
    if np.any(dt < 0):
        bad = int(np.argmax(dt < 0)) + 1
        raise ReproError(
            f"completion times out of order: t_{2 * bad} < t_{bad}")
    with np.errstate(divide="ignore"):
        return np.where(dt > 0, xs / np.maximum(dt, 1e-300), np.inf)


def normalized_window_rates(completion_times: Sequence[int],
                            optimal_rate: Union[Fraction, float]) -> np.ndarray:
    """Window rates divided by the optimal steady-state rate (floats)."""
    optimal = float(optimal_rate)
    if optimal <= 0:
        raise ReproError(f"optimal rate must be > 0, got {optimal_rate!r}")
    return window_rates(completion_times) / optimal


def steady_state_rate(result) -> Fraction:
    """Exact measured steady-state rate of one simulation result.

    When the run was warped (:mod:`repro.sim.warp`), the detected period is
    the steady state *by construction* and ``Δtasks / Δt`` is its exact
    rate — no window heuristics involved.  Otherwise the largest growing
    window (task ``N/2`` to task ``N``) stands in: it excludes the longest
    possible startup prefix the §4.1 methodology allows.  Runs that
    recorded no completion times fall back to the whole-run mean rate,
    which still excludes nothing but stays exact.
    """
    warp = getattr(result, "warp", None)
    if warp is not None and warp.applied:
        return Fraction(warp.period_tasks, warp.period_time)
    times = result.completion_times
    n = num_windows(len(times))
    if n >= 1:
        return window_rate(times, n)
    if result.makespan <= 0:
        raise ReproError("steady_state_rate needs a non-trivial run")
    return Fraction(result.num_tasks, result.makespan)
