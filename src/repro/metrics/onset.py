"""Onset-of-optimal-steady-state detection (§4.1).

The paper's empirical criterion: *"the tree has reached optimal steady state
if its rate goes over the optimal steady-state rate twice after window 300;
the onset occurs when the rate goes over for the second time."*  With
integral completion times and a rational optimal rate the comparison
``x / (t_2x - t_x) > optimal`` is done in exact integer arithmetic, so no
floating-point tie can flip a verdict.

The threshold window (300 for the paper's 10 000-task runs) scales with the
application size; :func:`default_threshold` keeps the paper's 300-per-10 000
proportion for scaled-down runs.

Steady-state warp (:mod:`repro.sim.warp`) replicates the completion times
of every skipped period verbatim, so onset detection on a warped run sees
the same sequence — and returns the same window — as on the exact run.
Runs started with ``record_completion_times=False`` have no completion
times at all; :func:`detect_onset` then (vacuously) returns ``None``, so
keep recording on when onsets matter.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Sequence, Union

from ..errors import ReproError

__all__ = ["detect_onset", "reached_optimal", "default_threshold",
           "PAPER_THRESHOLD_WINDOW", "PAPER_NUM_TASKS"]

#: Threshold window used throughout the paper's evaluation.
PAPER_THRESHOLD_WINDOW = 300
#: Application size used for the paper's main experiments.
PAPER_NUM_TASKS = 10_000


def default_threshold(num_tasks: int) -> int:
    """Scale the paper's window-300 threshold to a different task count."""
    if num_tasks <= 0:
        raise ReproError(f"num_tasks must be > 0, got {num_tasks}")
    return max(1, round(num_tasks * PAPER_THRESHOLD_WINDOW / PAPER_NUM_TASKS))


def detect_onset(completion_times: Sequence[int],
                 optimal_rate: Union[Fraction, int],
                 threshold_window: Optional[int] = None) -> Optional[int]:
    """Window index of the onset of optimal steady state, or ``None``.

    Returns the window ``x`` (tasks completed at the beginning of the
    window) at which the rate exceeds ``optimal_rate`` for the **second**
    time with ``x > threshold_window`` — the paper's heuristic — or ``None``
    when the criterion is never met.
    """
    optimal = Fraction(optimal_rate)
    if optimal <= 0:
        raise ReproError(f"optimal rate must be > 0, got {optimal_rate!r}")
    n = len(completion_times) // 2
    if threshold_window is None:
        threshold_window = default_threshold(len(completion_times))
    num, den = optimal.numerator, optimal.denominator

    crossings = 0
    for x in range(threshold_window + 1, n + 1):
        dt = completion_times[2 * x - 1] - completion_times[x - 1]
        # x / dt > num / den  <=>  x * den > num * dt   (dt > 0; dt == 0 is
        # an instantaneous burst, trivially above any finite rate)
        if dt == 0 or x * den > num * dt:
            crossings += 1
            if crossings == 2:
                return x
    return None


def reached_optimal(completion_times: Sequence[int],
                    optimal_rate: Union[Fraction, int],
                    threshold_window: Optional[int] = None) -> bool:
    """True iff the run satisfies the paper's reached-optimal criterion."""
    return detect_onset(completion_times, optimal_rate, threshold_window) is not None
