"""repro — bandwidth-centric autonomous scheduling on tree overlays.

A complete, from-scratch reproduction of *"Autonomous Protocols for
Bandwidth-Centric Scheduling of Independent-task Applications"*
(Kreaseck, Carter, Casanova, Ferrante — IPDPS 2003), including:

* :mod:`repro.sim` — a discrete-event simulation kernel (SimGrid substitute),
* :mod:`repro.platform` — node/edge-weighted platform trees, the paper's
  random generator, dynamic mutations, overlay construction,
* :mod:`repro.steady_state` — the optimal steady-state theory (Theorem 1 and
  the bottom-up tree solver) in exact rational arithmetic,
* :mod:`repro.protocols` — the autonomous non-interruptible (non-IC) and
  interruptible (IC) communication protocols plus ablation baselines,
* :mod:`repro.metrics` — windowed throughput, steady-state onset detection,
  buffer and used-subtree statistics,
* :mod:`repro.experiments` — harness regenerating every table and figure of
  the paper's evaluation section.

Quickstart::

    from repro import generate_tree, solve_tree, simulate, ProtocolConfig

    tree = generate_tree(seed=7)
    optimal = solve_tree(tree)
    result = simulate(tree, ProtocolConfig.interruptible(buffers=3), num_tasks=2000)
    print(result.makespan, float(optimal.rate))
"""

from ._version import __version__
from .errors import (
    ExperimentError,
    PlatformError,
    ProtocolError,
    ReproError,
    SimulationError,
    SolverError,
)

__all__ = [
    "__version__",
    "ReproError",
    "SimulationError",
    "PlatformError",
    "SolverError",
    "ProtocolError",
    "ExperimentError",
]


def __getattr__(name):
    """Lazy re-exports of the main public API (keeps import cost low)."""
    if name in ("PlatformTree", "TreeNode"):
        from .platform import tree as _tree

        return getattr(_tree, name)
    if name in ("generate_tree", "TreeGeneratorParams"):
        from .platform import generator as _generator

        return getattr(_generator, name)
    if name in ("solve_tree", "solve_fork", "SteadyStateSolution", "ForkSolution"):
        from . import steady_state as _ss

        return getattr(_ss, name)
    if name in ("simulate", "ProtocolConfig", "SimulationResult"):
        from . import protocols as _protocols

        return getattr(_protocols, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
