"""repro — bandwidth-centric autonomous scheduling on tree overlays.

A complete, from-scratch reproduction of *"Autonomous Protocols for
Bandwidth-Centric Scheduling of Independent-task Applications"*
(Kreaseck, Carter, Casanova, Ferrante — IPDPS 2003), including:

* :mod:`repro.sim` — a discrete-event simulation kernel (SimGrid substitute),
* :mod:`repro.platform` — node/edge-weighted platform trees, the paper's
  random generator, dynamic mutations, churn, fault schedules, overlays,
* :mod:`repro.steady_state` — the optimal steady-state theory (Theorem 1 and
  the bottom-up tree solver) in exact rational arithmetic,
* :mod:`repro.protocols` — the autonomous non-interruptible (non-IC) and
  interruptible (IC) communication protocols plus ablation baselines,
* :mod:`repro.metrics` — windowed throughput, steady-state onset detection,
  buffer and used-subtree statistics, fault-recovery reports,
* :mod:`repro.experiments` — harness regenerating every table and figure of
  the paper's evaluation section,
* :mod:`repro.harness` — crash-safe sweep infrastructure: checkpointed
  journals, a supervised worker pool with per-seed retry/backoff, and
  resume of interrupted ensembles (:class:`~repro.harness.HarnessConfig`),
* :mod:`repro.telemetry` — disabled-by-default observability: a metrics
  registry, read-only run probes, JSONL/CSV/Perfetto exporters, and
  ensemble aggregation (:class:`~repro.telemetry.TelemetryConfig`),
* :mod:`repro.service` — service mode: open-loop streaming arrival
  processes, admission control, and O(1)-memory latency SLO folds
  (:class:`~repro.service.PoissonArrivals`,
  :class:`~repro.service.TokenBucket`,
  :class:`~repro.service.ServiceStats`).

Quickstart::

    from repro import generate_tree, solve_tree, simulate, ProtocolConfig

    tree = generate_tree(seed=7)
    optimal = solve_tree(tree)
    result = simulate(tree, 2000, ProtocolConfig.interruptible(buffers=3))
    print(result.makespan, float(optimal.rate))

Concurrent applications share the platform through the same front door::

    from repro import Application

    apps = [Application(1000, name="alpha"), Application(1000, name="beta")]
    result = simulate(tree, apps, config, allocator="selfish")
    print(result.jain_index, result.price_of_anarchy)

Fault injection and recovery metrics are first-class::

    from repro import CrashEvent, FaultSchedule, recovery_report

    faults = FaultSchedule([CrashEvent(at_time=200, node=3)])
    report = recovery_report(simulate(tree, 2000, config, faults=faults))
"""

from importlib import import_module

from ._version import __version__
from .errors import (
    ExperimentError,
    PlatformError,
    ProtocolError,
    ReproError,
    SimulationError,
    SolverError,
)

#: Declarative lazy-export table: public name → defining module.  Names
#: resolve (and the submodule imports) on first attribute access, keeping
#: ``import repro`` cheap; resolved names are cached in module globals.
_LAZY_EXPORTS = {
    # platform model
    "PlatformTree": "repro.platform.tree",
    "TreeNode": "repro.platform.tree",
    "PlatformGraph": "repro.platform.graph",
    "Overlay": "repro.platform.graph",
    "generate_platform": "repro.platform.graph",
    "LinkContention": "repro.platform.contention",
    "max_min_rates": "repro.platform.contention",
    "fair_share_rates": "repro.platform.contention",
    "selfish_rates": "repro.platform.contention",
    "generate_tree": "repro.platform.generator",
    "TreeGeneratorParams": "repro.platform.generator",
    "Mutation": "repro.platform.mutation",
    "MutationSchedule": "repro.platform.mutation",
    "ChurnSchedule": "repro.platform.churn",
    "JoinEvent": "repro.platform.churn",
    "LeaveEvent": "repro.platform.churn",
    # fault injection (PR-1 surface; graph events and chaos in PR-8)
    "FaultSchedule": "repro.platform.faults",
    "CrashEvent": "repro.platform.faults",
    "LinkFailureEvent": "repro.platform.faults",
    "LinkRepairEvent": "repro.platform.faults",
    "EdgeFailureEvent": "repro.platform.faults",
    "EdgeRepairEvent": "repro.platform.faults",
    "SwitchCrashEvent": "repro.platform.faults",
    "DegradeEvent": "repro.platform.faults",
    "chaos_schedule": "repro.platform.faults",
    "GraphFaultDriver": "repro.protocols.graph_engine",
    # steady-state theory
    "solve_tree": "repro.steady_state",
    "solve_fork": "repro.steady_state",
    "SteadyStateSolution": "repro.steady_state",
    "ForkSolution": "repro.steady_state",
    # unified simulation front door (legacy shapes keep working via
    # DeprecationWarning shims inside repro.api)
    "simulate": "repro.api",
    "simulate_graph": "repro.api",
    # multi-application scheduling
    "Application": "repro.apps",
    "Workload": "repro.apps",
    "AppResult": "repro.apps",
    "MultiAppEngine": "repro.apps",
    "jain_index": "repro.apps",
    "price_of_anarchy": "repro.apps",
    "fault_fairness": "repro.apps",
    # protocols
    "ProtocolConfig": "repro.protocols",
    "ProtocolEngine": "repro.protocols",
    "GraphProtocolEngine": "repro.protocols",
    "ProtocolVariant": "repro.protocols",
    "PriorityRule": "repro.protocols",
    "SimulationResult": "repro.protocols",
    "Tracer": "repro.protocols",
    "TraceEvent": "repro.protocols",
    "ascii_gantt": "repro.protocols",
    # steady-state warp
    "WarpSummary": "repro.sim.warp",
    "WarpController": "repro.sim.warp",
    "steady_state_rate": "repro.metrics.windows",
    "node_utilization": "repro.metrics.usage",
    # recovery metrics (PR-1 surface)
    "RecoveryReport": "repro.metrics.faults",
    "recovery_report": "repro.metrics.faults",
    "recovery_latencies": "repro.metrics.faults",
    "post_recovery_rate": "repro.metrics.faults",
    "degraded_windows": "repro.metrics.faults",
    # service mode: open-loop arrivals, admission control, latency SLOs
    "ArrivalProcess": "repro.service",
    "PoissonArrivals": "repro.service",
    "BurstArrivals": "repro.service",
    "DiurnalArrivals": "repro.service",
    "PeriodicArrivals": "repro.service",
    "parse_arrivals": "repro.service",
    "AdmissionPolicy": "repro.service",
    "AlwaysAdmit": "repro.service",
    "QueueDepthBound": "repro.service",
    "TokenBucket": "repro.service",
    "parse_admission": "repro.service",
    "LatencySketch": "repro.service",
    "ServiceStats": "repro.service",
    # telemetry subsystem
    "TelemetryConfig": "repro.telemetry",
    "TelemetrySnapshot": "repro.telemetry",
    "MetricsRegistry": "repro.telemetry",
    "NullRegistry": "repro.telemetry",
    "aggregate_snapshots": "repro.telemetry",
    "chrome_trace": "repro.telemetry",
    "write_chrome_trace": "repro.telemetry",
    "dump_jsonl": "repro.telemetry",
    "load_jsonl": "repro.telemetry",
    # experiment harness
    "ExperimentScale": "repro.experiments.common",
    # crash-safe sweep harness
    "HarnessConfig": "repro.harness",
    "RetryPolicy": "repro.harness",
    "RunCoverage": "repro.harness",
    "SeedFailure": "repro.harness",
    "CheckpointStore": "repro.harness",
}

__all__ = [
    "__version__",
    "ReproError",
    "SimulationError",
    "PlatformError",
    "SolverError",
    "ProtocolError",
    "ExperimentError",
    *sorted(_LAZY_EXPORTS),
]


def __getattr__(name):
    try:
        module_name = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro' has no attribute {name!r}") from None
    value = getattr(import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
