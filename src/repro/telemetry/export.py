"""Telemetry exporters: streaming JSONL, CSV, and Chrome trace-event JSON.

Three formats, three audiences:

* **JSONL** (:func:`dump_jsonl` / :func:`load_jsonl`) — lossless
  machine-readable snapshot interchange, one self-describing record per
  line so sweeps can append snapshots to one file and readers can stream
  them back without loading everything.  Round-trips
  :class:`~repro.telemetry.probes.TelemetrySnapshot` by value.
* **CSV** (:func:`dump_csv`) — the global time series as one wide table
  (``time`` column + one column per series) for spreadsheets / pandas.
* **Chrome trace-event JSON** (:func:`chrome_trace` /
  :func:`write_chrome_trace`) — a timeline loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``: one thread lane per
  node showing compute and send slices (from a
  :class:`~repro.protocols.trace.Tracer`), instant markers for
  preemptions / crashes / mutations, and counter tracks from the
  snapshot's time series.  Virtual timesteps are mapped 1:1 onto trace
  microseconds.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Dict, IO, Iterator, List, Optional, Union

from ..errors import ReproError
from ..protocols import trace as _trace
from .probes import TelemetrySnapshot

__all__ = ["dump_jsonl", "load_jsonl", "iter_jsonl", "dump_csv",
           "chrome_trace", "multi_app_trace", "write_chrome_trace",
           "write_multi_app_trace", "export_auto"]

_JSONL_VERSION = 1

#: Tracer kinds rendered as instant markers on a node's lane.
_INSTANT_KINDS = (_trace.PREEMPT, _trace.MUTATION, _trace.CRASH,
                  _trace.LINK_DOWN, _trace.LINK_UP, _trace.RECLAIM,
                  _trace.REROUTE, _trace.DEGRADE)


def _open_maybe(path_or_file: Union[str, IO], mode: str):
    """Return ``(file, should_close)`` for a path or an open file."""
    if hasattr(path_or_file, "write") or hasattr(path_or_file, "read"):
        return path_or_file, False
    return open(path_or_file, mode), True


# ---------------------------------------------------------------- JSONL
def _json_default(value):
    """``json.dumps`` fallback: Fractions degrade to floats (integral
    ones back to int); anything else is a genuine serialization error."""
    if isinstance(value, Fraction):
        return int(value) if value.denominator == 1 else float(value)
    raise TypeError(
        f"Object of type {type(value).__name__} is not JSON serializable")


def _snapshot_record(snapshot: TelemetrySnapshot) -> Dict:
    return {
        "type": "snapshot",
        "version": _JSONL_VERSION,
        "num_nodes": snapshot.num_nodes,
        "makespan": snapshot.makespan,
        "sample_dt": snapshot.sample_dt,
        "effective_dt": snapshot.effective_dt,
        "samples": snapshot.samples,
        "counters": snapshot.counters,
        "per_node": {k: list(v) for k, v in snapshot.per_node.items()},
        "series": {k: [list(t), list(v)]
                   for k, (t, v) in snapshot.series.items()},
        "node_series": {
            name: {str(node): [list(t), list(v)]
                   for node, (t, v) in per_node.items()}
            for name, per_node in snapshot.node_series.items()
        },
    }


def _record_snapshot(record: Dict) -> TelemetrySnapshot:
    if record.get("type") != "snapshot":
        raise ReproError(f"not a snapshot record: {record.get('type')!r}")
    return TelemetrySnapshot(
        num_nodes=record["num_nodes"],
        makespan=record["makespan"],
        sample_dt=record["sample_dt"],
        effective_dt=record["effective_dt"],
        samples=record["samples"],
        counters=dict(record["counters"]),
        per_node={k: tuple(v) for k, v in record["per_node"].items()},
        series={k: (tuple(t), tuple(v))
                for k, (t, v) in record["series"].items()},
        node_series={
            name: {int(node): (tuple(t), tuple(v))
                   for node, (t, v) in per_node.items()}
            for name, per_node in record["node_series"].items()
        },
    )


def dump_jsonl(snapshots, path_or_file: Union[str, IO]) -> int:
    """Append snapshot records to ``path_or_file``, one JSON line each.

    Accepts a single snapshot or an iterable of them; returns the number
    of records written.  Streaming: each record is serialized and written
    independently, so a sweep can call this once per finished seed.
    """
    if isinstance(snapshots, TelemetrySnapshot):
        snapshots = (snapshots,)
    fh, close = _open_maybe(path_or_file, "a")
    written = 0
    try:
        for snapshot in snapshots:
            # Graph runs can carry Fraction times/values; JSON has no
            # rational type, so they degrade to floats on export.
            fh.write(json.dumps(_snapshot_record(snapshot),
                                separators=(",", ":"),
                                default=_json_default) + "\n")
            written += 1
    finally:
        if close:
            fh.close()
    return written


def iter_jsonl(path_or_file: Union[str, IO]) -> Iterator[TelemetrySnapshot]:
    """Yield snapshots from a JSONL file, streaming line by line."""
    fh, close = _open_maybe(path_or_file, "r")
    try:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            yield _record_snapshot(json.loads(line))
    finally:
        if close:
            fh.close()


def load_jsonl(path_or_file: Union[str, IO]) -> List[TelemetrySnapshot]:
    """Read every snapshot in a JSONL file into a list."""
    return list(iter_jsonl(path_or_file))


# ------------------------------------------------------------------ CSV
def dump_csv(snapshot: TelemetrySnapshot,
             path_or_file: Union[str, IO]) -> int:
    """Write the snapshot's global time series as one wide CSV table.

    All global series share the sampler's cadence, so their time axes are
    identical; one ``time`` column plus one column per series (sorted by
    name).  Returns the number of data rows written.
    """
    names = sorted(snapshot.series)
    fh, close = _open_maybe(path_or_file, "w")
    try:
        fh.write(",".join(["time"] + names) + "\n")
        if not names:
            return 0
        times = snapshot.series[names[0]][0]
        columns = [snapshot.series[name][1] for name in names]
        for name, (t, _) in snapshot.series.items():
            if t != times:
                raise ReproError(
                    f"series {name!r} is not on the shared time axis")
        rows = 0
        for i, time in enumerate(times):
            fh.write(",".join([str(time)] + [repr(col[i]) for col in columns])
                     + "\n")
            rows += 1
        return rows
    finally:
        if close:
            fh.close()


# --------------------------------------------------- Chrome trace events
def _num(value):
    """JSON-safe number: contended graph runs produce exact ``Fraction``
    virtual times, which become floats (integral ones back to int)."""
    if isinstance(value, Fraction):
        return int(value) if value.denominator == 1 else float(value)
    return value


def _lane_events(tracer, pid: int) -> List[Dict]:
    """Per-node compute/send slices and instant markers from a tracer."""
    events: List[Dict] = []
    nodes = sorted({e.node for e in tracer.events})
    for node in nodes:
        for start, end in tracer.compute_intervals(node):
            events.append({"name": "compute", "cat": "cpu", "ph": "X",
                           "ts": _num(start), "dur": _num(end - start),
                           "pid": pid, "tid": node})
        for start, end in tracer.send_intervals(node):
            events.append({"name": "send", "cat": "net", "ph": "X",
                           "ts": _num(start), "dur": _num(end - start),
                           "pid": pid, "tid": node})
    for event in tracer.events:
        if event.kind in _INSTANT_KINDS:
            entry = {"name": event.kind, "cat": "protocol", "ph": "i",
                     "ts": _num(event.time), "pid": pid, "tid": event.node,
                     "s": "t"}
            if event.peer is not None:
                entry["args"] = {"peer": event.peer}
            events.append(entry)
    return events


def _trace_events(snapshot, tracer, pid: int,
                  process_name: str) -> List[Dict]:
    """All trace events of one (snapshot, tracer) pair under one pid."""
    events: List[Dict] = [{
        "name": "process_name", "ph": "M", "pid": pid,
        "args": {"name": process_name},
    }]

    num_nodes = snapshot.num_nodes if snapshot is not None else (
        max((e.node for e in tracer.events), default=-1) + 1)
    for node in range(num_nodes):
        events.append({"name": "thread_name", "ph": "M",
                       "pid": pid, "tid": node,
                       "args": {"name": f"node {node}"}})

    if tracer is not None:
        events.extend(_lane_events(tracer, pid))

    if snapshot is not None:
        for name in sorted(snapshot.series):
            times, values = snapshot.series[name]
            for time, value in zip(times, values):
                events.append({"name": name, "cat": "telemetry", "ph": "C",
                               "ts": _num(time), "pid": pid,
                               "args": {"value": _num(value)}})
        for name in sorted(snapshot.node_series):
            per_node = snapshot.node_series[name]
            for node in sorted(per_node):
                times, values = per_node[node]
                track = f"{name}/node{node}"
                for time, value in zip(times, values):
                    events.append({"name": track, "cat": "telemetry",
                                   "ph": "C", "ts": _num(time), "pid": pid,
                                   "args": {"value": _num(value)}})
    return events


def chrome_trace(snapshot: Optional[TelemetrySnapshot] = None,
                 tracer=None) -> Dict:
    """Build a Chrome trace-event document (Perfetto-loadable).

    Either input may be omitted: a snapshot alone gives counter tracks,
    a tracer alone gives activity lanes; together they give the full
    timeline.  One virtual timestep maps to one trace microsecond.
    """
    if snapshot is None and tracer is None:
        raise ReproError("chrome_trace needs a snapshot and/or a tracer")
    events = _trace_events(snapshot, tracer, 0, "simulation")
    doc: Dict = {"traceEvents": events, "displayTimeUnit": "ms"}
    if snapshot is not None:
        doc["otherData"] = {
            "makespan": _num(snapshot.makespan),
            "num_nodes": snapshot.num_nodes,
            "sample_dt": snapshot.sample_dt,
        }
    return doc


def multi_app_trace(entries) -> Dict:
    """Build one Perfetto document with a process group per application.

    ``entries`` is a sequence of ``(label, snapshot, tracer)`` triples in
    application order (either of snapshot/tracer may be ``None``, not
    both).  Application *i* becomes trace process ``pid=i`` named by its
    label, keeping the familiar per-node thread lanes inside each group —
    in the Perfetto UI every app reads as its own process whose rows are
    the same physical nodes, so cross-app bandwidth hand-offs line up
    vertically.
    """
    entries = list(entries)
    if not entries:
        raise ReproError("multi_app_trace needs at least one application")
    events: List[Dict] = []
    for pid, (label, snapshot, tracer) in enumerate(entries):
        if snapshot is None and tracer is None:
            raise ReproError(
                f"application {label!r} has neither snapshot nor tracer")
        events.extend(_trace_events(snapshot, tracer, pid, str(label)))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path_or_file: Union[str, IO],
                       snapshot: Optional[TelemetrySnapshot] = None,
                       tracer=None) -> int:
    """Serialize :func:`chrome_trace` to a ``.trace.json`` file.

    Returns the number of trace events written.
    """
    doc = chrome_trace(snapshot=snapshot, tracer=tracer)
    return _write_trace_doc(path_or_file, doc)


def write_multi_app_trace(path_or_file: Union[str, IO], entries) -> int:
    """Serialize :func:`multi_app_trace` to a ``.trace.json`` file.

    Returns the number of trace events written.
    """
    return _write_trace_doc(path_or_file, multi_app_trace(entries))


def _write_trace_doc(path_or_file: Union[str, IO], doc: Dict) -> int:
    fh, close = _open_maybe(path_or_file, "w")
    try:
        json.dump(doc, fh, separators=(",", ":"))
        fh.write("\n")
    finally:
        if close:
            fh.close()
    return len(doc["traceEvents"])


def export_auto(path: str, snapshots, tracer=None) -> int:
    """Export snapshots to ``path``, picking the format by extension.

    ``.jsonl`` → streaming JSONL (any number of snapshots); ``.csv`` →
    global-series table (single snapshot); anything else (``.json``,
    ``.trace.json``) → Chrome trace-event JSON of the first snapshot plus
    the optional tracer's lanes.  Returns the number of records / rows /
    trace events written.  This is the CLI's ``--telemetry-out`` backend.
    """
    if isinstance(snapshots, TelemetrySnapshot):
        snapshots = [snapshots]
    else:
        snapshots = list(snapshots)
    if path.endswith(".jsonl"):
        return dump_jsonl(snapshots, path)
    if path.endswith(".csv"):
        if len(snapshots) != 1:
            raise ReproError(
                f"CSV export takes exactly one snapshot, got "
                f"{len(snapshots)}; use .jsonl for ensembles")
        return dump_csv(snapshots[0], path)
    if not snapshots and tracer is None:
        raise ReproError("nothing to export: no snapshots, no tracer")
    return write_chrome_trace(path, snapshot=snapshots[0] if snapshots
                              else None, tracer=tracer)
