"""Telemetry knobs: what to sample, how often, and how much to keep.

Kept in its own dependency-light module so that
:class:`~repro.protocols.config.ProtocolConfig` can embed a
:class:`TelemetryConfig` without creating an import cycle between the
protocol and telemetry packages.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError

__all__ = ["TelemetryConfig"]


@dataclass(frozen=True)
class TelemetryConfig:
    """Configuration of one run's telemetry probes.

    Telemetry is **off by default** everywhere: a run only carries probes
    when a ``TelemetryConfig`` is attached to its
    :class:`~repro.protocols.config.ProtocolConfig` (directly, or via
    ``ExperimentScale.telemetry`` / the ``--telemetry`` CLI flag).

    Two probe layers, independently toggleable:

    * **sampling** (always on when telemetry is on): a periodic virtual-time
      timer reads engine and per-node state every ``sample_dt`` steps —
      queue depths, buffer occupancy, kernel event counts, CPU busy /
      starvation flags.  Read-only and behaviour-neutral: the sampled run's
      :meth:`~repro.protocols.result.SimulationResult.fingerprint` equals
      the unsampled run's.
    * **event tracing** (``trace_events=True``): taps the protocol's trace
      stream to integrate *exact* per-node busy intervals and per-kind
      event counts.  Costs one callback per protocol event, so it is meant
      for single-run inspection (Perfetto export), not ensemble sweeps.
    """

    #: Virtual-time period between state samples.  The default is sized
    #: for always-on ensemble use: each sample walks every node, so the
    #: CI overhead gate (<=10% on the densest benchmark run) bounds how
    #: fine the default can sample.  Single-run inspection wants finer —
    #: :meth:`tracing` defaults to 50.
    sample_dt: int = 200
    #: Per-series sample budget.  When a run outlives the budget the probe
    #: halves the series (every other sample) and doubles the effective
    #: period, so memory stays bounded on arbitrarily long runs while the
    #: series still spans the whole run.
    max_samples: int = 1024
    #: Record per-node time series (buffer occupancy, queue depth,
    #: cumulative busy fraction) in addition to the global ones.  Off by
    #: default: ensembles only need the global series and scalar tallies.
    per_node_series: bool = False
    #: Tap the protocol event stream for exact busy intervals and per-kind
    #: counters (see class docstring).
    trace_events: bool = False

    def __post_init__(self):
        if self.sample_dt < 1:
            raise ReproError(
                f"sample_dt must be >= 1, got {self.sample_dt}")
        if self.max_samples < 2:
            raise ReproError(
                f"max_samples must be >= 2, got {self.max_samples}")

    @classmethod
    def tracing(cls, sample_dt: int = 50, **kwargs) -> "TelemetryConfig":
        """Full-detail single-run preset: per-node series + event tap."""
        kwargs.setdefault("per_node_series", True)
        kwargs.setdefault("trace_events", True)
        return cls(sample_dt=sample_dt, **kwargs)
