"""Ensemble aggregation: fold per-seed telemetry into summary statistics.

A sweep produces one :class:`~repro.telemetry.probes.TelemetrySnapshot`
per seed; :func:`aggregate_snapshots` reduces them to per-metric
``mean / p50 / p95 / min / max`` rows.  The fold is a pure function of
the snapshot multiset — independent of arrival order — so a sweep that
crashed and resumed through the crash-safe harness aggregates to exactly
the same summary as an uninterrupted one (tested).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from ..errors import ReproError
from .probes import TelemetrySnapshot

__all__ = ["percentile", "summarize", "aggregate_snapshots",
           "format_telemetry_summary"]

#: Statistic names, in display order.
_STATS = ("mean", "p50", "p95", "min", "max")


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of ``values``."""
    if not values:
        raise ReproError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ReproError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """``mean/p50/p95/min/max`` of one metric's per-seed values.

    The mean sums in sorted order so the result is bit-identical for any
    arrival order of the same values — resumed sweeps hand snapshots back
    in completion order, not seed order.
    """
    return {
        "mean": float(sum(sorted(values))) / len(values),
        "p50": percentile(values, 50.0),
        "p95": percentile(values, 95.0),
        "min": float(min(values)),
        "max": float(max(values)),
    }


def _scalar_metrics(snapshot: TelemetrySnapshot) -> Dict[str, float]:
    """Flatten one snapshot into named scalars worth ensembling."""
    out: Dict[str, float] = {"makespan": float(snapshot.makespan)}
    for name, value in snapshot.counters.items():
        out[name] = float(value)
    util = snapshot.utilization()
    if util:
        out["utilization_mean"] = sum(util) / len(util)
        out["utilization_min"] = min(util)
    starve = snapshot.per_node.get("starve_sampled_time")
    if starve and snapshot.makespan > 0:
        # Mean fraction of the run each node spent starved for work.
        out["starve_frac_mean"] = (
            sum(starve) / len(starve) / snapshot.makespan)
    buffers = snapshot.per_node.get("max_buffers")
    if buffers:
        out["max_buffers_peak"] = max(buffers)
    occupancy = snapshot.series.get("buffer_occupancy")
    if occupancy and occupancy[1]:
        out["buffer_occupancy_peak"] = max(occupancy[1])
    return out


def aggregate_snapshots(
        snapshots: Sequence[TelemetrySnapshot]
) -> Dict[str, Dict[str, float]]:
    """Fold per-seed snapshots into ``{metric: {stat: value}}``.

    Metrics present in only some snapshots (e.g. event-kind counters from
    a partially traced sweep) are summarized over the seeds that have
    them; the row gains an ``"n"`` entry with that count so partial
    coverage is visible.
    """
    if not snapshots:
        raise ReproError("aggregate_snapshots needs at least one snapshot")
    columns: Dict[str, List[float]] = {}
    for snapshot in snapshots:
        for name, value in _scalar_metrics(snapshot).items():
            columns.setdefault(name, []).append(value)
    out: Dict[str, Dict[str, float]] = {}
    for name in sorted(columns):
        row = summarize(columns[name])
        row["n"] = float(len(columns[name]))
        out[name] = row
    return out


def format_telemetry_summary(
        aggregate: Mapping[str, Mapping[str, float]]) -> str:
    """Render an aggregate as an aligned text table."""
    header = f"{'metric':<24}" + "".join(f"{s:>12}" for s in _STATS) + \
        f"{'n':>6}"
    lines = [header, "-" * len(header)]
    for name in sorted(aggregate):
        row = aggregate[name]
        cells = "".join(f"{row[s]:>12.4g}" for s in _STATS)
        lines.append(f"{name:<24}{cells}{int(row.get('n', 0)):>6}")
    return "\n".join(lines)
