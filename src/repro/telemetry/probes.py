"""Time-series probes: hook a protocol run and fill a metrics registry.

Two probe layers (see :class:`~repro.telemetry.config.TelemetryConfig`):

* the **sampler** — a periodic virtual-time timer on the DES kernel's
  calendar that reads engine/agent state every ``sample_dt`` steps:
  kernel event counts, completed tasks, buffer occupancy, queue depths,
  per-node CPU-busy / starvation flags.  The sampler is read-only, so a
  sampled run makes exactly the same scheduling decisions as an
  unsampled one; the engine subtracts the sampler's own calendar entries
  from ``events_processed``, which makes the run's
  :meth:`~repro.protocols.result.SimulationResult.fingerprint` equal to
  the telemetry-off fingerprint (tested).
* the **event tap** — an object with the
  :meth:`~repro.protocols.trace.Tracer.record` interface that the engine
  fans protocol trace events into when ``trace_events=True``.  It
  integrates *exact* per-node compute/send busy intervals and per-kind
  event counts, at the cost of one callback per protocol event.

Both layers write into one :class:`~repro.telemetry.registry.MetricsRegistry`;
:meth:`TelemetryProbe.finalize` folds everything into an immutable,
picklable :class:`TelemetrySnapshot` that rides on the simulation result
through the crash-safe harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..protocols import trace as _trace
from .config import TelemetryConfig
from .registry import MetricsRegistry

__all__ = ["TelemetryProbe", "TelemetrySnapshot", "SeriesData"]

#: One materialized time series: ``(times, values)``, same length.
SeriesData = Tuple[Tuple[int, ...], Tuple[float, ...]]

#: Global series names the sampler maintains.
_GLOBAL_SERIES = ("completed", "events", "buffer_occupancy", "queue_depth")


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Immutable telemetry record of one finished run.

    Everything is plain ints/floats/tuples/dicts so snapshots pickle
    cheaply through the crash-safe harness's journals and compare by
    value (the JSONL exporter round-trips them exactly).
    """

    #: Number of platform nodes at the end of the run.
    num_nodes: int
    #: Virtual time of the last task completion.
    makespan: int
    #: Configured sampling period.
    sample_dt: int
    #: Effective period after decimation doublings (== ``sample_dt`` for
    #: runs that stayed within the sample budget).
    effective_dt: int
    #: Number of sampler firings.
    samples: int
    #: Global scalar tallies (event-kind counts under ``trace_events``,
    #: plus run totals like ``"completed"`` and ``"preemptions"``).
    counters: Dict[str, int] = field(default_factory=dict)
    #: name → per-node tuple (length :attr:`num_nodes`).
    per_node: Dict[str, Tuple[float, ...]] = field(default_factory=dict)
    #: Global time series: name → ``(times, values)``.
    series: Dict[str, SeriesData] = field(default_factory=dict)
    #: Per-node time series: name → node → ``(times, values)``.
    node_series: Dict[str, Dict[int, SeriesData]] = field(default_factory=dict)

    def utilization(self) -> Tuple[float, ...]:
        """Per-node fraction of the run spent computing.

        Derived from ``per_node["compute_busy_time"]`` over the makespan;
        matches :func:`repro.metrics.usage.node_utilization` on static
        platforms (exactly under ``trace_events``, where busy time is
        integrated from the event stream rather than derived).
        """
        busy = self.per_node.get("compute_busy_time")
        if busy is None or self.makespan <= 0:
            return tuple(0.0 for _ in range(self.num_nodes))
        return tuple(b / self.makespan for b in busy)


class TelemetryProbe:
    """Live probe attached to one :class:`~repro.protocols.engine.ProtocolEngine`.

    Built by the engine when its config carries a
    :class:`~repro.telemetry.config.TelemetryConfig`; not constructed by
    user code.  The engine calls :meth:`start` as the run begins and
    :meth:`finalize` after the event loop drains.
    """

    def __init__(self, engine, config: TelemetryConfig):
        self.engine = engine
        self.config = config
        self.registry = MetricsRegistry()
        #: Calendar entries consumed by the sampler itself; the engine
        #: subtracts this from ``events_processed`` so sampling never
        #: shows up in the result's fingerprint.
        self.sampler_fires = 0
        self._dt = config.sample_dt
        self._decimations_seen = 0

        cap = config.max_samples
        reg = self.registry
        self._lead = reg.series("completed", max_samples=cap)
        self._global = {name: reg.series(name, max_samples=cap)
                        for name in _GLOBAL_SERIES}

        # Event-tap state (exact interval integration).
        self._compute_open: Dict[int, int] = {}
        self._send_open: Dict[int, int] = {}
        self._compute_busy: Dict[int, int] = {}
        self._send_busy: Dict[int, int] = {}
        self._kind_counters: Dict[str, object] = {}

        # Sampled per-node time tallies, indexed by node id (node ids are
        # list positions in ``engine.nodes``, including churn joins).
        # Weighted by the live period, so decimation-era samples count for
        # their longer coverage.  Lists, not dicts: the sampler touches
        # every node every fire, and this loop is the whole overhead story.
        self._busy_time: List[int] = []
        self._starve_time: List[int] = []

        # Contention-solver counter tracks, created on first sample: the
        # graph engine assigns ``engine.contention`` *after* the base
        # constructor builds this probe, so the lookup must be lazy.
        self._contention_series: Optional[tuple] = None
        # Service-mode counter tracks (open-loop runs only), same lazy
        # pattern: the driver is attached after probe construction.
        self._service_series: Optional[tuple] = None

    # -------------------------------------------------------------- tap
    @property
    def tap(self):
        """The trace-stream tap, or ``None`` when event tracing is off."""
        return self if self.config.trace_events else None

    def record(self, time, kind: str, node: int, peer=None) -> None:
        """Tracer-interface entry point: one protocol event."""
        counter = self._kind_counters.get(kind)
        if counter is None:
            counter = self.registry.counter(f"events.{kind}")
            self._kind_counters[kind] = counter
        counter.value += 1
        if kind is _trace.COMPUTE_START or kind == _trace.COMPUTE_START:
            self._compute_open[node] = time
        elif kind == _trace.COMPUTE_DONE:
            start = self._compute_open.pop(node, None)
            if start is not None:
                self._compute_busy[node] = (
                    self._compute_busy.get(node, 0) + time - start)
        elif kind == _trace.SEND_START or kind == _trace.SEND_RESUME:
            self._send_open[node] = time
        elif kind == _trace.SEND_DONE or kind == _trace.PREEMPT:
            start = self._send_open.pop(node, None)
            if start is not None:
                self._send_busy[node] = (
                    self._send_busy.get(node, 0) + time - start)

    # ---------------------------------------------------------- sampling
    def start(self) -> None:
        """Schedule the first sample (called by the engine at t=0)."""
        self.engine.env.call_in(self._dt, self._sample)

    def _sample(self) -> None:
        self.sampler_fires += 1
        engine = self.engine
        env = engine.env
        now = env.now
        dt = self._dt

        held_total = 0
        queue_total = 0
        per_node_on = self.config.per_node_series
        reg = self.registry
        cap = self.config.max_samples
        busy_time = self._busy_time
        starve_time = self._starve_time
        nodes = engine.nodes
        if len(busy_time) < len(nodes):  # churn joins grow the platform
            grow = len(nodes) - len(busy_time)
            busy_time.extend([0] * grow)
            starve_time.extend([0] * grow)
        for i, agent in enumerate(nodes):
            held = agent.tasks_held
            held_total += held
            queue_total += agent.child_requests
            if agent.cpu_busy:
                busy_time[i] += dt
            elif (agent.alive and not agent.departed
                  and (agent.undispensed if agent.is_root else held) == 0):
                # Idle CPU with nothing to run: starved for work (for the
                # root this only happens once the repository is empty).
                starve_time[i] += dt
            if per_node_on:
                reg.series("buffer_occupancy", node=i,
                           max_samples=cap).append(now, held)
                reg.series("queue_depth", node=i,
                           max_samples=cap).append(now, agent.child_requests)

        manager = getattr(engine, "contention", None)
        if manager is not None:
            tracks = self._contention_series
            if tracks is None:
                tracks = self._contention_series = (
                    reg.series("contention_solves", max_samples=cap),
                    reg.series("contention_memo_hits", max_samples=cap))
            tracks[0].append(
                now, manager.settles_full + manager.settles_incremental)
            tracks[1].append(now, manager.memo_hits)

        driver = getattr(engine, "service_driver", None)
        if driver is not None:
            tracks = self._service_series
            if tracks is None:
                tracks = self._service_series = (
                    reg.series("service_in_system", max_samples=cap),
                    reg.series("service_admitted", max_samples=cap),
                    reg.series("service_dropped", max_samples=cap))
            tracks[0].append(now, len(driver.pending))
            tracks[1].append(now, driver.admitted)
            tracks[2].append(now, driver.dropped)

        series = self._global
        series["completed"].append(now, engine.completed)
        # The sampler's own firings are excluded so the series matches
        # what an unsampled run would have processed by ``now``.
        series["events"].append(now, env.processed_count - self.sampler_fires)
        series["buffer_occupancy"].append(now, held_total)
        series["queue_depth"].append(now, queue_total)

        # All series share the sampler's cadence, so when the lead series
        # decimates (sample budget hit) every other series did too; halve
        # the sampling rate from here on.
        if self._lead.decimations != self._decimations_seen:
            self._decimations_seen = self._lead.decimations
            self._dt = dt * 2

        # Open-loop runs grow ``num_tasks`` as arrivals are admitted:
        # keep sampling while the stream has events left even if the
        # current backlog happens to be drained.
        if (engine.completed < engine.num_tasks
                or (driver is not None and not driver.exhausted)):
            env.call_in(self._dt, self._sample)

    # ---------------------------------------------------------- finalize
    def finalize(self) -> TelemetrySnapshot:
        """Fold live probe state into an immutable snapshot."""
        engine = self.engine
        nodes = engine.nodes
        num_nodes = len(nodes)
        makespan = engine.last_completion_time

        counters: Dict[str, int] = {
            name: value for (name, node), value
            in self.registry.counters().items() if node is None
        }
        counters["completed"] = engine.completed
        counters["preemptions"] = sum(a.preemptions for a in nodes)
        counters["transfers"] = sum(a.transfers_started for a in nodes)
        counters["samples"] = self.sampler_fires

        # Contention-solver statistics (graph engines only): every stat
        # lands as a ``contention.*`` counter so kernel regressions —
        # memo hit rate collapsing, the integer path falling back to
        # Fractions — are visible in exported snapshots and traces.
        manager = getattr(engine, "contention", None)
        if manager is not None:
            for name, value in manager.stats().items():
                counters[f"contention.{name}"] = value

        # Service-mode tallies (open-loop runs only): admission and
        # latency-fold scalars as ``service.*`` counters.
        driver = getattr(engine, "service_driver", None)
        if driver is not None:
            counters["service.offered"] = driver.offered
            counters["service.admitted"] = driver.admitted
            counters["service.dropped"] = driver.dropped
            counters["service.completed"] = driver.completed
            counters["service.pending_high_water"] = driver.pending_high_water

        if self.config.trace_events:
            compute_busy = tuple(
                float(self._compute_busy.get(a.id, 0)) for a in nodes)
            send_busy = tuple(
                float(self._send_busy.get(a.id, 0)) for a in nodes)
        else:
            # Sampling-only mode: a completed task occupied the CPU for
            # exactly ``w`` steps, so the integral is derivable without
            # paying for the per-event tap.  (Mid-run ``w`` mutations make
            # this approximate; the tap stays exact.)
            compute_busy = tuple(float(a.computed * a.w) for a in nodes)
            send_busy = ()

        if len(self._busy_time) < num_nodes:  # zero-fire or post-join runs
            grow = num_nodes - len(self._busy_time)
            self._busy_time.extend([0] * grow)
            self._starve_time.extend([0] * grow)
        per_node: Dict[str, Tuple[float, ...]] = {
            "computed": tuple(float(a.computed) for a in nodes),
            "compute_busy_time": compute_busy,
            "preemptions": tuple(float(a.preemptions) for a in nodes),
            "max_buffers": tuple(float(a.max_buffers_seen) for a in nodes),
            "cpu_busy_sampled_time": tuple(
                float(t) for t in self._busy_time[:num_nodes]),
            "starve_sampled_time": tuple(
                float(t) for t in self._starve_time[:num_nodes]),
        }
        if send_busy:
            per_node["send_busy_time"] = send_busy

        series: Dict[str, SeriesData] = {}
        node_series: Dict[str, Dict[int, SeriesData]] = {}
        for (name, node), data in self.registry.series_data().items():
            if node is None:
                series[name] = data
            else:
                node_series.setdefault(name, {})[node] = data

        if self.config.per_node_series and makespan > 0:
            # Final utilization sample at the makespan: the counter track
            # Perfetto shows ends on exactly the value
            # :func:`repro.metrics.usage.node_utilization` reports.
            util: Dict[int, SeriesData] = {}
            for agent in nodes:
                frac = compute_busy[agent.id] / makespan
                util[agent.id] = ((makespan,), (frac,))
            node_series["cpu_util"] = util

        return TelemetrySnapshot(
            num_nodes=num_nodes,
            makespan=makespan,
            sample_dt=self.config.sample_dt,
            effective_dt=self._dt,
            samples=self.sampler_fires,
            counters=counters,
            per_node=per_node,
            series=series,
            node_series=node_series,
        )
