"""Metrics registry: counters, gauges, histograms, and time series.

The registry is the storage layer of the telemetry subsystem: probes
(:mod:`repro.telemetry.probes`) create named instruments here, exporters
(:mod:`repro.telemetry.export`) read them back out.  Instruments are
keyed by ``(name, node)`` so per-node families ("buffer_occupancy of node
3") and global metrics ("completed") share one namespace.

:class:`NullRegistry` is the disabled-mode stand-in: every accessor
returns a shared no-op instrument, so code instrumented against a
registry attribute pays a single attribute lookup (and a no-op call at
worst) when telemetry is off.  Hot paths that cannot afford even that
should branch on :attr:`MetricsRegistry.enabled`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ReproError

__all__ = ["Counter", "Gauge", "Histogram", "TimeSeries",
           "MetricsRegistry", "NullRegistry", "NULL_REGISTRY"]

#: Key of one instrument: ``(name, node)``; ``node`` is ``None`` for
#: global (non-per-node) metrics.
Key = Tuple[str, Optional[int]]


class Counter:
    """Monotonically increasing integer tally."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.value}>"


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.value}>"


class Histogram:
    """Fixed-bucket histogram: counts of observations per bucket.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last bound.
    Buckets are fixed at construction — no rebinning — so recording is a
    single bisect plus an increment.
    """

    __slots__ = ("bounds", "counts", "total")

    def __init__(self, bounds: Tuple[float, ...]):
        if not bounds:
            raise ReproError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ReproError(f"histogram bounds must be sorted: {bounds}")
        self.bounds = tuple(bounds)
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0

    def observe(self, value) -> None:
        # First bound >= value is the bucket; values above every bound
        # land in the trailing overflow bucket.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram n={self.total}>"


class TimeSeries:
    """Bounded ``(time, value)`` series with halving decimation.

    ``append`` assumes non-decreasing times (virtual time only moves
    forward).  When the series exceeds ``max_samples`` it drops every
    other retained sample — oldest first within the kept set — so the
    series always spans the full run at a coarser resolution instead of
    truncating its head or tail.
    """

    __slots__ = ("max_samples", "times", "values", "decimations")

    def __init__(self, max_samples: Optional[int] = None):
        self.max_samples = max_samples
        self.times: List[int] = []
        self.values: List[float] = []
        self.decimations = 0

    def append(self, time, value) -> None:
        self.times.append(time)
        self.values.append(value)
        if self.max_samples is not None and len(self.times) > self.max_samples:
            self.decimate()

    def decimate(self) -> None:
        """Keep every other sample (the newest is always retained)."""
        start = 1 - len(self.times) % 2
        self.times = self.times[start::2]
        self.values = self.values[start::2]
        self.decimations += 1

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[int, float]]:
        return iter(zip(self.times, self.values))

    def as_tuples(self) -> Tuple[Tuple[int, ...], Tuple[float, ...]]:
        """Immutable ``(times, values)`` pair for snapshots."""
        return tuple(self.times), tuple(self.values)


class MetricsRegistry:
    """Namespace of live instruments, keyed by ``(name, node)``.

    Accessors are get-or-create: probes call ``registry.counter("x")``
    freely without a registration step.  Asking for an existing name with
    a different instrument type raises — one name, one meaning.
    """

    enabled = True

    def __init__(self):
        self._instruments: Dict[Key, object] = {}

    # ------------------------------------------------------------- access
    def _get_or_create(self, name: str, node: Optional[int], factory, kind):
        key = (name, node)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        elif not isinstance(instrument, kind):
            raise ReproError(
                f"metric {name!r} (node={node}) already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}")
        return instrument

    def counter(self, name: str, node: Optional[int] = None) -> Counter:
        return self._get_or_create(name, node, Counter, Counter)

    def gauge(self, name: str, node: Optional[int] = None) -> Gauge:
        return self._get_or_create(name, node, Gauge, Gauge)

    def histogram(self, name: str, bounds: Tuple[float, ...],
                  node: Optional[int] = None) -> Histogram:
        return self._get_or_create(name, node,
                                   lambda: Histogram(bounds), Histogram)

    def series(self, name: str, node: Optional[int] = None,
               max_samples: Optional[int] = None) -> TimeSeries:
        return self._get_or_create(name, node,
                                   lambda: TimeSeries(max_samples), TimeSeries)

    # ------------------------------------------------------------ queries
    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, key) -> bool:
        if isinstance(key, str):
            key = (key, None)
        return key in self._instruments

    def items(self) -> Iterator[Tuple[Key, object]]:
        """Instruments in deterministic (sorted-key) order."""
        def order(entry):
            (name, node), _ = entry
            return (name, -1 if node is None else node)

        return iter(sorted(self._instruments.items(), key=order))

    def counters(self) -> Dict[Key, int]:
        """All counter values, keyed by ``(name, node)``."""
        return {key: inst.value for key, inst in self.items()
                if isinstance(inst, Counter)}

    def series_data(self) -> Dict[Key, Tuple[Tuple[int, ...],
                                             Tuple[float, ...]]]:
        """All series as immutable ``(times, values)`` pairs."""
        return {key: inst.as_tuples() for key, inst in self.items()
                if isinstance(inst, TimeSeries)}


class _NullInstrument:
    """Shared do-nothing instrument handed out by :class:`NullRegistry`."""

    __slots__ = ()
    value = 0
    total = 0

    def inc(self, amount: int = 1) -> None:
        return None

    def set(self, value) -> None:
        return None

    def observe(self, value) -> None:
        return None

    def append(self, time, value) -> None:
        return None

    def __len__(self) -> int:
        return 0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Disabled-telemetry registry: every accessor returns a shared no-op
    instrument and records nothing.  ``enabled`` is ``False`` so hot paths
    can skip even the no-op call with one attribute test."""

    enabled = False

    def counter(self, name: str, node: Optional[int] = None):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, node: Optional[int] = None):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds: Tuple[float, ...],
                  node: Optional[int] = None):
        return _NULL_INSTRUMENT

    def series(self, name: str, node: Optional[int] = None,
               max_samples: Optional[int] = None):
        return _NULL_INSTRUMENT

    def __len__(self) -> int:
        return 0

    def __contains__(self, key) -> bool:
        return False

    def items(self):
        return iter(())

    def counters(self):
        return {}

    def series_data(self):
        return {}


#: Shared singleton used wherever "telemetry off" needs a registry object.
NULL_REGISTRY = NullRegistry()
