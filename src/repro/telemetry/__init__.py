"""Telemetry subsystem: metrics registry, run probes, exporters, ensembles.

Disabled by default everywhere — a run only carries probes when a
:class:`~repro.telemetry.config.TelemetryConfig` is attached to its
:class:`~repro.protocols.config.ProtocolConfig`.  See
``docs/architecture.md`` ("Observability") for the data-flow and
overhead model, and ``EXPERIMENTS.md`` for the Perfetto walkthrough.
"""

from .aggregate import (aggregate_snapshots, format_telemetry_summary,
                        percentile, summarize)
from .config import TelemetryConfig
from .export import (chrome_trace, dump_csv, dump_jsonl, export_auto,
                     iter_jsonl, load_jsonl, multi_app_trace,
                     write_chrome_trace, write_multi_app_trace)
from .probes import TelemetryProbe, TelemetrySnapshot
from .registry import (NULL_REGISTRY, Counter, Gauge, Histogram,
                       MetricsRegistry, NullRegistry, TimeSeries)

__all__ = [
    "TelemetryConfig",
    "TelemetryProbe", "TelemetrySnapshot",
    "Counter", "Gauge", "Histogram", "TimeSeries",
    "MetricsRegistry", "NullRegistry", "NULL_REGISTRY",
    "dump_jsonl", "iter_jsonl", "load_jsonl", "dump_csv",
    "chrome_trace", "write_chrome_trace", "multi_app_trace",
    "write_multi_app_trace", "export_auto",
    "aggregate_snapshots", "summarize", "percentile",
    "format_telemetry_summary",
]
