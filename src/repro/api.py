"""The public simulation front door: one :func:`simulate` for everything.

The repo's entry points had forked — ``repro.protocols.simulate`` (tree
engine), ``simulate_graph`` (graph engine), ``analyze.simulate_tree``
(CLI report) — and multi-application scheduling would have added a
fourth.  This module is the redesign: **one** public
``repro.simulate(platform, workload, config)`` that dispatches on

* the platform type — :class:`~repro.platform.tree.PlatformTree` runs
  the original tree engine, :class:`~repro.platform.graph.PlatformGraph`
  the overlay + contention engine;
* the workload shape — a plain int (the legacy ``num_tasks``) keeps the
  fast single-app path, while a :class:`~repro.apps.Workload`, an
  :class:`~repro.apps.Application`, or a list of them runs the
  multi-application engine (bit-identical for one default app).

The legacy argument order ``simulate(tree, config, num_tasks)`` and the
legacy :func:`simulate_graph` entry point keep working behind
:class:`DeprecationWarning` shims.
"""

from __future__ import annotations

import warnings
from typing import Optional, Union

from .errors import ProtocolError
from .platform.graph import Overlay, PlatformGraph
from .platform.tree import PlatformTree
from .protocols import graph_engine as _graph_engine
from .protocols.config import ProtocolConfig
from .protocols.engine import ProtocolEngine
from .protocols.result import SimulationResult

__all__ = ["simulate", "simulate_graph"]


def simulate(platform: Union[PlatformTree, PlatformGraph],
             workload=None, config: Optional[ProtocolConfig] = None, *,
             mutations=None, churn=None, faults=None,
             overlay: Optional[Overlay] = None,
             allocator: Optional[str] = None,
             tracer=None,
             record_buffer_timeline: bool = False,
             record_completion_times: bool = True,
             check_invariants: bool = False) -> SimulationResult:
    """Run one protocol simulation on any platform with any workload.

    Parameters
    ----------
    platform:
        A :class:`PlatformTree` (the paper's model) or a
        :class:`PlatformGraph` (overlay + shared-link contention).
    workload:
        A plain int (that many unit tasks, the legacy shape), an
        :class:`~repro.apps.Application`, a list of applications, or a
        :class:`~repro.apps.Workload`.
    config:
        The protocol configuration shared by every application.
    mutations / churn:
        Dynamic platform schedules — tree-engine features, rejected on
        graph platforms and multi-application workloads.
    faults:
        A :class:`~repro.platform.faults.FaultSchedule`.  Trees take the
        node-addressed events; graph platforms additionally take the
        edge-addressed ones (:class:`~repro.platform.faults.
        EdgeFailureEvent`, ``EdgeRepairEvent``, ``SwitchCrashEvent``,
        ``DegradeEvent``), consumed by a routed
        :class:`~repro.protocols.graph_engine.GraphFaultDriver` — on
        multi-application workloads one shared driver hits every app.
    check_invariants:
        Run the task-conservation checker after every fault delivery and
        loss reclamation (the chaos-harness invariant; off by default —
        it walks every agent).
    overlay:
        Optional explicit overlay for graph platforms (default: the
        shape-appropriate one via
        :func:`~repro.protocols.topologies.topology_overlay`).
    allocator:
        Per-app bandwidth split for multi-application runs (``selfish``,
        ``maxmin`` or ``fairshare``; default: the platform's contention
        mode).  Rejected on single-app paths, where the platform's own
        contention mode already decides.
    tracer:
        Optional :class:`~repro.protocols.trace.Tracer` attached before
        the run (per-node activity lanes for Perfetto export).  On a
        multi-application workload, pass a sequence of tracers — one per
        application, giving each app its own lane set — or a single
        tracer shared by every application.
    """
    if isinstance(workload, ProtocolConfig):
        # Legacy order: simulate(tree, config, num_tasks).
        warnings.warn(
            "simulate(platform, config, num_tasks) is deprecated; call "
            "simulate(platform, workload, config) — e.g. "
            "simulate(tree, 2000, config)",
            DeprecationWarning, stacklevel=2)
        workload, config = config, workload
    if config is None:
        raise ProtocolError("simulate() needs a ProtocolConfig")

    from .apps import MultiAppEngine, Workload
    workload = Workload.of(workload if workload is not None else 0)

    if workload.is_multi:
        if mutations or churn:
            raise ProtocolError(
                "dynamic platform schedules (mutations/churn) are "
                "single-application tree-engine features")
        engine = MultiAppEngine(
            platform, workload, config, allocator=allocator,
            overlay=overlay,
            record_buffer_timeline=record_buffer_timeline,
            record_completion_times=record_completion_times,
            faults=faults, check_invariants=check_invariants)
        if tracer is not None:
            if isinstance(tracer, (list, tuple)):
                if len(tracer) != len(engine.lanes):
                    raise ProtocolError(
                        f"got {len(tracer)} tracers for "
                        f"{len(engine.lanes)} applications")
                for lane, lane_tracer in zip(engine.lanes, tracer):
                    lane.tracer = lane_tracer
            else:
                for lane in engine.lanes:
                    lane.tracer = tracer
        return engine.run()

    if allocator is not None:
        raise ProtocolError(
            "allocator= selects the per-app bandwidth split of a "
            "multi-application run; single-app graph runs use the "
            "platform's own contention mode")
    if isinstance(platform, PlatformGraph):
        if mutations or churn:
            raise ProtocolError(
                "dynamic platform schedules (mutations/churn) are "
                "tree-engine features; graph platforms do not support them")
        if overlay is None:
            from .protocols.topologies import topology_overlay
            overlay = topology_overlay(platform)
        engine = _graph_engine.GraphProtocolEngine(
            platform, config, workload.total_tasks, overlay=overlay,
            record_buffer_timeline=record_buffer_timeline,
            record_completion_times=record_completion_times,
            faults=faults, check_invariants=check_invariants,
            arrivals=workload.arrivals, admission=workload.admission)
    else:
        if overlay is not None:
            raise ProtocolError("overlay= only applies to graph platforms")
        engine = ProtocolEngine(
            platform, config, workload.total_tasks,
            mutations=mutations, churn=churn, faults=faults,
            record_buffer_timeline=record_buffer_timeline,
            record_completion_times=record_completion_times,
            check_invariants=check_invariants,
            arrivals=workload.arrivals, admission=workload.admission)
    if tracer is not None:
        if isinstance(tracer, (list, tuple)):
            # A 1-list is accepted so callers can treat single- and
            # multi-app runs uniformly (one tracer per application).
            if len(tracer) != 1:
                raise ProtocolError(
                    f"got {len(tracer)} tracers for 1 application")
            tracer = tracer[0]
        engine.tracer = tracer
    return engine.run()


def simulate_graph(platform, config: ProtocolConfig, num_tasks: int, *,
                   overlay: Optional[Overlay] = None,
                   record_buffer_timeline: bool = False,
                   record_completion_times: bool = True,
                   faults=None,
                   check_invariants: bool = False) -> SimulationResult:
    """Deprecated shim — call :func:`repro.simulate` instead."""
    warnings.warn(
        "repro.simulate_graph() is deprecated; repro.simulate() dispatches "
        "on the platform type itself",
        DeprecationWarning, stacklevel=2)
    return _graph_engine.simulate_graph(
        platform, config, num_tasks, overlay=overlay,
        record_buffer_timeline=record_buffer_timeline,
        record_completion_times=record_completion_times,
        faults=faults, check_invariants=check_invariants)
