"""Producer/consumer stores for the discrete-event kernel.

:class:`Store` is a bounded buffer of arbitrary items with FIFO put/get
queues.  :class:`FilterStore` lets consumers wait for items matching a
predicate.  :class:`PriorityStore` hands out the smallest item first (items
must be orderable; :class:`PriorityItem` pairs a priority with a payload).

The protocol agents' task buffers are conceptually stores of task tokens;
the engine inlines the counting for speed, and these classes back the
examples and the high-level API.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, List, Optional

from ..errors import SimulationError
from .events import Event

__all__ = ["Store", "FilterStore", "PriorityStore", "PriorityItem", "StorePut", "StoreGet"]


class StorePut(Event):
    """Event firing once the item has been accepted by the store."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._dispatch()


class StoreGet(Event):
    """Event firing with the retrieved item as its value."""

    __slots__ = ("filter",)

    def __init__(self, store: "Store", filter: Optional[Callable[[Any], bool]] = None):
        super().__init__(store.env)
        self.filter = filter
        store._get_queue.append(self)
        store._dispatch()


class Store:
    """Bounded FIFO buffer of arbitrary Python objects."""

    def __init__(self, env, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity!r}")
        self.env = env
        self._capacity = capacity
        self.items: List[Any] = []
        self._put_queue: List[StorePut] = []
        self._get_queue: List[StoreGet] = []

    @property
    def capacity(self) -> float:
        """Maximum number of items the store holds."""
        return self._capacity

    def put(self, item: Any) -> StorePut:
        """Offer ``item``; the returned event fires when accepted."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Request an item; the returned event fires with the item."""
        return StoreGet(self)

    # ------------------------------------------------------------ internals
    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self._capacity:
            self._add_item(event.item)
            event.succeed(None)
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self._take_item(event))
            return True
        return False

    def _add_item(self, item: Any) -> None:
        self.items.append(item)

    def _take_item(self, event: StoreGet) -> Any:
        return self.items.pop(0)

    def _dispatch(self) -> None:
        """Match queued puts and gets until no further progress is possible."""
        progress = True
        while progress:
            progress = False
            idx = 0
            while idx < len(self._put_queue):
                if self._do_put(self._put_queue[idx]):
                    del self._put_queue[idx]
                    progress = True
                else:
                    idx += 1
            idx = 0
            while idx < len(self._get_queue):
                if self._do_get(self._get_queue[idx]):
                    del self._get_queue[idx]
                    progress = True
                else:
                    idx += 1


class FilterStore(Store):
    """Store whose consumers may request only items satisfying a predicate."""

    def get(self, filter: Callable[[Any], bool] = lambda item: True) -> StoreGet:  # type: ignore[override]
        """Request the first item for which ``filter(item)`` is true."""
        return StoreGet(self, filter)

    def _do_get(self, event: StoreGet) -> bool:
        assert event.filter is not None
        for i, item in enumerate(self.items):
            if event.filter(item):
                del self.items[i]
                event.succeed(item)
                return True
        return False


class PriorityItem:
    """Orderable wrapper pairing a ``priority`` with an arbitrary ``item``."""

    __slots__ = ("priority", "item")

    def __init__(self, priority: Any, item: Any):
        self.priority = priority
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.priority < other.priority

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PriorityItem):
            return NotImplemented
        return self.priority == other.priority and self.item == other.item

    def __repr__(self) -> str:  # pragma: no cover
        return f"PriorityItem({self.priority!r}, {self.item!r})"


class PriorityStore(Store):
    """Store that always hands out the smallest item first."""

    def _add_item(self, item: Any) -> None:
        heappush(self.items, item)

    def _take_item(self, event: StoreGet) -> Any:
        return heappop(self.items)
