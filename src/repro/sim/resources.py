"""Shared resources with optional priorities and preemption.

:class:`Resource` models a server pool with fixed capacity and FIFO queueing.
:class:`PriorityResource` orders waiting requests by ``(priority, time, seq)``
(lower is more important).  :class:`PreemptiveResource` additionally evicts a
lower-priority *user* when a higher-priority request arrives and the resource
is full: the victim's process receives an :class:`~repro.sim.process.Interrupt`
whose cause is a :class:`Preempted` record.

The preemptive resource is the high-level counterpart of the paper's
*interruptible communication*: the parent's uplink is a capacity-1 preemptive
server and child requests carry their bandwidth-centric priority.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, List, Optional

from ..errors import SimulationError
from .events import Event

__all__ = [
    "Resource",
    "PriorityResource",
    "PreemptiveResource",
    "Preempted",
    "Request",
    "PriorityRequest",
    "Release",
]


class Preempted:
    """Cause object delivered to a process evicted from a preemptive resource."""

    __slots__ = ("by", "usage_since", "resource")

    def __init__(self, by: "PriorityRequest", usage_since, resource: "Resource"):
        #: The request that caused the preemption.
        self.by = by
        #: Virtual time at which the victim acquired the resource.
        self.usage_since = usage_since
        #: The resource the victim was evicted from.
        self.resource = resource

    def __repr__(self) -> str:  # pragma: no cover
        return f"Preempted(by={self.by!r}, usage_since={self.usage_since!r})"


class Request(Event):
    """Request event for :class:`Resource`; usable as a context manager."""

    __slots__ = ("resource", "usage_since", "proc")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        self.usage_since = None
        self.proc = resource.env.active_process
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the slot if acquired, or withdraw from the wait queue."""
        self.resource.release(self)


class PriorityRequest(Request):
    """Request with a priority for :class:`PriorityResource` subclasses."""

    __slots__ = ("priority", "preempt", "time", "key")

    def __init__(self, resource: "PriorityResource", priority: int = 0,
                 preempt: bool = True):
        self.priority = priority
        self.preempt = preempt
        self.time = resource.env.now
        # Earlier-submitted requests win ties; preempt flag breaks exact ties.
        self.key = (priority, self.time, not preempt)
        super().__init__(resource)


class Release(Event):
    """Immediate event confirming a :meth:`Resource.release`."""

    __slots__ = ("resource", "request")

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        self.resource = resource
        self.request = request
        self.succeed(None)


class Resource:
    """A server pool with ``capacity`` slots and FIFO waiters.

    Usage from a process::

        with resource.request() as req:
            yield req
            yield env.timeout(5)
    """

    def __init__(self, env, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity!r}")
        self.env = env
        self._capacity = capacity
        self.users: List[Request] = []
        self.queue: List[Request] = []

    # ---------------------------------------------------------------- state
    @property
    def capacity(self) -> int:
        """Total number of slots."""
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    # ----------------------------------------------------------------- API
    def request(self) -> Request:
        """Submit a request; the returned event fires upon acquisition."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Release ``request``'s slot (or withdraw it from the queue)."""
        if request in self.users:
            self.users.remove(request)
            self._wake_waiters()
        else:
            try:
                self.queue.remove(request)
            except ValueError:
                pass  # releasing twice or a never-granted request is benign
        return Release(self, request)

    # ------------------------------------------------------------ internals
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self._grant(request)
        else:
            self.queue.append(request)

    def _grant(self, request: Request) -> None:
        request.usage_since = self.env.now
        self.users.append(request)
        request.succeed(None)

    def _wake_waiters(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            self._grant(self.queue.pop(0))


class PriorityResource(Resource):
    """Resource whose waiters are served in ``(priority, time)`` order."""

    def request(self, priority: int = 0, preempt: bool = True) -> PriorityRequest:  # type: ignore[override]
        """Submit a prioritized request (lower ``priority`` value wins)."""
        return PriorityRequest(self, priority, preempt)

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self._grant(request)
        else:
            heappush(self.queue, _QueueEntry(request))  # type: ignore[arg-type]

    def release(self, request: Request) -> Release:
        if request in self.users:
            self.users.remove(request)
            self._wake_waiters()
        else:
            for i, entry in enumerate(self.queue):
                if entry.request is request:  # type: ignore[union-attr]
                    del self.queue[i]
                    break
        return Release(self, request)

    def _wake_waiters(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            entry = heappop(self.queue)  # type: ignore[arg-type]
            self._grant(entry.request)


class _QueueEntry:
    """Heap wrapper keeping request ordering stable."""

    __slots__ = ("key", "request")

    _counter = 0

    def __init__(self, request: PriorityRequest):
        _QueueEntry._counter += 1
        self.key = (*request.key, _QueueEntry._counter)
        self.request = request

    def __lt__(self, other: "_QueueEntry") -> bool:
        return self.key < other.key


class PreemptiveResource(PriorityResource):
    """Priority resource that evicts lower-priority users when full.

    A request with ``preempt=True`` arriving at a full resource compares its
    priority against the worst current user; if strictly more important, the
    victim is removed and its owning process interrupted with a
    :class:`Preempted` cause.
    """

    def _do_request(self, request: Request) -> None:
        assert isinstance(request, PriorityRequest)
        if len(self.users) >= self._capacity and request.preempt:
            victim = max(
                self.users,
                key=lambda user: user.key,  # type: ignore[attr-defined]
            )
            if victim.key > request.key:  # type: ignore[attr-defined]
                self.users.remove(victim)
                if victim.proc is None:
                    raise SimulationError(
                        "preempted a request not owned by a process"
                    )
                victim.proc.interrupt(
                    Preempted(by=request, usage_since=victim.usage_since,
                              resource=self)
                )
        super()._do_request(request)
