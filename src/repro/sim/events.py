"""Event primitives for the discrete-event kernel.

An :class:`Event` moves through three states:

``pending`` → ``triggered`` (a value or exception is set and the event sits
in the calendar) → ``processed`` (its callbacks have run).

Composite conditions (:class:`AllOf` / :class:`AnyOf`) fire according to the
state of their child events.  Failed events must either have a callback
attached (a waiting process counts) or be explicitly ``defused``; otherwise
the failure surfaces from :meth:`Environment.run`, so errors are never
silently dropped.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Dict, List, Optional

from ..errors import SimulationError

__all__ = ["Event", "Timeout", "Condition", "AllOf", "AnyOf", "ConditionValue", "PENDING"]

#: Default calendar priority; must match :data:`repro.sim.core.NORMAL`
#: (duplicated here because :mod:`repro.sim.core` imports this module).
_NORMAL = 1


class _Entry:
    """A calendar slot for a *non-integer* time, ordered by
    ``(time, priority, sequence)``.

    Lives here (not in :mod:`repro.sim.core`) because the zero-delay
    trigger path below pushes entries too and core imports this module.

    The calendar is a mixed heap: integer-time slots are plain
    ``(time, prio, seq, item)`` tuples whose comparisons run entirely in
    C, and only non-integer times (Fraction times on contended graph
    runs, float times in user code) get one of these.  Tuple entries pay
    ``Fraction.__eq__`` *and* ``Fraction.__lt__`` — each a
    generic-dispatch call — per sift step once fractional times appear,
    which is the kernel's single hottest operation on contended runs.
    The entry instead caches the time's exact integer ratio at
    construction and compares by integer cross-multiplication, with a
    float pre-filter in front: float division of two ints is correctly
    rounded, and correct rounding is monotone, so ``approx(a) <
    approx(b)`` already proves ``a < b`` — only *equal* approximations
    fall through to the exact cross-multiply.

    Cross-type comparisons ride Python's reflected-operator fallback:
    ``tuple.__lt__`` returns ``NotImplemented`` for a non-tuple operand,
    so ``tuple < entry`` lands in :meth:`__gt__` below.  Every order is
    mathematically identical to the pure-tuple order for int, float and
    Fraction times alike (``as_integer_ratio`` is exact for all three),
    which is what keeps calendars — and fingerprints — bit-identical.
    """

    __slots__ = ("approx", "num", "den", "prio", "seq", "time", "item")

    def __init__(self, time, prio, seq, item):
        self.time = time
        self.prio = prio
        self.seq = seq
        self.item = item
        try:
            num, den = time.as_integer_ratio()
        except (OverflowError, ValueError):
            # Infinite (or NaN) float time: den == 0 makes the exact
            # comparison below rank it after every finite time.
            num, den = (1 if time > 0 else -1), 0
        self.num = num
        self.den = den
        try:
            self.approx = num / den
        except (OverflowError, ZeroDivisionError):
            self.approx = float("inf") if num > 0 else float("-inf")

    def __lt__(self, other) -> bool:
        if other.__class__ is tuple:  # int-time slot
            lhs = self.num
            rhs = other[0] * self.den
            if lhs != rhs:
                return lhs < rhs
            if self.prio != other[1]:
                return self.prio < other[1]
            return self.seq < other[2]
        a = self.approx
        b = other.approx
        if a < b:
            return True
        if b < a:
            return False
        lhs = self.num * other.den
        rhs = other.num * self.den
        if lhs != rhs:
            return lhs < rhs
        if self.prio != other.prio:
            return self.prio < other.prio
        return self.seq < other.seq

    def __gt__(self, other) -> bool:
        # Reflected form of ``tuple < entry`` (and ``sorted`` symmetry).
        if other.__class__ is tuple:
            lhs = self.num
            rhs = other[0] * self.den
            if lhs != rhs:
                return lhs > rhs
            if self.prio != other[1]:
                return self.prio > other[1]
            return self.seq > other[2]
        return other.__lt__(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<_Entry t={self.time!r} prio={self.prio} "
                f"seq={self.seq} {self.item!r}>")


class _Pending:
    """Sentinel for 'no value yet'."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<PENDING>"


PENDING = _Pending()


class Event:
    """A one-shot occurrence on the simulation timeline.

    Events carry either a *value* (on success) or an *exception* (on
    failure).  Processes wait on events by ``yield``-ing them; plain code can
    attach callbacks to :attr:`callbacks`.
    """

    __slots__ = ("env", "callbacks", "_value", "_failed", "defused")

    def __init__(self, env):
        self.env = env
        #: Callbacks, each invoked as ``cb(event)`` when the event is processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._failed = False
        #: Set to ``True`` to acknowledge a failure and suppress propagation.
        self.defused = False

    # ------------------------------------------------------------- state
    @property
    def triggered(self) -> bool:
        """``True`` once a value/exception has been set."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once callbacks have run."""
        return self.callbacks is None

    @property
    def pending(self) -> bool:
        """``True`` before the event is triggered."""
        return self._value is PENDING

    @property
    def failed(self) -> bool:
        """``True`` if the event was triggered via :meth:`fail`."""
        return self._failed

    @property
    def value(self) -> Any:
        """The event's value (or exception instance for failed events)."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def _ok_value(self) -> Any:
        if self._failed:
            raise self._value
        return self._value if self._value is not PENDING else None

    # ---------------------------------------------------------- triggering
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        # Inlined zero-delay Environment.schedule (hot path: every event
        # trigger goes through here).
        env = self.env
        seq = env._seq + 1
        env._seq = seq
        now = env._now
        if now.__class__ is int:
            heappush(env._heap, (now, _NORMAL, seq, self))
        else:
            heappush(env._heap, _Entry(now, _NORMAL, seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._value = exception
        self._failed = True
        env = self.env
        seq = env._seq + 1
        env._seq = seq
        now = env._now
        if now.__class__ is int:
            heappush(env._heap, (now, _NORMAL, seq, self))
        else:
            heappush(env._heap, _Entry(now, _NORMAL, seq, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of another event onto this one (callback shape)."""
        if event._failed:
            self.fail(event._value)
        else:
            self.succeed(event._value)

    # ---------------------------------------------------------- processing
    def _process(self) -> None:
        callbacks = self.callbacks
        if callbacks is None:
            raise SimulationError(f"{self!r} processed twice")
        self.callbacks = None
        for cb in callbacks:
            cb(self)
        if self._failed and not self.defused:
            # A failure nobody acknowledged: surface it from the event loop.
            raise self._value

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback``; raises if the event was already processed."""
        if self.callbacks is None:
            raise SimulationError("cannot attach a callback to a processed event")
        self.callbacks.append(callback)

    # ------------------------------------------------------------ operators
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{self.__class__.__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env, delay, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        seq = env._seq + 1
        env._seq = seq
        time = env._now + delay
        if time.__class__ is int:
            heappush(env._heap, (time, _NORMAL, seq, self))
        else:
            heappush(env._heap, _Entry(time, _NORMAL, seq, self))


class ConditionValue:
    """Ordered mapping of child events to their values for conditions.

    Behaves like a read-only dict keyed by the original event objects, plus
    :meth:`todict` for a plain copy.
    """

    def __init__(self, events: List[Event]):
        self.events = events

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(key)
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def keys(self):
        return iter(self.events)

    def values(self):
        return (e._value for e in self.events)

    def items(self):
        return ((e, e._value) for e in self.events)

    def todict(self) -> Dict[Event, Any]:
        """Plain ``dict`` snapshot of event → value."""
        return {e: e._value for e in self.events}

    def __repr__(self) -> str:  # pragma: no cover
        return f"ConditionValue({self.todict()!r})"


class Condition(Event):
    """Base class for composite events over a fixed set of child events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env, events: List[Event]):
        super().__init__(env)
        self._events = events
        self._count = 0
        for event in events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        # Check already-triggered children immediately for determinism.
        for event in events:
            if event.callbacks is None:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)
        if not events and self._value is PENDING:
            self.succeed(ConditionValue([]))

    def _satisfied(self, fired_count: int, total: int) -> bool:
        raise NotImplementedError

    def _on_child(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if event._failed:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied(self._count, len(self._events)):
            # Only children whose callbacks have run are included: a Timeout
            # is "triggered" from creation, but its occurrence is its
            # processing time.
            fired = [e for e in self._events if e.callbacks is None and not e.failed]
            self.succeed(ConditionValue(fired))


class AllOf(Condition):
    """Fires when every child event has fired (fails fast on any failure)."""

    __slots__ = ()

    def _satisfied(self, fired_count: int, total: int) -> bool:
        return fired_count == total


class AnyOf(Condition):
    """Fires when at least one child event has fired."""

    __slots__ = ()

    def _satisfied(self, fired_count: int, total: int) -> bool:
        return fired_count >= 1
