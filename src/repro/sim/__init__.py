"""Discrete-event simulation kernel (the paper's SimGrid substitute).

Public surface::

    from repro.sim import Environment, Interrupt, Process
    from repro.sim import Resource, PriorityResource, PreemptiveResource
    from repro.sim import Store, FilterStore, PriorityStore

Quick example::

    env = Environment()

    def worker(env, results):
        yield env.timeout(3)
        results.append(env.now)

    results = []
    env.process(worker(env, results))
    env.run()
    assert results == [3]
"""

from .core import Environment, Infinity, Timer
from .events import AllOf, AnyOf, Condition, ConditionValue, Event, Timeout
from .process import Interrupt, Process
from .resources import (
    Preempted,
    PreemptiveResource,
    PriorityRequest,
    PriorityResource,
    Release,
    Request,
    Resource,
)
from .store import FilterStore, PriorityItem, PriorityStore, Store
from . import monitor

__all__ = [
    "Environment",
    "Infinity",
    "Timer",
    "Event",
    "Timeout",
    "Condition",
    "ConditionValue",
    "AllOf",
    "AnyOf",
    "Process",
    "Interrupt",
    "Resource",
    "PriorityResource",
    "PreemptiveResource",
    "Preempted",
    "Request",
    "PriorityRequest",
    "Release",
    "Store",
    "FilterStore",
    "PriorityStore",
    "PriorityItem",
    "monitor",
]
