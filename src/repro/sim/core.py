"""Discrete-event simulation kernel: the event loop.

This module is the substrate that replaces the SimGrid toolkit used in the
paper.  It provides a :class:`Environment` with a binary-heap event calendar,
virtual (integer- or float-valued) time, and two scheduling APIs:

* a **high-level API** in the style of SimPy — :class:`~repro.sim.events.Event`,
  :class:`~repro.sim.events.Timeout`, generator-based
  :class:`~repro.sim.process.Process` coroutines, shared resources and stores —
  used by the examples and available to downstream users, and
* a **low-level timer API** (:meth:`Environment.call_in` /
  :meth:`Environment.call_at`) returning cancellable :class:`Timer` handles,
  used by the protocol engine on its hot path where coroutine overhead would
  dominate.

Both APIs share one calendar, so they can be mixed freely.  Determinism:
entries are ordered by ``(time, priority, sequence)`` where the sequence
number increases monotonically with scheduling order, so runs with the same
seed replay identically.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Iterable, Optional, Union

from ..errors import SimulationError
from .events import AllOf, AnyOf, Event, Timeout, PENDING, _Entry

__all__ = ["Environment", "Timer", "Infinity", "NORMAL", "URGENT"]

#: Placeholder for "run forever" / "never".
Infinity: float = float("inf")

#: Default scheduling priority (larger runs later at equal times).
NORMAL = 1
#: Priority used for loop-control entries such as ``run(until=...)`` stops.
URGENT = 0

#: Compaction trigger: once at least this many cancelled timers sit in the
#: heap *and* they outnumber the live entries, the calendar is rebuilt.
_COMPACT_MIN = 1024


class Timer:
    """A cancellable low-level callback scheduled on the event calendar.

    Timers are the fast path of the kernel: one heap entry, one attribute
    check, one call.  They are returned by :meth:`Environment.call_in` and
    :meth:`Environment.call_at` and can be revoked with :meth:`cancel` at any
    point before they fire.

    Cancellation is lazy: the heap entry stays in place, tombstoned, and the
    environment counts outstanding tombstones so it can rebuild the calendar
    once they dominate it (preemption-heavy protocol runs cancel a large
    share of their transfer timers).
    """

    __slots__ = ("env", "time", "seq", "fn", "args", "cancelled")

    def __init__(self, env: "Environment", time, seq: int,
                 fn: Callable[..., Any], args: tuple):
        self.env = env
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Timer") -> bool:  # heap tie-break safety net
        return (self.time, self.seq) < (other.time, other.seq)

    def cancel(self) -> None:
        """Revoke the timer.  Cancelling an already-fired (or already
        cancelled) timer is a no-op."""
        if self.cancelled or self.fn is _fired:
            return
        self.cancelled = True
        # Drop references so cancelled entries sitting in the heap do not pin
        # arbitrary object graphs alive until they are popped.
        self.fn = _noop
        self.args = ()
        env = self.env
        env._cancelled += 1
        if env._cancelled >= _COMPACT_MIN and env._cancelled * 2 >= len(env._heap):
            env._compact()

    @property
    def active(self) -> bool:
        """``True`` while the timer is still pending (not fired, not cancelled)."""
        return not self.cancelled and self.fn is not _fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Timer t={self.time} seq={self.seq} {state}>"


def _noop(*_args: Any) -> None:
    return None


def _cancelled_entry(entry) -> bool:
    """``True`` for a tombstoned Timer slot (either calendar shape)."""
    item = entry[3] if entry.__class__ is tuple else entry.item
    return item.__class__ is Timer and item.cancelled


def _fired(*_args: Any) -> None:  # sentinel assigned after a timer runs
    return None


class _StopRun(Exception):
    """Internal control-flow exception used by ``run(until=...)``."""

    def __init__(self, value: Any = None):
        self.value = value


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Virtual time at which the clock starts (default ``0``).  Integer
        initial times combined with integer delays keep the whole simulation
        in exact integer arithmetic, which the reproduction relies on for
        exact rate comparisons.

    Notes
    -----
    The calendar orders entries by ``(time, priority, seq)``.  ``priority``
    is :data:`NORMAL` for user entries and :data:`URGENT` for loop-control
    entries, matching the convention that ``run(until=t)`` stops *before*
    processing events scheduled exactly at ``t``.
    """

    def __init__(self, initial_time: Union[int, float] = 0):
        self._now = initial_time
        #: Calendar entries — a mixed heap of two slot shapes sharing the
        #: ``(time, priority, seq)`` total order: plain tuples for
        #: integer times (the common case; comparisons stay entirely in
        #: C) and :class:`~repro.sim.events._Entry` objects for
        #: non-integer times (their cached integer-ratio comparison beats
        #: ``Fraction`` dispatch on contended graph runs).
        self._heap: list = []
        self._seq = 0
        self._cancelled = 0  # tombstoned timers still sitting in the heap
        #: Number of calendar entries processed so far (monitoring hook).
        self.processed_count = 0
        #: Optional callable ``(time, item)`` invoked before each entry runs.
        self.trace_hook: Optional[Callable[[Any, Any], None]] = None
        self._active_process = None  # set by Process while executing

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> Union[int, float]:
        """Current virtual time."""
        return self._now

    @property
    def active_process(self):
        """The :class:`~repro.sim.process.Process` currently executing, if any."""
        return self._active_process

    def peek(self) -> Union[int, float]:
        """Time of the next calendar entry, or :data:`Infinity` if empty."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry.__class__ is tuple:
                time, _prio, _seq, item = entry
            else:
                time, item = entry.time, entry.item
            if item.__class__ is Timer and item.cancelled:
                heappop(heap)
                self._cancelled -= 1
                continue
            return time
        return Infinity

    def is_empty(self) -> bool:
        """``True`` when no live calendar entries remain."""
        return self.peek() is Infinity

    # ----------------------------------------------------------- low level
    def call_at(self, time, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at absolute virtual ``time``.

        Returns a :class:`Timer` handle whose :meth:`Timer.cancel` revokes
        the call.  Scheduling in the past raises :class:`SimulationError`.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r} before now={self._now!r}"
            )
        seq = self._seq + 1
        self._seq = seq
        timer = Timer(self, time, seq, fn, args)
        if time.__class__ is int:
            heappush(self._heap, (time, NORMAL, seq, timer))
        else:
            heappush(self._heap, _Entry(time, NORMAL, seq, timer))
        return timer

    def call_in(self, delay, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` after ``delay`` time units (``delay >= 0``).

        This is the protocol engine's per-event scheduling call, so it is
        :meth:`call_at` unrolled: a non-negative delay can never land in the
        past, which saves the past-check and a second method call.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        time = self._now + delay
        seq = self._seq + 1
        self._seq = seq
        timer = Timer(self, time, seq, fn, args)
        if time.__class__ is int:
            heappush(self._heap, (time, NORMAL, seq, timer))
        else:
            heappush(self._heap, _Entry(time, NORMAL, seq, timer))
        return timer

    # ---------------------------------------------------------- high level
    def schedule(self, event: Event, delay: Union[int, float] = 0,
                 priority: int = NORMAL) -> None:
        """Insert a triggered :class:`Event` into the calendar.

        Normally invoked through :meth:`Event.succeed` / :meth:`Event.fail`
        rather than directly.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self._seq += 1
        time = self._now + delay
        if time.__class__ is int:
            heappush(self._heap, (time, priority, self._seq, event))
        else:
            heappush(self._heap, _Entry(time, priority, self._seq, event))

    def event(self) -> Event:
        """Create a new untriggered :class:`Event` bound to this environment."""
        return Event(self)

    def timeout(self, delay, value: Any = None) -> Timeout:
        """Create and schedule a :class:`Timeout` firing after ``delay``."""
        return Timeout(self, delay, value)

    def process(self, generator) -> "Process":
        """Start a coroutine :class:`~repro.sim.process.Process`."""
        from .process import Process

        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition event that fires once *all* ``events`` have fired."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition event that fires once *any* of ``events`` has fired."""
        return AnyOf(self, list(events))

    # ---------------------------------------------------------------- loop
    def step(self) -> None:
        """Process exactly one calendar entry.

        Raises :class:`SimulationError` when the calendar is empty.  Failed
        events with no registered callbacks propagate their exception out of
        the loop (they would otherwise be silently lost).
        """
        heap = self._heap
        while True:
            if not heap:
                raise SimulationError("step() on an empty calendar")
            entry = heappop(heap)
            if entry.__class__ is tuple:
                time, _prio, _seq, item = entry
            else:
                time, item = entry.time, entry.item
            if item.__class__ is Timer:
                if item.cancelled:
                    self._cancelled -= 1
                    continue
                self._now = time
                self.processed_count += 1
                if self.trace_hook is not None:
                    self.trace_hook(time, item)
                fn, args = item.fn, item.args
                item.fn = _fired
                item.args = ()
                fn(*args)
                return
            # High-level Event
            self._now = time
            self.processed_count += 1
            if self.trace_hook is not None:
                self.trace_hook(time, item)
            item._process()
            return

    def run(self, until: Union[None, int, float, Event] = None) -> Any:
        """Run the event loop.

        Parameters
        ----------
        until:
            * ``None`` — run until the calendar is exhausted;
            * a number — advance the clock to that time, processing every
              entry scheduled strictly before it;
            * an :class:`Event` — run until that event has been processed and
              return its value (re-raising its exception if it failed).
        """
        if until is None:
            stop_event = None
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event._ok_value()
            stop_event.callbacks.append(self._stop_on_event)
        else:
            if until < self._now:
                raise SimulationError(
                    f"run(until={until!r}) is in the past (now={self._now!r})"
                )
            stop_event = None
            self._seq += 1
            timer = Timer(self, until, self._seq, self._stop_at, ())
            if until.__class__ is int:
                heappush(self._heap, (until, URGENT, self._seq, timer))
            else:
                heappush(self._heap, _Entry(until, URGENT, self._seq, timer))

        # The event loop proper.  This duplicates :meth:`step` deliberately:
        # inlining the dispatch into one tight loop (with the heap and
        # ``heappop`` bound to locals) removes two method calls and several
        # attribute loads per calendar entry, which is where the bulk of the
        # kernel's per-event cost lives.  Any behavioural change here must be
        # mirrored in :meth:`step`.
        heap = self._heap
        pop = heappop
        timer_cls = Timer
        tuple_cls = tuple
        try:
            while heap:
                entry = pop(heap)
                if entry.__class__ is tuple_cls:
                    time, _prio, _seq, item = entry
                else:
                    time, item = entry.time, entry.item
                if item.__class__ is timer_cls:
                    if item.cancelled:
                        self._cancelled -= 1
                        continue
                    self._now = time
                    self.processed_count += 1
                    if self.trace_hook is not None:
                        self.trace_hook(time, item)
                    fn = item.fn
                    # Mark fired via the fn sentinel only; clearing args too
                    # would cost a second store per event for no observable
                    # difference (the entry is already off the heap).
                    item.fn = _fired
                    fn(*item.args)
                else:
                    self._now = time
                    self.processed_count += 1
                    if self.trace_hook is not None:
                        self.trace_hook(time, item)
                    item._process()
        except _StopRun as stop:
            return stop.value
        if isinstance(until, Event):
            raise SimulationError(
                "run() terminated: calendar exhausted before the 'until' "
                "event was triggered"
            )
        if until is not None:
            # Heap drained before reaching the stop time: clock jumps to it.
            self._now = until
        return None

    # Internal ----------------------------------------------------------
    def _compact(self) -> None:
        """Rebuild the calendar without tombstoned timers.

        Lazy deletion leaves cancelled entries in the heap until they are
        popped; once they outnumber live entries (see :data:`_COMPACT_MIN`)
        the heap is filtered and re-heapified in one O(n) pass.  Entry order
        is untouched — ordering lives in the ``(time, priority, seq)`` tuple
        prefix — so compaction never changes what runs when.
        """
        heap = self._heap
        # In-place so the list object keeps its identity: the inlined loop in
        # :meth:`run` holds a local reference to it across callbacks.
        heap[:] = [entry for entry in heap if not _cancelled_entry(entry)]
        heapify(heap)
        self._cancelled = 0

    def _stop_at(self) -> None:
        raise _StopRun(None)

    def _stop_on_event(self, event: Event) -> None:
        if event.failed and not event.defused:
            event.defused = True
            raise event._value from None
        raise _StopRun(event._value if event._value is not PENDING else None)
