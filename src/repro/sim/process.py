"""Generator-based coroutine processes for the discrete-event kernel.

A process is a Python generator that ``yield``-s :class:`~repro.sim.events.Event`
instances; the kernel resumes the generator with the event's value once the
event fires (or throws the event's exception into it).  Processes are
themselves events — they fire with the generator's return value — so they can
be waited upon and composed with ``&``/``|``.

Processes support asynchronous :meth:`Process.interrupt`, which the paper's
interruptible-communication protocol maps onto preempted task transfers.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..errors import SimulationError
from .events import Event, PENDING

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupt ``cause`` is an arbitrary user object describing why the
    process was interrupted (e.g. a ``Preempted`` record from a
    :class:`~repro.sim.resources.PreemptiveResource`).
    """

    @property
    def cause(self) -> Any:
        """The object passed to :meth:`Process.interrupt`."""
        return self.args[0]


class Process(Event):
    """A running coroutine; fires with the generator's return value."""

    __slots__ = ("_generator", "_target")

    def __init__(self, env, generator: Generator[Event, Any, Any]):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process() requires a generator, got {generator!r}"
            )
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (``None`` when
        #: it has not started or has terminated).
        self._target: Optional[Event] = None
        # Kick off the coroutine via an immediately-scheduled initialisation
        # event so that process bodies never run before the constructor returns.
        init = Event(env)
        init._value = None
        env.schedule(init)
        init.callbacks.append(self._resume)
        self._target = init

    # ---------------------------------------------------------------- state
    @property
    def is_alive(self) -> bool:
        """``True`` while the generator has not terminated."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is waiting on (diagnostics)."""
        return self._target

    # ------------------------------------------------------------ interrupt
    def interrupt(self, cause: Any = None) -> None:
        """Asynchronously throw :class:`Interrupt` into the process.

        The interrupt is delivered immediately (same virtual time).  It is an
        error to interrupt a terminated process or a process from within
        itself.
        """
        if self._value is not PENDING:
            raise SimulationError("cannot interrupt a terminated process")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        target = self._target
        if target is not None and target.callbacks is not None:
            # Detach from the event we were waiting on; the event itself
            # still fires for any other waiters.
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        interrupt_event = Event(self.env)
        interrupt_event._value = Interrupt(cause)
        interrupt_event._failed = True
        interrupt_event.defused = True
        self.env.schedule(interrupt_event)
        interrupt_event.callbacks.append(self._resume)

    # -------------------------------------------------------------- driving
    def _resume(self, event: Event) -> None:
        env = self.env
        previous, env._active_process = env._active_process, self
        try:
            while True:
                try:
                    if event._failed:
                        event.defused = True
                        next_target = self._generator.throw(event._value)
                    else:
                        next_target = self._generator.send(event._value)
                except StopIteration as stop:
                    self._target = None
                    self.succeed(stop.value)
                    return
                except BaseException as exc:
                    self._target = None
                    self.fail(exc)
                    return

                if not isinstance(next_target, Event):
                    exc = SimulationError(
                        f"process yielded a non-event: {next_target!r}"
                    )
                    event = Event(env)
                    event._value = exc
                    event._failed = True
                    event.defused = True
                    continue
                if next_target.env is not env:
                    exc = SimulationError(
                        "process yielded an event from a different environment"
                    )
                    event = Event(env)
                    event._value = exc
                    event._failed = True
                    event.defused = True
                    continue

                if next_target.callbacks is not None:
                    # Not yet processed: park until it fires.
                    next_target.callbacks.append(self._resume)
                    self._target = next_target
                    return
                # Already processed: continue synchronously with its outcome.
                event = next_target
        finally:
            env._active_process = previous
