"""Lightweight instrumentation for the discrete-event kernel.

The kernel exposes a single :attr:`Environment.trace_hook` slot; this module
provides ready-made hooks: an event-count/time histogram recorder and a
bounded in-memory trace useful in tests and when debugging protocol runs.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, List, Optional, Tuple

__all__ = ["TraceRecorder", "KindCounter", "attach", "detach"]


class TraceRecorder:
    """Records ``(time, repr(item))`` tuples for every processed entry.

    Parameters
    ----------
    limit:
        Maximum number of records retained (oldest dropped first); ``None``
        keeps everything.  Protocol runs process millions of entries, so a
        bound is strongly recommended outside of unit tests.
    """

    def __init__(self, limit: Optional[int] = 10_000):
        self.limit = limit
        self.records: List[Tuple[Any, str]] = []
        self.dropped = 0

    def __call__(self, time: Any, item: Any) -> None:
        records = self.records
        records.append((time, type(item).__name__))
        if self.limit is not None and len(records) > self.limit:
            del records[0]
            self.dropped += 1

    def __len__(self) -> int:
        return len(self.records)


class KindCounter:
    """Counts processed calendar entries by item class name."""

    def __init__(self):
        self.counts: Counter = Counter()

    def __call__(self, time: Any, item: Any) -> None:
        self.counts[type(item).__name__] += 1

    def total(self) -> int:
        """Total number of entries observed."""
        return sum(self.counts.values())


def attach(env, hook) -> None:
    """Install ``hook`` as the environment's trace hook.

    Raises :class:`ValueError` if a different hook is already installed, to
    avoid silently replacing someone else's instrumentation.
    """
    if env.trace_hook is not None and env.trace_hook is not hook:
        raise ValueError("environment already has a trace hook installed")
    env.trace_hook = hook


def detach(env) -> None:
    """Remove any installed trace hook."""
    env.trace_hook = None
