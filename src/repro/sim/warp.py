"""Steady-state warp: cycle detection and event-free fast-forward.

Theorem 1 (§4 of the paper) says a bandwidth-centric run converges to a
*periodic steady state*: after the startup transient, the entire dynamic
state of the simulation — per-node buffer occupancies, in-flight transfer
phases, the calendar's pending-timer deltas — recurs with some period
``(Δt, Δtasks)``.  A discrete-event simulator that keeps paying full
per-event cost through thousands of identical periods is doing arithmetic
the hard way.  This module finds the recurrence and replaces the middle of
the run with multiplication.

How it works
------------
At every task completion the :class:`WarpController` takes a **canonical
fingerprint** of the simulation: the completing node's id, every agent's
:meth:`~repro.protocols.agents.NodeAgent.fingerprint_state` view, and the
live calendar entries as ``(time - now, priority, owner, callback,
canonical args)`` tuples.  Monotone counters (virtual time, completed
tasks, the root's repository, per-node tallies) are deliberately
*excluded* — they grow forever and never influence a scheduling decision
except at the repository-exhaustion boundary, which the warp guard keeps
out of the skipped span.

When a fingerprint recurs, the deterministic kernel guarantees the run is
exactly periodic from the first occurrence on: the same event sequence
repeats every ``Δt`` timesteps, completing ``Δtasks`` tasks.  The
controller then advances ``k`` whole periods *analytically*:

* ``env.now`` and every pending timer shift by ``k·Δt`` (a uniform shift
  preserves heap order, so the calendar is filtered of tombstones and
  re-heapified in one pass);
* ``completed``, the repository, and every per-node monotone tally
  (``computed``, ``transfers_started``, ``preemptions``,
  ``buffers_decayed``, ``processed_count``) jump by ``k`` times their
  per-period delta;
* recorded timelines are *replicated*, not lost: the completion times of
  the template period re-appear shifted by ``j·Δt`` for each skipped
  period ``j``, and the (period-stable) buffer high-water marks repeat, so
  every downstream metric — window rates, onset detection, utilization —
  is exact over the warped span.

``k`` is capped at ``(undispensed - 1) // Δtasks - 1`` so the repository
never reaches zero inside the skipped span (the exhaustion boundary, and
with it the warm-down tail and final partial period, is always simulated
exactly).

When warp is sound
------------------
Only in the quiescent base model.  The engine refuses to construct a
controller when a mutation, churn, or fault schedule is present, and the
controller disarms itself if a tracer or kernel trace hook is attached or
a non-agent calendar entry appears — in all those cases the run degrades
to plain exact simulation and :class:`WarpSummary.applied` stays False.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify
from typing import Optional, Set, TYPE_CHECKING

from .core import Timer, _Entry

if TYPE_CHECKING:  # pragma: no cover
    from ..protocols.engine import ProtocolEngine

__all__ = ["WarpSummary", "WarpController", "LEDGER_CAP", "FAR_HORIZON",
           "REASON_CONTENTION", "REASON_DYNAMIC", "REASON_TRACING",
           "REASON_TELEMETRY", "REASON_MULTI_APP", "REASON_GRAPH_FAULTS",
           "REASON_OPEN_LOOP", "STAND_DOWN_REASONS"]

# Stand-down reasons shared by every engine (tree, graph, multi-app).
# Engines must report *these* strings — never ad-hoc ones — so callers can
# compare ``result.warp.reason`` against the constants instead of matching
# substrings, and the set below stays the single source of truth.
REASON_CONTENTION = ("disabled: shared-link contention breaks periodicity")
REASON_DYNAMIC = "disabled: dynamic platform schedule active"
REASON_TRACING = "disabled: tracing active"
REASON_TELEMETRY = "disabled: telemetry sampling active"
REASON_MULTI_APP = ("disabled: concurrent applications break "
                    "single-job periodicity")
REASON_GRAPH_FAULTS = ("disabled: graph fault schedule active "
                       "(reroute/partition events break periodicity)")
REASON_OPEN_LOOP = ("disabled: aperiodic open-loop arrivals active "
                    "(only exactly-periodic streams recur)")

#: Every reason an engine may stand the warp down with *before* the search
#: even starts (controller-side reasons — "no recurrence found", "completed
#: before warp" — are run outcomes, not stand-downs, and are not listed).
STAND_DOWN_REASONS = frozenset({
    REASON_CONTENTION,
    REASON_DYNAMIC,
    REASON_TRACING,
    REASON_TELEMETRY,
    REASON_MULTI_APP,
    REASON_GRAPH_FAULTS,
    REASON_OPEN_LOOP,
})

#: Fingerprints remembered before the search is abandoned.  A run whose
#: period is not found within this many completions simply stays exact.
LEDGER_CAP = 8192

#: Pending timers with more than this much virtual time left are treated as
#: *background* activities (e.g. the root's effectively-infinite first
#: compute on the paper's figure trees): they cannot belong to the periodic
#: regime, so their monotonically shrinking deltas are kept out of the
#: fingerprint.  They are instead verified to shrink by exactly Δt between
#: the two occurrences (proof they are the same untouched timers), left
#: unshifted by the warp, and the skip is capped to end strictly before the
#: earliest of them fires.
FAR_HORIZON = 1_000_000


@dataclass(frozen=True)
class WarpSummary:
    """Outcome of the warp subsystem for one run (``None`` when warp is off).

    ``applied`` is False either because the run never exhibited a usable
    recurrence or because a guard disabled the search; ``reason`` says
    which.  All counts are exact by construction.
    """

    applied: bool
    reason: str
    #: Whole periods skipped analytically.
    periods: int = 0
    #: Virtual-time length of one period (Δt).
    period_time: int = 0
    #: Tasks completed per period (Δtasks).
    period_tasks: int = 0
    #: Tasks accounted for without dispatching events (``periods · Δtasks``).
    tasks_skipped: int = 0
    #: Calendar entries the exact run would have processed in the skipped span.
    events_skipped: int = 0
    #: Completed-task count at the moment the warp engaged.
    warp_completed: int = 0
    #: Virtual time at the moment the warp engaged (before the shift).
    warp_time: int = 0
    #: Fingerprints taken before the search ended.
    fingerprints_taken: int = 0


class _Record:
    """Monotone-counter snapshot attached to one remembered fingerprint."""

    __slots__ = ("completed", "now", "undispensed", "processed", "per_node",
                 "far", "service")

    def __init__(self, completed, now, undispensed, processed, per_node, far,
                 service=None):
        self.completed = completed
        self.now = now
        self.undispensed = undispensed
        self.processed = processed
        self.per_node = per_node
        #: Remaining-time deltas of the far (background) timers, aligned
        #: with the descriptor order hashed into the fingerprint.
        self.far = far
        #: Open-loop driver counter snapshot (``None`` for closed bags).
        self.service = service


class _Foreign(Exception):
    """A calendar entry the canonicalizer does not understand."""


def _canon_arg(arg, now):
    """Canonicalize one timer argument relative to ``now``."""
    if type(arg) is int:
        return arg
    child = getattr(arg, "child", None)
    if child is not None and hasattr(arg, "remaining"):  # Transfer
        started = arg.started_at
        return ("t", child.id, arg.remaining,
                None if started is None else now - started)
    node_id = getattr(arg, "id", None)
    if node_id is not None and hasattr(arg, "fingerprint_state"):  # NodeAgent
        return ("n", node_id)
    raise _Foreign(arg)


def _canon_far_arg(arg):
    """Canonicalize one *far* timer argument — no time-relative fields.

    A far timer's descriptor must be identical at both occurrences of a
    period even though virtual time moved, so elapsed-time views (which
    shrink or grow monotonically) are dropped and only the structural
    identity of the argument is kept.
    """
    if type(arg) is int:
        return arg
    child = getattr(arg, "child", None)
    if child is not None and hasattr(arg, "remaining"):  # Transfer
        return ("t", child.id, arg.remaining)
    node_id = getattr(arg, "id", None)
    if node_id is not None and hasattr(arg, "fingerprint_state"):  # NodeAgent
        return ("n", node_id)
    raise _Foreign(arg)


class WarpController:
    """Period detector and fast-forwarder for one :class:`ProtocolEngine`.

    Constructed by the engine only for quiescent runs (no mutations, churn,
    faults, tracer, or trace hook).  :meth:`on_completion` is the single
    hook: it fingerprints, looks the fingerprint up in the period ledger,
    and on a recurrence applies the warp in place, after which the engine
    resumes exact simulation for the warm-down tail.
    """

    __slots__ = ("engine", "env", "_ledger", "_armed", "_active", "_count",
                 "_stride", "_taken", "summary")

    def __init__(self, engine: "ProtocolEngine"):
        self.engine = engine
        self.env = engine.env
        #: Hashes of states seen so far.  Membership is all the search
        #: needs — full state tuples are only kept when a hash recurs
        #: (arming), so ledger memory is ~tens of bytes per anchor
        #: regardless of tree size.  A 64-bit hash collision can at worst
        #: arm spuriously, never mis-warp: the warp itself compares full
        #: state tuples.
        self._ledger: Set[int] = set()
        #: ``(hash, state tuple, snapshot)`` once a recurrence was seen: the
        #: next time this exact state comes round (one whole period later)
        #: the warp fires with per-period deltas measured from the snapshot.
        self._armed: Optional[tuple] = None
        self._active = True
        self._count = 0
        #: Only every ``_stride``-th completion is fingerprinted; doubles
        #: every 1024 fingerprints so a run with a long (or no) period pays
        #: a bounded, shrinking overhead instead of a constant tax.  Anchors
        #: stay aligned to period phases: sampled completions are multiples
        #: of the stride, and every residue class contains multiples of any
        #: period length, so recurrences are still found — at worst the
        #: detected period is a small multiple of the true one.
        self._stride = 1
        self._taken = 0
        self.summary: Optional[WarpSummary] = None

    # ------------------------------------------------------------ lifecycle
    def _finish(self, applied: bool, reason: str, **counts) -> None:
        self._active = False
        self._ledger.clear()
        self._armed = None
        driver = self.engine.service_driver
        if driver is not None:
            driver.discard_template()
        self.summary = WarpSummary(applied=applied, reason=reason,
                                   fingerprints_taken=self._taken, **counts)

    def finalize(self) -> WarpSummary:
        """Summary for the result record (called once, at end of run)."""
        if self.summary is None:
            self._finish(False, "no recurrence before the run completed")
        return self.summary

    # ----------------------------------------------------------------- hook
    def on_completion(self, node) -> None:
        """Fingerprint the post-completion state; warp on a recurrence."""
        if not self._active:
            return
        self._count += 1
        if self._count % self._stride:
            return
        engine = self.engine
        if engine._tracer is not None or self.env.trace_hook is not None:
            # Tracing observes individual events; skipping any would break
            # trace identity, so the search stands down for the whole run.
            self._finish(False, "disabled: tracing active")
            return
        root = engine.nodes[engine.tree.root]
        driver = engine.service_driver
        if driver is None:
            if root.undispensed <= 0:
                self._finish(False,
                             "repository exhausted before a recurrence")
                return
        elif driver.exhausted:
            # Open loop: the repository legitimately drains between
            # arrivals (that boundary is part of the periodic pattern),
            # but once the arrival stream itself has ended the run is in
            # its wind-down tail and no recurrence can be exploited.
            self._finish(False, "arrival stream ended before a recurrence")
            return
        snapshot = self._fingerprint(node.id)
        if snapshot is None:
            self._finish(False, "disabled: foreign calendar entries")
            return
        state, far = snapshot
        self._taken += 1
        digest = hash(state)
        armed = self._armed
        if armed is not None:
            if digest == armed[0] and state == armed[1]:
                self._warp(armed[2], root, far)
            return
        if digest in self._ledger:
            # Second (apparent) sighting: the run is in its cycle.  Keep
            # this one full state tuple and snapshot and wait for the state
            # to come round once more, measuring exact per-period deltas
            # between two *consecutive* occurrences.
            env = self.env
            self._armed = (digest, state, _Record(
                engine.completed, env._now, root.undispensed,
                env.processed_count,
                tuple((a.computed, a.transfers_started, a.preemptions,
                       a.buffers_decayed) for a in engine.nodes), far,
                driver.warp_snapshot(env._now) if driver is not None
                else None))
            if driver is not None:
                # Collect one period of sojourn latencies: every
                # completion between now and the firing occurrence (the
                # driver's fold runs before this hook, so the template
                # spans exactly (t_armed, t_fire]).
                driver.begin_template()
            return
        if len(self._ledger) >= LEDGER_CAP:
            self._finish(False, "ledger cap reached without a recurrence")
            return
        self._ledger.add(digest)
        if self._taken % 1024 == 0:
            self._stride = min(self._stride * 2, 64)

    # ---------------------------------------------------------- fingerprint
    def _fingerprint(self, anchor_id: int):
        """``(canonical state tuple, far deltas)`` of the simulation.

        Returns ``None`` on foreign calendar entries.  The state tuple is
        hashable (nested int/str/None tuples only); the caller hashes it
        for the ledger and keeps the tuple itself only while armed.

        Pending timers beyond :data:`FAR_HORIZON` enter the state by a
        delta-free descriptor (their remaining time shrinks monotonically
        and would otherwise block every recurrence); the deltas themselves
        are returned separately, sorted in descriptor order, for the warp's
        same-timer verification and skip cap.
        """
        engine = self.engine
        env = self.env
        now = env._now
        parts = [anchor_id, engine.buffer_high_water, engine.held_high_water]
        for agent in engine.nodes:
            parts.append(agent.fingerprint_state(now))
        driver = engine.service_driver
        if driver is not None:
            # Open-loop state that must recur for true periodicity: the
            # repository level (no longer monotone — arrivals refill it),
            # pending sojourn ages, the next arrival's relative offset and
            # size, and the admission policy's relative state.
            parts.append(driver.fingerprint_state(now))
        calendar = []
        far = []
        try:
            for entry in sorted(env._heap):
                if entry.__class__ is tuple:
                    time, prio, _seq, item = entry
                else:  # upgraded (non-int-time) calendar: _Entry objects
                    time, prio, item = entry.time, entry.prio, entry.item
                if item.__class__ is not Timer:
                    raise _Foreign(item)
                if item.cancelled:
                    continue
                fn = item.fn
                owner = getattr(fn, "__self__", None)
                if owner is None or not hasattr(owner, "fingerprint_state"):
                    raise _Foreign(fn)
                delta = time - now
                if delta > FAR_HORIZON:
                    far.append(((prio, owner.id, fn.__name__,
                                 tuple(_canon_far_arg(a) for a in item.args)),
                                delta))
                else:
                    calendar.append(
                        (delta, prio, owner.id, fn.__name__,
                         tuple(_canon_arg(a, now) for a in item.args)))
        except _Foreign:
            return None
        far.sort()
        parts.append(tuple(calendar))
        parts.append(tuple(desc for desc, _ in far))
        return tuple(parts), tuple(delta for _, delta in far)

    # ----------------------------------------------------------------- warp
    def _warp(self, prev: _Record, root, far) -> None:
        """Advance ``k`` whole periods analytically, in place."""
        engine = self.engine
        env = self.env
        now = env._now
        driver = engine.service_driver
        dt = now - prev.now
        dtasks = engine.completed - prev.completed
        if driver is None:
            # Closed bag: every completed task came out of the repository.
            conserved = prev.undispensed - root.undispensed == dtasks
        else:
            # Open loop: the repository level recurs (it is in the
            # fingerprint), so conservation means one period admits
            # exactly as many tasks as it completes.
            conserved = driver.admitted - prev.service[1] == dtasks
        if dt <= 0 or dtasks <= 0 or not conserved:
            # A recurrence that moved no time/tasks, or that created or
            # destroyed task instances, is not a steady-state period.
            self._finish(False, "recurrence failed the conservation check")
            return
        # Far timers must be the *same untouched instances* at both
        # occurrences — i.e. each delta shrank by exactly Δt, so they sit at
        # identical absolute times and were inert through the period.  A
        # recreated background timer (delta reset instead of shrunk) means
        # the period's dynamics touch it; disarm and keep searching.
        if len(far) != len(prev.far) or any(
                b != a - dt for a, b in zip(prev.far, far)):
            self._armed = None
            if driver is not None:
                driver.discard_template()
            return
        if driver is None:
            # Keep the repository strictly positive through the skipped
            # span (the exhaustion boundary changes behaviour), minus one
            # spare period so the warm-down tail is always simulated
            # exactly.
            k = (root.undispensed - 1) // dtasks - 1
        else:
            if (driver.next_event_delta(now) or 0) > FAR_HORIZON:
                # The arrival timer would be classed as a far timer and
                # left unshifted — inconsistent with the driver's view.
                # Pathological (arrival gaps beyond 1M steps); stay exact.
                self._finish(False, "next arrival beyond the warp horizon")
                return
            # Cap by the arrival stream instead of the repository: leave
            # one full period of events (plus the already-scheduled next
            # one) so the stream's end is always simulated exactly.
            k = driver.warp_periods_cap(
                driver.events_emitted - prev.service[4])
        if k <= 0:
            self._finish(False, "recurrence found too close to the end")
            return
        if far:
            # An inert background timer must stay inert: end the skipped
            # span strictly before the earliest far timer fires.  Its
            # imminent firing is a regime change — disarm so the search can
            # find the new cycle afterwards instead of chasing this one.
            k = min(k, (min(far) - 1) // dt)
            if k <= 0:
                self._armed = None
                if driver is not None:
                    driver.discard_template()
                return
        shift = k * dt
        skipped = k * dtasks

        # Replicate the timelines: steady-state periods are identical by
        # construction, so per-completion records repeat instead of being
        # lost.  (High-water marks are period-stable — a changed mark would
        # have changed the fingerprint — so they repeat as constants.)
        if engine.record_completion_times:
            times = engine.completion_times
            template = times[prev.completed:]
            for j in range(1, k + 1):
                offset = j * dt
                times.extend(t + offset for t in template)
        if engine.record_buffer_timeline:
            engine.buffer_timeline.extend(
                [engine.buffer_high_water] * skipped)
            engine.held_timeline.extend([engine.held_high_water] * skipped)
        engine.last_completion_time = now + shift

        # Monotone counters jump by k times their per-period delta.
        engine.completed += skipped
        if driver is None:
            root.undispensed -= skipped
        events = env.processed_count - prev.processed
        env.processed_count += k * events
        for agent, (c0, t0, p0, b0) in zip(engine.nodes, prev.per_node):
            agent.computed += k * (agent.computed - c0)
            agent.transfers_started += k * (agent.transfers_started - t0)
            agent.preemptions += k * (agent.preemptions - p0)
            agent.buffers_decayed += k * (agent.buffers_decayed - b0)
        if driver is not None:
            # Scale the service counters, replay the period's latency
            # template into the sketch with weight k, and translate the
            # driver's timestamps (pending ages, admission state, next
            # arrival) by the shift.  The arrival iterator skips the
            # elided events analytically.
            driver.warp_apply(k, shift, prev.service, now)

        # Shift the calendar.  A uniform shift preserves every pairwise
        # comparison, but dropping tombstones reorders the array, so the
        # filtered list is re-heapified (same invariant as _compact).  Far
        # timers keep their absolute times — the exact run's skipped span
        # never touches them, so shifting them would diverge from it.
        live = []
        for entry in env._heap:
            if entry.__class__ is tuple:
                time, prio, seq, item = entry
            else:  # upgraded calendar (see Environment._upgrade)
                time, prio, seq, item = (entry.time, entry.prio,
                                         entry.seq, entry.item)
            if item.cancelled:
                continue
            if time - now > FAR_HORIZON:
                live.append(entry)
            else:
                item.time += shift
                if entry.__class__ is tuple:
                    live.append((time + shift, prio, seq, item))
                else:
                    live.append(_Entry(time + shift, prio, seq, item))
        env._heap[:] = live
        heapify(env._heap)
        env._cancelled = 0

        # Absolute-time state outside the calendar: in-flight transfer legs
        # remember when they started (preemption measures elapsed wire time
        # against it).
        for agent in engine.nodes:
            transfer = agent.current_transfer
            if transfer is not None and transfer.started_at is not None:
                transfer.started_at += shift
        env._now = now + shift

        self._finish(True, "warped", periods=k, period_time=dt,
                     period_tasks=dtasks, tasks_skipped=skipped,
                     events_skipped=k * events,
                     warp_completed=prev.completed + dtasks, warp_time=now)
