"""Autonomous node agents implementing the bandwidth-centric protocols (§3).

Every node runs the same purely local algorithm:

* it keeps a pool of task buffers and sends its parent **one request per
  empty buffer** (initially, and whenever a buffer frees up — i.e. when a
  task starts computing locally or starts being forwarded to a child);
* an idle CPU always grabs a buffered task (the local CPU is the
  highest-priority "child": it costs no link time — see Theorem 1's ``1/w0``
  term, which is always fully served);
* the single send port delegates buffered tasks to requesting children,
  highest priority first (bandwidth-centric: ascending edge cost ``c``);
* under **non-interruptible communication** a started transfer always runs
  to completion, and nodes may *grow* extra buffers per §3.1's three rules
  (all buffers empty + a child is requesting; send completed with empty
  buffers + a child is requesting; computation completed with empty
  buffers), damped to at most one growth per task arrival
  (see :class:`~repro.protocols.config.ProtocolConfig.growth_cooldown`);
* under **interruptible communication** a request from a higher-priority
  child preempts the in-flight transfer: the partial transfer is shelved
  (one staging slot per child) and resumed — possibly after further
  preemptions — when its child is again the best choice.  Shelved resumption
  is always preferred over starting a second transfer to the same child.

The agents are event-driven callbacks on the kernel's low-level timer API;
control messages (requests) are delivered synchronously in zero virtual
time, as the paper assumes.  All state transitions keep the invariant
``buffers_total == tasks_held + requested + incoming`` (checked in tests).
The root holds the repository: it has no parent, never requests or grows,
and dispenses exactly ``num_tasks`` tasks.
"""

from __future__ import annotations

from collections import deque
from operator import attrgetter
from typing import Callable, Deque, Dict, List, Optional, TYPE_CHECKING

from ..errors import ProtocolError
from .config import PriorityRule, ProtocolConfig, ProtocolVariant
from . import trace as _trace

if TYPE_CHECKING:  # pragma: no cover
    from .engine import ProtocolEngine

__all__ = ["NodeAgent", "Transfer"]

#: Shared immutable "no suspects" marker used while fault recovery is off,
#: so the scheduling hot path pays only an empty-membership test.
_NO_SUSPECTS: frozenset = frozenset()

#: Sort key for :meth:`NodeAgent.resort_children` — the cached per-agent
#: priority tuple, recomputed only when a weight actually mutates.
_PRIO_KEY = attrgetter("prio_key")


class Transfer:
    """One task in flight from ``parent`` to ``child`` (possibly shelved)."""

    __slots__ = ("child", "remaining", "started_at", "timer")

    def __init__(self, child: "NodeAgent", remaining):
        self.child = child
        #: Transfer time still owed when not actively being sent.
        self.remaining = remaining
        #: Virtual time the current (re)transmission leg began.
        self.started_at = None
        self.timer = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Transfer to={self.child.id} remaining={self.remaining}>"


class NodeAgent:
    """One platform node running the autonomous protocol.

    Not constructed directly — :class:`~repro.protocols.engine.ProtocolEngine`
    builds one agent per tree node and wires the parent/child references.
    """

    __slots__ = (
        "engine", "env", "tracer", "prio_key",
        "id", "w", "c", "parent", "children", "sorted_children",
        "is_root", "interruptible", "growth", "max_buffers", "priority_rule",
        "buffers_total", "tasks_held", "requested", "incoming",
        "child_requests", "fifo_queue", "growth_cooldown", "growth_armed",
        "decay", "decay_threshold", "decay_pending", "surplus_streak",
        "idle_arrival_streak", "initial_buffers", "decay_floor",
        "buffers_decayed", "departed",
        "undispensed", "cpu_busy", "cpu_timer",
        "current_transfer", "shelf",
        "computed", "max_buffers_seen", "max_held_seen",
        "transfers_started", "preemptions",
        "alive", "link_down", "deferred_requests", "suspect",
        "probe_timers", "sweep_timer",
        "request_timeout", "max_retries", "backoff_factor",
    )

    def __init__(self, engine: "ProtocolEngine", node_id: int, w, c,
                 config: ProtocolConfig, is_root: bool):
        self.engine = engine
        # Hot-path caches: one attribute hop instead of two.  ``tracer`` is
        # the engine's *effective* recorder (user tracer and/or telemetry
        # tap), kept in sync by ``ProtocolEngine._rebuild_recorder``.
        self.env = engine.env
        self.tracer = engine._recorder
        self.id = node_id
        self.w = w
        self.c = c  # cost of the edge from the parent (0 at the root)
        self.parent: Optional[NodeAgent] = None
        self.children: List[NodeAgent] = []
        self.sorted_children: List[NodeAgent] = []
        self.is_root = is_root

        self.interruptible = config.variant is ProtocolVariant.INTERRUPTIBLE
        self.growth = config.buffer_growth and not is_root
        self.growth_cooldown = config.growth_cooldown
        self.growth_armed = True  # a node may always make its first grow
        self.decay = config.buffer_decay and not is_root
        self.decay_threshold = config.decay_threshold
        # Never decay below 3 buffers: a served child needs that much
        # request pipelining to keep its parent's leftover port time usable
        # (the same constant the paper's IC protocol settles on).
        self.decay_floor = max(config.initial_buffers, 3)
        self.decay_pending = 0
        self.surplus_streak = 0
        self.idle_arrival_streak = 0
        self.initial_buffers = config.initial_buffers
        self.buffers_decayed = 0
        self.max_buffers = config.max_buffers
        self.priority_rule = config.priority_rule

        # Cached priority tuple (see :meth:`_refresh_prio_key`).  Computed
        # once here and refreshed only on weight mutations, so the hot
        # scheduling paths compare plain tuples instead of calling a method.
        if config.priority_rule is PriorityRule.COMPUTE_CENTRIC:
            self.prio_key = (w, node_id)
        else:
            self.prio_key = (c, node_id)

        self.buffers_total = config.initial_buffers
        self.tasks_held = 0
        self.requested = 0    # outstanding requests at the parent
        self.incoming = 0     # granted requests whose transfer is in flight
        self.child_requests = 0  # sum of children's `requested`
        self.fifo_queue: Optional[Deque[NodeAgent]] = (
            deque() if config.priority_rule is PriorityRule.FIFO else None)

        self.departed = False  # left the pool (graceful drain mode)

        # Fault-recovery state (§ "Abrupt failures" in docs/protocol.md).
        # ``suspect``/``probe_timers`` stay inert placeholders unless the
        # engine calls :meth:`enable_fault_recovery`.
        self.alive = True
        self.link_down = False   # the edge from the parent is down
        self.deferred_requests = 0  # requests not yet announced (link down)
        self.suspect = _NO_SUSPECTS  # child ids frozen out of the schedule
        self.probe_timers: Optional[Dict[int, object]] = None
        self.sweep_timer = None
        self.request_timeout = config.request_timeout
        self.max_retries = config.max_retries
        self.backoff_factor = config.backoff_factor

        self.undispensed = 0  # repository size; set by the engine on the root
        self.cpu_busy = False
        self.cpu_timer = None
        self.current_transfer: Optional[Transfer] = None
        self.shelf: Dict[int, Transfer] = {}  # child id → shelved transfer

        self.computed = 0
        self.max_buffers_seen = config.initial_buffers
        self.max_held_seen = 0  # high-water of simultaneously occupied buffers
        self.transfers_started = 0
        self.preemptions = 0

    # ------------------------------------------------------------ ordering
    def _refresh_prio_key(self) -> None:
        """Recompute the cached priority tuple after a weight mutation.

        Mirrors the live-key semantics of the old per-call computation:
        under COMPUTE_CENTRIC the key tracks ``w``, otherwise (bandwidth-
        centric, and FIFO which never sorts) it tracks the edge cost ``c``.
        """
        if self.priority_rule is PriorityRule.COMPUTE_CENTRIC:
            self.prio_key = (self.w, self.id)
        else:
            self.prio_key = (self.c, self.id)

    def _priority_key(self, child: "NodeAgent"):
        """Priority of ``child`` in this node's schedule (kept for API
        compatibility; hot paths read ``child.prio_key`` directly)."""
        return child.prio_key

    def resort_children(self) -> None:
        """Recompute the child priority order (start-up and after mutations)."""
        self.sorted_children = sorted(self.children, key=_PRIO_KEY)

    # ------------------------------------------------------- task sourcing
    def has_task(self) -> bool:
        """A task is available for the CPU or the send port."""
        if self.is_root:
            return self.undispensed > 0
        return self.tasks_held > 0

    def _take_task(self) -> None:
        """Consume one available task (buffer frees → request + growth rule 1).

        A pending decay destroys the freed buffer instead of re-requesting
        it, which keeps the ledger invariant intact without ever having to
        withdraw a request from the parent's queue.
        """
        if self.is_root:
            self.undispensed -= 1
            if self.undispensed == 0:
                self.engine._on_repository_exhausted()
            return
        self.tasks_held -= 1
        if self.departed:
            # Drain mode: the freed buffer is retired, never re-requested.
            self.buffers_total -= 1
            return
        if self.decay_pending > 0 and self.buffers_total > self.decay_floor:
            self.decay_pending -= 1
            self.buffers_total -= 1
            self.buffers_decayed += 1
            return
        self.requested += 1
        if self.link_down:
            # The request cannot cross a down link; it is re-announced
            # wholesale when the parent re-admits this node after repair.
            self.deferred_requests += 1
        else:
            self.parent._on_request(self)
        # Growth rule 1: all buffers just became empty while a child is
        # still waiting for a task.
        if self.growth and self.tasks_held == 0 and self.child_requests > 0:
            self._grow_buffer()

    def _grow_buffer(self) -> None:
        if self.max_buffers is not None and self.buffers_total >= self.max_buffers:
            return
        if self.growth_cooldown:
            if not self.growth_armed:
                return
            # Re-armed by the next task arrival (one growth per cycle).
            self.growth_armed = False
        self.buffers_total += 1
        if self.buffers_total > self.max_buffers_seen:
            self.max_buffers_seen = self.buffers_total
            self.engine._note_buffer_high_water(self.buffers_total)
        tracer = self.tracer
        if tracer is not None:
            tracer.record(self.env.now, _trace.GROW, self.id)
        self.requested += 1
        if self.link_down:
            self.deferred_requests += 1
        else:
            self.parent._on_request(self)

    # --------------------------------------------------------------- churn
    def announce_join(self) -> None:
        """A freshly attached node starts participating: one request per
        (empty) buffer, delivered live so the parent can react — including
        preempting a lower-priority transfer under IC."""
        for _ in range(self.buffers_total):
            self.requested += 1
            self.parent._on_request(self)

    def depart(self) -> None:
        """Gracefully leave the pool: withdraw outstanding requests, keep
        accepting what is already in flight, finish held tasks, never ask
        again.  No work is lost."""
        if self.departed:
            return
        self.departed = True
        self.growth = False
        self.decay = False
        if self.requested:
            # Only requests the parent actually heard about (announced and
            # not frozen by suspicion) are withdrawn from its counter.
            announced = self.requested - self.deferred_requests
            if (announced and self.id not in self.parent.suspect
                    and self in self.parent.children):
                self.parent.child_requests -= announced
            self.buffers_total -= self.requested
            self.requested = 0
            self.deferred_requests = 0

    def _decay_tick(self) -> None:
        """Account one completion/forward toward shedding surplus buffers.

        A streak of ``decay_threshold`` events during which the node still
        held spare tasks means the pool exceeds what its service gaps need;
        one buffer is marked for destruction (performed lazily by
        :meth:`_take_task` when a buffer next frees up).
        """
        if self.tasks_held > 0:
            self.surplus_streak += 1
            if (self.surplus_streak >= self.decay_threshold
                    and self.buffers_total - self.decay_pending
                    > self.initial_buffers):
                self.decay_pending += 1
                self.surplus_streak = 0
        else:
            self.surplus_streak = 0

    # ------------------------------------------------------------ requests
    def send_initial_requests(self) -> None:
        """Register one request per (empty) initial buffer — no sends yet.

        The engine registers every node's requests before any send decision
        so that t=0 sends already respect priorities (otherwise whichever
        child registered first would grab the port).
        """
        if self.is_root:
            return
        self.requested = self.buffers_total
        self.parent.child_requests += self.buffers_total
        if self.parent.fifo_queue is not None:
            self.parent.fifo_queue.extend([self] * self.buffers_total)

    def _on_request(self, child: "NodeAgent") -> None:
        """A child announced an empty buffer (synchronous, zero time)."""
        tracer = self.tracer
        if tracer is not None:
            tracer.record(self.env.now, _trace.REQUEST, child.id, self.id)
        if child.id in self.suspect:
            # A suspected-but-alive child (graph runs: its flow was killed
            # by a fabric fault but a reroute may revive it) keeps its
            # demand in `deferred_requests`; counting it here *and* again
            # wholesale at readmission would double-book the request.
            return
        self.child_requests += 1
        if self.fifo_queue is not None:
            self.fifo_queue.append(child)
        if self.current_transfer is None:
            self.try_send()
        elif self.interruptible:
            self._maybe_preempt()

    # ------------------------------------------------------------- compute
    def try_start_compute(self) -> None:
        """Feed the local CPU if it is idle and a task is available."""
        if self.cpu_busy or not self.has_task():
            return
        self._take_task()
        self.cpu_busy = True
        tracer = self.tracer
        if tracer is not None:
            tracer.record(self.env.now, _trace.COMPUTE_START, self.id)
        self.cpu_timer = self.env.call_in(self.w, self._cpu_done)

    def _cpu_done(self) -> None:
        self.cpu_busy = False
        self.computed += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.record(self.env.now, _trace.COMPUTE_DONE, self.id)
        self.engine._on_completion(self)
        # Growth rule 3: computation finished and the buffers are all empty.
        if self.growth and self.tasks_held == 0:
            self._grow_buffer()
        if self.decay:
            self._decay_tick()
        self.try_start_compute()

    # -------------------------------------------------------------- sending
    def _choose_next(self) -> Optional["NodeAgent"]:
        """Best child to serve now, or None.  Shelved resumes need no task."""
        if self.fifo_queue is not None:
            if self.fifo_queue and self.has_task():
                return self.fifo_queue[0]
            return None
        suspect = self.suspect
        shelf = self.shelf
        if shelf:
            task_ready = self.has_task()
            for child in self.sorted_children:
                if child.id in suspect:
                    continue
                if child.id in shelf:
                    return child
                if task_ready and child.requested > 0:
                    return child
            return None
        if not self.has_task() or self.child_requests == 0:
            return None
        for child in self.sorted_children:
            if child.requested > 0 and child.id not in suspect:
                return child
        return None

    def try_send(self) -> None:
        """Start (or resume) the highest-priority eligible transfer."""
        if self.current_transfer is not None:
            return
        child = self._choose_next()
        if child is None:
            return
        if self.probe_timers is not None:
            # Fault recovery is on: refuse to start a transfer into a dead
            # or unreachable child — a failed send is the local observation
            # that starts the suspicion clock.
            while not child.alive or child.link_down:
                self._mark_suspect(child)
                child = self._choose_next()
                if child is None:
                    return
        transfer = self.shelf.pop(child.id, None)
        tracer = self.tracer
        if transfer is None:
            if self.fifo_queue is not None:
                self.fifo_queue.popleft()
            self._take_task()
            child.requested -= 1
            self.child_requests -= 1
            child.incoming += 1
            transfer = self._new_transfer(child)
            self.transfers_started += 1
            if tracer is not None:
                tracer.record(self.env.now, _trace.SEND_START,
                              self.id, child.id)
        elif tracer is not None:
            tracer.record(self.env.now, _trace.SEND_RESUME,
                          self.id, child.id)
        self._begin_leg(transfer)

    def _new_transfer(self, child: "NodeAgent") -> Transfer:
        """Fresh outgoing transfer; ``remaining`` is the edge's full cost.
        (Graph agents override: their ``remaining`` is a fluid *volume*.)"""
        return Transfer(child, child.c)

    def _begin_leg(self, transfer: Transfer) -> None:
        """Put ``transfer`` on the port and schedule its completion.
        (Graph agents override to route through the contention manager.)"""
        env = self.env
        transfer.started_at = env.now
        transfer.timer = env.call_in(transfer.remaining, self._send_done, transfer)
        self.current_transfer = transfer

    def _send_done(self, transfer: Transfer) -> None:
        self.current_transfer = None
        child = transfer.child
        tracer = self.tracer
        if tracer is not None:
            tracer.record(self.env.now, _trace.SEND_DONE,
                          self.id, child.id)
        child.incoming -= 1
        child.tasks_held += 1
        child.growth_armed = True  # one growth permitted per arrival cycle
        if child.tasks_held > child.max_held_seen:
            child.max_held_seen = child.tasks_held
            self.engine._note_held_high_water(child.tasks_held)
        # Growth rule 2: a send completed, a child is still requesting, and
        # this node's buffers are all empty.
        if self.growth and self.tasks_held == 0 and self.child_requests > 0:
            self._grow_buffer()
        if self.decay:
            self._decay_tick()
        child._on_task_arrival()
        self.try_send()

    def _on_task_arrival(self) -> None:
        if self.decay:
            # A streak of arrivals that each find the CPU idle marks a
            # bandwidth-starved node whose extra buffers (and requests)
            # buy nothing — the over-requesting of §3.1 case 4.  Nodes
            # that are merely refilling a stock see back-to-back arrivals
            # with a busy CPU, which resets the streak.
            if self.cpu_busy:
                self.idle_arrival_streak = 0
            else:
                self.idle_arrival_streak += 1
                if (self.idle_arrival_streak >= self.decay_threshold
                        and self.requested >= 2
                        and self.buffers_total - self.decay_pending
                        > self.decay_floor):
                    self.decay_pending += 1
                    self.idle_arrival_streak = 0
        self.try_start_compute()
        if self.current_transfer is None:
            self.try_send()
        elif self.interruptible:
            # A fresh task may enable serving a child with higher priority
            # than the transfer currently on the port.
            self._maybe_preempt()

    # ---------------------------------------------------------- preemption
    def _maybe_preempt(self) -> None:
        """Interruptible rule: shelve the port's transfer for a better child."""
        current = self.current_transfer
        if current is None:
            return
        best = self._choose_next()
        if best is None or best is current.child:
            return
        if best.prio_key >= current.child.prio_key:
            return
        env = self.env
        elapsed = env.now - current.started_at
        if elapsed >= current.remaining:
            # The transfer's completion timer is due this very timestep (it
            # just has a later calendar sequence number): let it finish.
            return
        current.timer.cancel()
        current.remaining -= elapsed
        current.started_at = None
        current.timer = None
        self.shelf[current.child.id] = current
        self.current_transfer = None
        self.preemptions += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.record(env.now, _trace.PREEMPT, self.id, current.child.id)
        self.try_send()

    # ------------------------------------------------------------ mutation
    def apply_weight_change(self, attribute: str, value) -> None:
        """Apply a dynamic platform change (activities in flight keep their
        original durations; new decisions see the new weight)."""
        if attribute == "w":
            self.w = value
            # Keep the live-key semantics of the old per-call computation:
            # a compute-centric weight change is visible to preemption
            # comparisons immediately, even though siblings are not
            # re-sorted (matching the pre-cache behaviour exactly).
            self._refresh_prio_key()
            return
        if self.is_root:
            raise ProtocolError("the root has no parent edge to mutate")
        self.c = value
        self._refresh_prio_key()
        parent = self.parent
        parent.resort_children()
        # Priorities changed: the port may now be serving the wrong child.
        if parent.interruptible and parent.current_transfer is not None:
            parent._maybe_preempt()
        elif parent.current_transfer is None:
            parent.try_send()

    # ------------------------------------------------------ fault recovery
    def enable_fault_recovery(self) -> None:
        """Switch the inert fault placeholders to live state.  Called by the
        engine for every agent when (and only when) the run carries a
        :class:`~repro.platform.faults.FaultSchedule`, so fault-free runs
        keep a bit-identical event calendar."""
        self.suspect = set()
        self.probe_timers = {}

    def _crash(self) -> int:
        """Die abruptly.  Returns the number of task instances destroyed
        *locally* (buffered, on the CPU, or on the outgoing port/shelf);
        the engine pools them for eventual reclaim by the root."""
        self.alive = False
        self.growth = False
        self.decay = False
        lost = self.tasks_held
        self.tasks_held = 0
        if self.cpu_timer is not None:
            self.cpu_timer.cancel()
            self.cpu_timer = None
        if self.cpu_busy:
            self.cpu_busy = False
            lost += 1
        transfer = self.current_transfer
        if transfer is not None:
            if transfer.timer is not None:
                transfer.timer.cancel()
            self.current_transfer = None
            lost += 1
            self.engine.transfers_wasted += 1
        if self.shelf:
            lost += len(self.shelf)
            self.engine.transfers_wasted += len(self.shelf)
            self.shelf.clear()
        if self.sweep_timer is not None:
            self.sweep_timer.cancel()
            self.sweep_timer = None
        if self.probe_timers:
            for timer in self.probe_timers.values():
                timer.cancel()
            self.probe_timers.clear()
        return lost

    def _mark_suspect(self, child: "NodeAgent") -> None:
        """Freeze an unreachable child out of the schedule and start probing.

        Purely local: the parent observed a failed send (or a missed
        liveness ping) — it cannot tell a crash from a link outage, so it
        retries ``max_retries`` probes with exponential backoff before
        declaring the child dead.
        """
        if child.id in self.suspect:
            return
        self.suspect.add(child.id)
        # The child's announced requests leave the parent's demand counter
        # while suspicion lasts; deferred (unannounced) ones never entered.
        self.child_requests -= child.requested - child.deferred_requests
        tracer = self.tracer
        if tracer is not None:
            tracer.record(self.env.now, _trace.SUSPECT,
                          self.id, child.id)
        self.probe_timers[child.id] = self.env.call_in(
            self.request_timeout, self._probe_child, child, 1)

    def _probe_child(self, child: "NodeAgent", attempt: int) -> None:
        if not self.alive or child.id not in self.suspect:
            return
        self.probe_timers.pop(child.id, None)
        if child.alive and not child.link_down:
            self._readmit_child(child)
            return
        if attempt >= self.max_retries:
            self._declare_child_dead(child)
            return
        engine = self.engine
        if engine.completed >= engine.num_tasks:
            return  # job done; let the calendar drain
        delay = self.request_timeout * self.backoff_factor ** attempt
        self.probe_timers[child.id] = engine.env.call_in(
            delay, self._probe_child, child, attempt + 1)

    def _readmit_child(self, child: "NodeAgent") -> None:
        """A suspect (or previously declared-dead) child proved reachable
        again: restore its demand and resume serving it."""
        self.suspect.discard(child.id)
        timer = self.probe_timers.pop(child.id, None)
        if timer is not None:
            timer.cancel()
        if child not in self.children:
            # Declared dead, but the partition healed: re-attach.
            self.children.append(child)
            self.resort_children()
        self.child_requests += child.requested
        child.deferred_requests = 0
        tracer = self.tracer
        if tracer is not None:
            tracer.record(self.env.now, _trace.READMIT,
                          self.id, child.id)
        self.engine._flush_pending_losses(child)
        if self.current_transfer is None:
            self.try_send()
        elif self.interruptible:
            self._maybe_preempt()

    def _declare_child_dead(self, child: "NodeAgent") -> None:
        """Give up on a suspect child: detach its subtree and have the
        engine reclaim every task instance it destroyed."""
        self.suspect.discard(child.id)
        timer = self.probe_timers.pop(child.id, None)
        if timer is not None:
            timer.cancel()
        if child in self.children:
            self.children.remove(child)
            self.resort_children()
        extra = 0
        shelved = self.shelf.pop(child.id, None)
        if shelved is not None:
            # The half-sent task is abandoned along with the child.
            extra += 1
            self.engine.transfers_wasted += 1
            if child.alive:
                # Partitioned-but-alive child: the arrival it still expects
                # will never happen, so its buffer re-requests (deferred
                # until the link heals and it is re-admitted).
                child.incoming -= 1
                child.requested += 1
                child.deferred_requests += 1
        self.engine._flush_pending_losses(child, extra)
        if self.current_transfer is None:
            self.try_send()

    def _start_sweep(self) -> None:
        self.sweep_timer = self.env.call_in(
            self.request_timeout, self._liveness_sweep)

    def _liveness_sweep(self) -> None:
        """Periodic liveness check of the children (the request-timeout
        clock): any unreachable non-suspect child enters suspicion even if
        no send to it happened to fail first."""
        self.sweep_timer = None
        if not self.alive:
            return
        engine = self.engine
        if engine.completed >= engine.num_tasks:
            return  # stop rescheduling so the run can terminate
        for child in self.children:
            if (child.id not in self.suspect
                    and (not child.alive or child.link_down)):
                self._mark_suspect(child)
        self._start_sweep()

    # -------------------------------------------------------- warp support
    def fingerprint_state(self, now) -> tuple:
        """Canonical view of this agent's *dynamic* state for the
        steady-state warp (:mod:`repro.sim.warp`).

        Everything that can influence a future scheduling decision is here,
        expressed relative to ``now`` so two occurrences of the same
        periodic state compare equal; monotone tallies (``computed``,
        ``transfers_started``, …) are deliberately excluded — the warp
        extrapolates them instead.
        """
        transfer = self.current_transfer
        if transfer is None:
            current = None
        else:
            started = transfer.started_at
            current = (transfer.child.id, transfer.remaining,
                       None if started is None else now - started)
        return (
            self.tasks_held, self.requested, self.incoming,
            self.child_requests, self.buffers_total, self.cpu_busy,
            self.growth, self.growth_armed, self.decay, self.decay_pending,
            self.surplus_streak, self.idle_arrival_streak,
            self.deferred_requests, self.departed, self.alive,
            self.link_down, self.max_buffers_seen, self.max_held_seen,
            current,
            tuple(sorted((cid, t.remaining) for cid, t in self.shelf.items())),
            (None if self.fifo_queue is None
             else tuple(a.id for a in self.fifo_queue)),
            tuple(sorted(self.suspect)),
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<NodeAgent {self.id} held={self.tasks_held} "
                f"buffers={self.buffers_total} computed={self.computed}>")
