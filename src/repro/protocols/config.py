"""Protocol configuration: variant, buffers, growth, and priority rules.

The paper's two protocols (§3) plus two non-paper baseline priority rules
used by the ablation benchmarks:

* ``BANDWIDTH_CENTRIC`` — children prioritized by ascending edge cost ``c``
  (the paper's rule; ties broken by node id);
* ``COMPUTE_CENTRIC`` — children prioritized by ascending compute time ``w``
  (the "obvious" rule the bandwidth-centric principle argues against);
* ``FIFO`` — requests served strictly in arrival order (no priorities).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..errors import ProtocolError

if TYPE_CHECKING:  # import only for annotations: telemetry imports protocols
    from ..telemetry.config import TelemetryConfig

__all__ = ["ProtocolVariant", "PriorityRule", "ProtocolConfig"]


class ProtocolVariant(enum.Enum):
    """Communication model of §3.1 / §3.2."""

    #: A started transfer always runs to completion (§3.1).
    NON_INTERRUPTIBLE = "non-IC"
    #: Higher-priority requests preempt in-flight transfers; partial
    #: transfers are shelved and later resumed (§3.2).
    INTERRUPTIBLE = "IC"


class PriorityRule(enum.Enum):
    """How a parent orders its children when delegating tasks."""

    BANDWIDTH_CENTRIC = "bandwidth-centric"
    COMPUTE_CENTRIC = "compute-centric"
    FIFO = "fifo"


@dataclass(frozen=True)
class ProtocolConfig:
    """Full description of one autonomous protocol instance.

    Use the factory classmethods for the paper's named configurations:
    ``ProtocolConfig.interruptible(buffers=3)`` is the headline "IC, FB=3"
    protocol; ``ProtocolConfig.non_interruptible()`` is "non-IC, IB=1" with
    buffer growth.
    """

    variant: ProtocolVariant
    #: Buffers per node at start ("IB" for growing, "FB" for fixed setups).
    initial_buffers: int = 1
    #: Whether nodes may grow extra buffers (§3.1 growth rules 1–3).
    buffer_growth: bool = True
    #: Optional hard cap on buffers per node (``None`` = unbounded growth).
    max_buffers: Optional[int] = None
    #: Child-ordering rule (the paper always uses bandwidth-centric).
    priority_rule: PriorityRule = PriorityRule.BANDWIDTH_CENTRIC
    #: Buffer decay (§2.2: "a correct protocol must allow for buffer growth
    #: and, optimally, buffer decay" — the paper never implements it; we
    #: do).  After ``decay_threshold`` consecutive task completions /
    #: forwards during which the node was never starved, the next freed
    #: buffer is destroyed instead of re-requested, down to the initial
    #: pool size.  Purely local information, like everything else.
    buffer_decay: bool = False
    #: Consecutive surplus (or idle-arrival) events required per shed
    #: buffer.  Must exceed the node's steady-state cycle length in
    #: completions, or decay oscillates against genuinely needed stock.
    decay_threshold: int = 8
    #: Growth damping: after growing a buffer, a node may not grow again
    #: until it has received another task.  The paper states its growth
    #: events were chosen to "discourage over-growth" without spelling out
    #: the damping; read literally (undamped), a node that immediately
    #: forwards every arrival to perpetually-requesting children grows on
    #: every single task it handles — far beyond Table 2's magnitudes.
    #: Capping growth at one per arrival cycle reproduces the paper's
    #: buffer-usage trends across computation-to-communication classes and
    #: its ~20% reached-optimal figure for non-IC.  Set to ``False`` for
    #: the undamped literal reading.
    growth_cooldown: bool = True
    #: Liveness-probe period (virtual time) of the fault-recovery protocol:
    #: parents check each child's reachability this often while a
    #: :class:`~repro.platform.faults.FaultSchedule` is active.  Ignored
    #: (no probes, no timers) when the run has no fault schedule.
    request_timeout: int = 50
    #: Consecutive failed probes before a suspect child is declared dead
    #: and its subtree's lost tasks are reclaimed to the root.
    max_retries: int = 3
    #: Multiplier applied to the probe delay after each failed probe
    #: (exponential backoff; ``1`` probes at a constant period).
    backoff_factor: int = 2
    #: Steady-state warp (:mod:`repro.sim.warp`): once the run's state
    #: fingerprint recurs, whole periods of the periodic steady state are
    #: advanced analytically instead of event by event.  Results are
    #: provably identical (`SimulationResult.fingerprint()` matches the
    #: exact run); long quiescent runs get dramatically faster.  Warp
    #: stands down automatically under mutations, churn, faults, or an
    #: attached tracer, so it is always safe to leave on — it defaults off
    #: only to keep pre-warp calendars bit-identical for auditing.
    warp: bool = False
    #: Telemetry probes (:mod:`repro.telemetry`): ``None`` (the default)
    #: runs with zero instrumentation; a
    #: :class:`~repro.telemetry.config.TelemetryConfig` attaches sampling
    #: probes (and, optionally, the exact event tap) to the run, and the
    #: result gains a :class:`~repro.telemetry.probes.TelemetrySnapshot`.
    #: Sampling is read-only, so fingerprints are unaffected; warp stands
    #: down while probes are attached, like it does for tracing.
    telemetry: Optional["TelemetryConfig"] = None

    def __post_init__(self):
        if self.initial_buffers < 1:
            raise ProtocolError(
                f"initial_buffers must be >= 1, got {self.initial_buffers}")
        if self.max_buffers is not None and self.max_buffers < self.initial_buffers:
            raise ProtocolError(
                f"max_buffers ({self.max_buffers}) below initial_buffers "
                f"({self.initial_buffers})")
        if self.decay_threshold < 1:
            raise ProtocolError(
                f"decay_threshold must be >= 1, got {self.decay_threshold}")
        if self.buffer_decay and not self.buffer_growth:
            raise ProtocolError(
                "buffer_decay without buffer_growth would only shrink the "
                "fixed pool; enable growth or drop decay")
        if self.request_timeout < 1:
            raise ProtocolError(
                f"request_timeout must be >= 1, got {self.request_timeout}")
        if self.max_retries < 1:
            raise ProtocolError(
                f"max_retries must be >= 1, got {self.max_retries}")
        if self.backoff_factor < 1:
            raise ProtocolError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if (self.variant is ProtocolVariant.INTERRUPTIBLE
                and self.priority_rule is PriorityRule.FIFO):
            # FIFO has no priorities, so nothing can ever preempt: the
            # combination silently degrades to non-IC, which would make
            # ablation results misleading. Reject it instead.
            raise ProtocolError(
                "FIFO ordering cannot preempt; use NON_INTERRUPTIBLE with FIFO")

    # ------------------------------------------------------------ factories
    @classmethod
    def interruptible(cls, buffers: int = 3, **kwargs) -> "ProtocolConfig":
        """The paper's "IC, FB=n" protocol (fixed buffers, no growth)."""
        return cls(ProtocolVariant.INTERRUPTIBLE, initial_buffers=buffers,
                   buffer_growth=False, **kwargs)

    @classmethod
    def non_interruptible(cls, initial_buffers: int = 1, *,
                          buffer_growth: bool = True,
                          max_buffers: Optional[int] = None,
                          **kwargs) -> "ProtocolConfig":
        """The paper's "non-IC, IB=n" protocol (growing buffers by default)."""
        return cls(ProtocolVariant.NON_INTERRUPTIBLE,
                   initial_buffers=initial_buffers,
                   buffer_growth=buffer_growth, max_buffers=max_buffers,
                   **kwargs)

    @property
    def label(self) -> str:
        """Short display label matching the paper's legends."""
        if self.variant is ProtocolVariant.INTERRUPTIBLE:
            base = f"IC, FB={self.initial_buffers}"
        elif self.buffer_growth:
            base = f"non-IC, IB={self.initial_buffers}"
        else:
            base = f"non-IC, FB={self.initial_buffers}"
        if self.priority_rule is not PriorityRule.BANDWIDTH_CENTRIC:
            base += f" [{self.priority_rule.value}]"
        return base
