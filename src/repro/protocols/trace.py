"""Protocol event tracing: what every node did, when.

Attach a :class:`Tracer` to a :class:`~repro.protocols.engine.ProtocolEngine`
to record the protocol's micro-behaviour — requests, transfer starts /
preemptions / resumptions / completions, compute activity, buffer growth
and platform mutations.  The tracer filters by event kind (requests are
high-volume) and bounds memory.

:func:`ascii_gantt` renders per-node activity lanes over a time interval,
which makes the §3 protocols *visible*: interruptible runs show long sends
to expensive children sliced up by bursts to cheap ones.

Example::

    engine = ProtocolEngine(tree, config, 100)
    tracer = Tracer()
    engine.tracer = tracer
    engine.run()
    print(ascii_gantt(tracer, num_nodes=tree.num_nodes, t0=0, t1=200))
"""

from __future__ import annotations

from collections import deque
from typing import (Deque, Dict, Iterable, List, NamedTuple, Optional,
                    Sequence, Set, Tuple)

from ..errors import ProtocolError

__all__ = [
    "REQUEST", "GROW", "SEND_START", "SEND_RESUME", "SEND_DONE", "PREEMPT",
    "COMPUTE_START", "COMPUTE_DONE", "MUTATION",
    "CRASH", "LINK_DOWN", "LINK_UP", "SUSPECT", "READMIT", "RECLAIM",
    "REROUTE", "DEGRADE",
    "ALL_KINDS", "TraceEvent", "Tracer", "ascii_gantt",
]

REQUEST = "request"
GROW = "grow"
SEND_START = "send-start"
SEND_RESUME = "send-resume"
SEND_DONE = "send-done"
PREEMPT = "preempt"
COMPUTE_START = "compute-start"
COMPUTE_DONE = "compute-done"
MUTATION = "mutation"
#: A node died abruptly (one event per crashed node).
CRASH = "crash"
#: The edge from ``node``'s parent went down / came back.
LINK_DOWN = "link-down"
LINK_UP = "link-up"
#: ``node`` (the parent) started suspecting ``peer`` (the child).
SUSPECT = "suspect"
#: ``node`` (the parent) re-admitted ``peer`` after a link healed.
READMIT = "readmit"
#: ``peer`` lost tasks were reclaimed into the root's repository after
#: ``node`` (the suspecting parent's child) was declared dead or healed.
RECLAIM = "reclaim"
#: ``node``'s overlay route from its parent changed after a fabric fault
#: (graph runs only; ``peer`` is the failed/repaired physical link id).
REROUTE = "reroute"
#: A link on ``node``'s overlay route was bandwidth-degraded or restored
#: (graph runs only; ``peer`` is the physical link id).
DEGRADE = "degrade"

ALL_KINDS: frozenset = frozenset({
    REQUEST, GROW, SEND_START, SEND_RESUME, SEND_DONE, PREEMPT,
    COMPUTE_START, COMPUTE_DONE, MUTATION,
    CRASH, LINK_DOWN, LINK_UP, SUSPECT, READMIT, RECLAIM,
    REROUTE, DEGRADE,
})


class TraceEvent(NamedTuple):
    """One protocol event.  ``peer`` is the other party where applicable
    (the child of a transfer, the preempting child of a preemption).

    A ``NamedTuple`` rather than a dataclass: tracing inside the event loop
    constructs one of these per recorded event, and tuple allocation is
    several times cheaper."""

    time: int
    kind: str
    node: int
    peer: Optional[int] = None


class Tracer:
    """Bounded, kind-filtered recorder of protocol events.

    Parameters
    ----------
    kinds:
        Event kinds to keep (default: everything except the high-volume
        ``REQUEST`` events).
    limit:
        Maximum events retained; older events are dropped FIFO and counted
        in :attr:`dropped`.  ``None`` keeps everything.
    """

    def __init__(self, kinds: Optional[Iterable[str]] = None,
                 limit: Optional[int] = 100_000):
        if kinds is None:
            self.kinds: Set[str] = set(ALL_KINDS - {REQUEST})
        else:
            self.kinds = set(kinds)
            unknown = self.kinds - ALL_KINDS
            if unknown:
                raise ProtocolError(f"unknown trace kinds: {sorted(unknown)}")
        self.limit = limit
        #: Event storage.  A ``deque(maxlen=limit)`` so FIFO eviction under
        #: a full buffer is O(1) — ``del list[0]`` made long bounded traces
        #: quadratic.  Supports ``len``, iteration and integer indexing like
        #: the list it replaced (slicing needs ``list(tracer.events)``).
        self.events: Deque[TraceEvent] = deque(maxlen=limit)
        self.dropped = 0

    def record(self, time, kind: str, node: int,
               peer: Optional[int] = None) -> None:
        """Store one event (no-op for filtered kinds)."""
        if kind not in self.kinds:
            return
        events = self.events
        if events.maxlen is not None and len(events) == events.maxlen:
            self.dropped += 1  # append below evicts the oldest event
        events.append(TraceEvent(time, kind, node, peer))

    # ------------------------------------------------------------ queries
    def __len__(self) -> int:
        return len(self.events)

    def for_node(self, node: int) -> List[TraceEvent]:
        """Events where ``node`` is the primary actor."""
        return [e for e in self.events if e.node == node]

    def count(self, kind: str) -> int:
        """Number of recorded events of ``kind``."""
        return sum(1 for e in self.events if e.kind == kind)

    def intervals(self, node: int, start_kinds: Sequence[str],
                  end_kinds: Sequence[str]) -> List[Tuple[int, int]]:
        """Pair up start/end events of one node into busy intervals.

        An unclosed interval at the end of the trace is dropped (the run
        normally closes everything; truncated traces may not).
        """
        out: List[Tuple[int, int]] = []
        open_at: Optional[int] = None
        for event in self.events:
            if event.node != node:
                continue
            if event.kind in start_kinds and open_at is None:
                open_at = event.time
            elif event.kind in end_kinds and open_at is not None:
                out.append((open_at, event.time))
                open_at = None
        return out

    def compute_intervals(self, node: int) -> List[Tuple[int, int]]:
        """(start, end) of each computation at ``node``."""
        return self.intervals(node, (COMPUTE_START,), (COMPUTE_DONE,))

    def send_intervals(self, node: int) -> List[Tuple[int, int]]:
        """(start, end) of each *transmission leg* from ``node`` (a
        preempted transfer contributes one leg per resumption)."""
        return self.intervals(node, (SEND_START, SEND_RESUME),
                              (SEND_DONE, PREEMPT))


def ascii_gantt(tracer: Tracer, num_nodes: int, t0: int, t1: int,
                width: int = 80, nodes: Optional[Sequence[int]] = None) -> str:
    """Render per-node activity lanes between ``t0`` and ``t1``.

    Legend: ``C`` computing, ``S`` sending, ``B`` both, ``.`` idle.
    Each column covers ``(t1 - t0) / width`` timesteps; a bin is marked
    busy if any part of it overlaps a busy interval.
    """
    if t1 <= t0:
        raise ProtocolError(f"empty window [{t0}, {t1})")
    if width < 1:
        raise ProtocolError("width must be >= 1")
    if nodes is None:
        nodes = range(num_nodes)

    span = t1 - t0

    def paint(intervals, lane):
        for start, end in intervals:
            if end <= t0 or start >= t1:
                continue
            lo = max(0, (start - t0) * width // span)
            hi = min(width - 1, max(lo, ((end - t0) * width - 1) // span))
            for i in range(lo, hi + 1):
                lane[i] = True

    lines = [f"t={t0} .. {t1}  ({span} steps, {width} cols)"]
    for node in nodes:
        computing = [False] * width
        sending = [False] * width
        paint(tracer.compute_intervals(node), computing)
        paint(tracer.send_intervals(node), sending)
        cells = []
        for c_busy, s_busy in zip(computing, sending):
            if c_busy and s_busy:
                cells.append("B")
            elif c_busy:
                cells.append("C")
            elif s_busy:
                cells.append("S")
            else:
                cells.append(".")
        lines.append(f"P{node:<4}|" + "".join(cells) + "|")
    return "\n".join(lines)
