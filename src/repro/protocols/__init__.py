"""Autonomous bandwidth-centric scheduling protocols (§3 of the paper).

High-level entry point::

    from repro.protocols import ProtocolConfig, simulate

    result = simulate(tree, ProtocolConfig.interruptible(buffers=3), 10_000)
    print(result.makespan, result.max_buffers)
"""

from .config import PriorityRule, ProtocolConfig, ProtocolVariant
from .agents import NodeAgent, Transfer
from .engine import ProtocolEngine, simulate
from .graph_engine import (GraphFaultDriver, GraphNodeAgent,
                           GraphProtocolEngine, simulate_graph)
from .result import SimulationResult
from .topologies import (
    chain_relay_config,
    leaf_spine_overlay,
    reassign_orphans,
    star_service_order,
    topology_overlay,
)
from .trace import Tracer, TraceEvent, ascii_gantt
from . import trace

__all__ = [
    "ProtocolConfig",
    "ProtocolVariant",
    "PriorityRule",
    "ProtocolEngine",
    "GraphProtocolEngine",
    "GraphFaultDriver",
    "NodeAgent",
    "GraphNodeAgent",
    "Transfer",
    "SimulationResult",
    "simulate",
    "simulate_graph",
    "star_service_order",
    "chain_relay_config",
    "leaf_spine_overlay",
    "topology_overlay",
    "reassign_orphans",
    "Tracer",
    "TraceEvent",
    "ascii_gantt",
    "trace",
]
