"""Autonomous bandwidth-centric scheduling protocols (§3 of the paper).

High-level entry point::

    from repro.protocols import ProtocolConfig, simulate

    result = simulate(tree, ProtocolConfig.interruptible(buffers=3), 10_000)
    print(result.makespan, result.max_buffers)
"""

from .config import PriorityRule, ProtocolConfig, ProtocolVariant
from .agents import NodeAgent, Transfer
from .engine import ProtocolEngine, simulate
from .result import SimulationResult
from .trace import Tracer, TraceEvent, ascii_gantt
from . import trace

__all__ = [
    "ProtocolConfig",
    "ProtocolVariant",
    "PriorityRule",
    "ProtocolEngine",
    "NodeAgent",
    "Transfer",
    "SimulationResult",
    "simulate",
    "Tracer",
    "TraceEvent",
    "ascii_gantt",
    "trace",
]
