"""Protocol engine for graph platforms: overlays plus link contention.

The autonomous protocols are defined on trees, so a graph run has two
halves:

* an **overlay** — a spanning tree over the graph's *hosts*
  (:class:`~repro.platform.graph.Overlay`), on which the unmodified
  protocol logic runs (priorities, buffers, growth, preemption: all of
  :class:`~repro.protocols.agents.NodeAgent`);
* a **fluid transfer model** — each overlay send is a flow of volume one
  task over the physical route behind the overlay edge, and concurrent
  flows sharing a link split its bandwidth per the graph's contention
  mode (:class:`~repro.platform.contention.LinkContention`).

:class:`GraphNodeAgent` overrides exactly the three scheduling touch
points where a tree agent talks to the calendar (start a leg, finish a
leg, preempt a leg) and routes them through the contention manager; the
manager reports back only the flows whose rate actually changed, and only
those timers are rescheduled.  On a tree expressed as a graph every link
carries at most one flow (the single send port serializes a parent's
transfers), so no rate ever changes, no timer is ever rescheduled, and
the event calendar — hence :meth:`SimulationResult.fingerprint` — is
bit-identical to the tree engine's.  That equivalence is the correctness
anchor for everything else this engine does, and is enforced by
``tests/protocols/test_graph_equivalence.py`` plus the CI
topology-equivalence job.

Dynamic platform schedules (mutations, churn, faults) and the
steady-state warp are tree-engine features; the graph engine rejects the
former and stands the warp down.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Set, Union

from ..errors import ProtocolError
from ..platform.contention import LinkContention, _exact
from ..platform.faults import (CrashEvent, DegradeEvent, EdgeFailureEvent,
                               EdgeRepairEvent, FaultSchedule,
                               LinkFailureEvent, SwitchCrashEvent)
from ..platform.graph import Overlay, PlatformGraph
from ..platform.tree import PlatformTree
from ..sim.warp import REASON_GRAPH_FAULTS
from . import trace as _trace
from .agents import NodeAgent, Transfer
from .config import PriorityRule, ProtocolConfig
from .engine import ProtocolEngine
from .result import SimulationResult
from .topologies import reassign_orphans

__all__ = ["GraphNodeAgent", "GraphProtocolEngine", "GraphFaultDriver",
           "simulate_graph"]


def _leg_duration(volume, rate):
    """Time to drain ``volume`` at ``rate``, exactly (never float)."""
    if not isinstance(volume, Fraction):
        volume = Fraction(volume)
    return _exact(volume / rate)


class GraphNodeAgent(NodeAgent):
    """A protocol agent whose transfers are fluid flows on a graph.

    ``Transfer.remaining`` holds the flow's remaining *volume* in tasks
    (a full send starts at 1) instead of the tree agent's remaining
    *time*; with one flow per link the two are related by the constant
    link rate, which is why every inherited decision rule (including the
    preemption let-it-finish test) carries over unchanged.
    """

    __slots__ = ("route",)

    def _new_transfer(self, child: "GraphNodeAgent") -> Transfer:
        return Transfer(child, 1)  # volume: one task

    def _begin_leg(self, transfer: Transfer) -> None:
        engine = self.engine
        self.current_transfer = transfer
        updates = engine.contention.start(
            transfer, transfer.child.route, transfer.remaining, self.env.now,
            priority=engine._flow_priority)
        engine._apply_rate_updates(updates)

    def _send_done(self, transfer: Transfer) -> None:
        transfer.timer = None
        updates = self.engine.contention.finish(transfer, self.env.now)
        # Survivors speed up before the arrival cascade can start new
        # flows, so the cascade allocates against settled state.
        self.engine._apply_rate_updates(updates)
        super()._send_done(transfer)

    def _maybe_preempt(self) -> None:
        current = self.current_transfer
        if current is None:
            return
        best = self._choose_next()
        if best is None or best is current.child:
            return
        if best.prio_key >= current.child.prio_key:
            return
        engine = self.engine
        env = self.env
        if engine.contention.remaining_volume(current, env.now) <= 0:
            # The flow's completion timer is due this very timestep (it
            # just has a later calendar sequence number): let it finish.
            return
        remaining, updates = engine.contention.pause(current, env.now)
        if current.timer is not None:  # a starved flow stalls timer-less
            current.timer.cancel()
        current.remaining = remaining
        current.started_at = None
        current.timer = None
        self.shelf[current.child.id] = current
        self.current_transfer = None
        self.preemptions += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.record(env.now, _trace.PREEMPT, self.id, current.child.id)
        engine._apply_rate_updates(updates)
        self.try_send()


class GraphFaultDriver:
    """Consumes a :class:`FaultSchedule` against a routed graph run.

    The tree engine's fault path is "a node or its parent link"; on a
    graph a fault is *routed*: one failed fabric link kills every flow
    crossing it (in any lane of a multi-app run), shortest paths
    recompute around it, overlay edges re-route, and hosts with no
    remaining route to the repository *park* until the partition heals.
    The driver owns the shared physical state (the engine's private
    graph copy and the contention manager) and drives every registered
    lane — one for a single-app run, one per application under
    :class:`~repro.apps.engine.MultiAppEngine` — through the same
    deterministic recovery sequence:

    1. mutate the graph (link up/down, node crash, degrade factor);
    2. kill exactly the flows crossing a failed link and book each loss
       (the task instance pools under the node whose unreachability the
       survivors will detect; the receiving agent re-requests);
    3. host crash only: destroy the victim agent in every lane, then
       re-parent its orphaned overlay children
       (:func:`~repro.protocols.topologies.reassign_orphans` — rack-head
       re-election on leaf-spine fabrics);
    4. refresh every overlay route in two phases — first recompute all
       routes/costs and park newly unreachable hosts, then readmit or
       re-announce healed ones — so no transfer ever starts on a stale
       route;
    5. kick every alive agent in deterministic (lane, id) order so the
       protocol reacts autonomously (suspect/probe/backoff against the
       next hop, pending-loss reclamation into the repository);
    6. optionally run the per-lane task-conservation checker.

    Recovery itself is the *unmodified* autonomous protocol: the driver
    only injects the physical facts; detection (suspicion, probing with
    exponential backoff, declaring death, re-admission) happens in the
    agents, exactly as on trees.
    """

    def __init__(self, graph: PlatformGraph, overlay: Overlay,
                 schedule: FaultSchedule, contention: LinkContention,
                 check_invariants: bool = False):
        self.graph = graph
        self.overlay = overlay
        self.schedule = schedule
        self.contention = contention
        self.check_invariants = check_invariants
        self.lanes: List["GraphProtocolEngine"] = []
        self.env = None
        self._armed = False
        #: graph host id -> overlay node id (= agent index in every lane).
        self._oid: Dict[int, int] = {h: i
                                     for i, h in enumerate(overlay.hosts)}

    def register_lane(self, lane: "GraphProtocolEngine") -> None:
        self.lanes.append(lane)

    # ------------------------------------------------------------- arming
    def _host_access_link(self, host: int) -> int:
        """Physical link behind a tree-addressed link event's target
        (validated single-hop by ``FaultSchedule.validate_graph``)."""
        return self.overlay.routes[self._oid[host]][0]

    def arm(self, env) -> None:
        """Register every event on the calendar (idempotent: the first
        lane to arm — or the multi-app coordinator — wins)."""
        if self._armed:
            return
        self._armed = True
        self.env = env
        for event in self.schedule:
            if isinstance(event, EdgeFailureEvent):
                env.call_at(event.at_time, self._on_edge_failure, event.link)
            elif isinstance(event, EdgeRepairEvent):
                env.call_at(event.at_time, self._on_edge_repair, event.link)
            elif isinstance(event, DegradeEvent):
                env.call_at(event.at_time, self._on_degrade, event)
                env.call_at(event.ends_at, self._on_degrade_end, event)
            elif isinstance(event, SwitchCrashEvent):
                env.call_at(event.at_time, self._on_switch_crash, event.node)
            elif isinstance(event, CrashEvent):
                env.call_at(event.at_time, self._on_host_crash, event.node)
            elif isinstance(event, LinkFailureEvent):
                env.call_at(event.at_time, self._on_edge_failure,
                            self._host_access_link(event.node))
            else:  # LinkRepairEvent
                env.call_at(event.at_time, self._on_edge_repair,
                            self._host_access_link(event.node))

    # ----------------------------------------------------------- handlers
    def _on_edge_failure(self, link: int) -> None:
        self.graph.fail_link(link)
        self._kill_crossing([link])
        self._refresh_routes(peer=link)
        self._kick()
        self._check()

    def _on_edge_repair(self, link: int) -> None:
        self.graph.repair_link(link)
        # In-flight flows keep the (still valid) route they started on;
        # only new legs — and unparked hosts — use the improved paths.
        self._refresh_routes(peer=link)
        self._kick()
        self._check()

    def _on_switch_crash(self, node: int) -> None:
        downed = self.graph.crash_node(node)
        self._kill_crossing(downed)
        self._refresh_routes()
        self._kick()
        self._check()

    def _on_degrade(self, event: DegradeEvent) -> None:
        self.graph.set_degrade(event.link, event.factor)
        self._resettle(event.link)

    def _on_degrade_end(self, event: DegradeEvent) -> None:
        self.graph.set_degrade(event.link, None)
        self._resettle(event.link)

    def _on_host_crash(self, host: int) -> None:
        now = self.env.now
        oid = self._oid[host]
        victims = [lane.nodes[oid] for lane in self.lanes
                   if lane.nodes[oid].alive]
        downed = self.graph.crash_node(host)
        self._kill_crossing(downed, dying=set(victims))
        for victim in victims:
            lane = victim.engine
            parent = victim.parent
            pending = 0
            if parent is not None and parent.alive:
                if parent.shelf.pop(victim.id, None) is not None:
                    # The parent's half-sent task dies with the victim.
                    pending += 1
                    lane.transfers_wasted += 1
                if victim in parent.children:
                    parent._mark_suspect(victim)
            # The victim's own shelved half-sends: their receivers
            # survive and re-request (announced — the request transfers
            # to the new parent at re-parenting below).
            for cid in sorted(victim.shelf):
                child = victim.shelf[cid].child
                pending += 1
                lane.transfers_wasted += 1
                child.incoming -= 1
                child.requested += 1
            victim.shelf.clear()
            pending += victim._crash()
            pending += lane._pending_lost.pop(victim.id, 0)
            lane.crashed_node_ids.append(victim.id)
            lane.crash_times.append(now)
            if lane._recorder is not None:
                lane._recorder.record(now, _trace.CRASH, victim.id)
            lane._pending_lost[victim.id] = pending
            # Unlike a tree crash, the victim's overlay children survive:
            # re-parent them (leaf-spine racks re-elect a head).
            orphans = sorted(victim.children, key=lambda a: a.id)
            victim.children = []
            if orphans:
                hosts = self.overlay.hosts
                grandparent = (hosts[parent.id] if parent is not None
                               else self.graph.root)
                mapping = reassign_orphans(
                    self.graph, host, [hosts[o.id] for o in orphans],
                    grandparent)
                gained: List[NodeAgent] = []
                for orphan in orphans:
                    new_parent = lane.nodes[self._oid[mapping[hosts[orphan.id]]]]
                    orphan.parent = new_parent
                    new_parent.children.append(orphan)
                    new_parent.child_requests += (orphan.requested
                                                  - orphan.deferred_requests)
                    if new_parent not in gained:
                        gained.append(new_parent)
                for new_parent in gained:
                    new_parent.resort_children()
            if parent is None or not parent.alive \
                    or victim not in parent.children:
                # Detached before death (e.g. declared dead while
                # parked): nobody probes it, surface the loss now.
                lane._flush_pending_losses(victim)
        self._refresh_routes()
        self._kick()
        self._check()

    # ------------------------------------------------------------ plumbing
    def _apply_updates(self, updates) -> None:
        if updates:
            self.lanes[0]._apply_rate_updates(updates)

    def _kill_crossing(self, links, dying: Set[NodeAgent] = frozenset()):
        """Kill every flow crossing ``links`` and book each lost task.

        A killed flow's task instance pools as a pending loss under the
        node whose unreachability the surviving agents will detect: the
        receiving child for an ordinary outage (its parent suspects it —
        the next-hop suspicion of the tree protocol), or the dying host
        for a crash (its parent's probes detect the death).
        """
        now = self.env.now
        killed, updates = self.contention.kill_crossing(links, now)
        for transfer in killed:
            child = transfer.child
            sender = child.parent
            lane = child.engine
            if transfer.timer is not None:
                transfer.timer.cancel()
                transfer.timer = None
            # Active flows always sit on their sender's port (a child is
            # re-parented only after its old parent's flows were killed).
            sender.current_transfer = None
            lane.transfers_wasted += 1
            if child in dying:
                # Flow *into* a crashing host: the instance dies with it.
                lane._pending_lost[child.id] = (
                    lane._pending_lost.get(child.id, 0) + 1)
            elif sender in dying:
                # Flow *out of* a crashing host: pooled under the victim;
                # the receiver re-requests, announced (it re-parents).
                lane._pending_lost[sender.id] = (
                    lane._pending_lost.get(sender.id, 0) + 1)
                child.incoming -= 1
                child.requested += 1
            else:
                # Ordinary routed outage: the receiver re-requests but the
                # request stays deferred until readmission re-counts it.
                child.incoming -= 1
                child.requested += 1
                child.deferred_requests += 1
                lane._pending_lost[child.id] = (
                    lane._pending_lost.get(child.id, 0) + 1)
                sender._mark_suspect(child)
        self._apply_updates(updates)
        return killed

    def _refresh_routes(self, peer: Optional[int] = None) -> None:
        """Two-phase overlay route refresh against the mutated graph.

        Phase A recomputes every overlay edge's route and cost, parks
        hosts with no route to their parent (deterministic partition
        detection), and re-sorts schedules whose priorities changed;
        phase B readmits/re-announces unparked hosts.  Splitting the
        phases guarantees no readmission-triggered send can start on a
        route that is still stale.
        """
        graph = self.graph
        hosts = self.overlay.hosts
        now = self.env.now
        unparked: List[NodeAgent] = []
        resort: List[NodeAgent] = []
        for lane in self.lanes:
            for agent in lane.nodes:
                if agent.is_root or not agent.alive:
                    continue
                parent = agent.parent
                if parent is None or not parent.alive:
                    continue
                route = graph.route_or_none(hosts[parent.id], hosts[agent.id])
                if route is None:
                    if not agent.link_down:
                        agent.link_down = True
                        if lane._recorder is not None:
                            lane._recorder.record(now, _trace.LINK_DOWN,
                                                  agent.id)
                    continue
                if agent.link_down:
                    unparked.append(agent)
                if route != agent.route:
                    agent.route = route
                    cost = graph.route_cost(route)
                    if cost != agent.c:
                        agent.c = cost
                        agent._refresh_prio_key()
                        if parent not in resort:
                            resort.append(parent)
                    if lane._recorder is not None:
                        lane._recorder.record(now, _trace.REROUTE,
                                              agent.id, peer)
        for parent in resort:
            parent.resort_children()
        for agent in unparked:
            agent.link_down = False
            lane = agent.engine
            if lane._recorder is not None:
                lane._recorder.record(now, _trace.LINK_UP, agent.id)
            parent = agent.parent
            if parent is not None and parent.alive:
                if agent.id in parent.suspect or agent not in parent.children:
                    parent._readmit_child(agent)
                elif agent.deferred_requests:
                    parent.child_requests += agent.deferred_requests
                    agent.deferred_requests = 0
            lane._flush_pending_losses(agent)

    def _resettle(self, link: int) -> None:
        """Re-settle flows after a capacity change (degrade/restore)."""
        updates = self.contention.set_capacity(
            link, self.graph.capacity(link), self.env.now)
        self._apply_updates(updates)
        for lane in self.lanes:
            if lane._recorder is None:
                continue
            for agent in lane.nodes:
                if (not agent.is_root and agent.alive
                        and link in agent.route):
                    lane._recorder.record(self.env.now, _trace.DEGRADE,
                                          agent.id, link)
        self._check()

    def _kick(self) -> None:
        """Deterministic full scheduling pass: every alive agent, in
        (lane, overlay id) order, reconsiders its port."""
        for lane in self.lanes:
            for agent in lane.nodes:
                if not agent.alive:
                    continue
                if agent.current_transfer is None:
                    agent.try_send()
                elif agent.interruptible:
                    agent._maybe_preempt()

    def _check(self) -> None:
        if self.check_invariants:
            for lane in self.lanes:
                lane._check_conservation()


class GraphProtocolEngine(ProtocolEngine):
    """One simulation of ``num_tasks`` tasks on a :class:`PlatformGraph`.

    Accepts a graph (or a plain tree, embedded via
    :meth:`PlatformGraph.from_tree`) and an optional overlay; without one
    the graph's default relay overlay is used.  The protocol runs on the
    overlay tree — result fields indexed "per node" are per *overlay*
    node, and :attr:`overlay` maps them back to graph hosts (telemetry's
    per-node lanes inherit the same dense overlay ids).
    """

    _agent_class = GraphNodeAgent
    _supports_warp = False
    #: Priority tag attached to every flow this engine starts.  ``None``
    #: under the single-app allocators; the multi-app engine sets a per
    #: application ``(priority, app index)`` tuple for the ``selfish``
    #: allocator's strict-priority filling.
    _flow_priority = None

    def __init__(self, platform: Union[PlatformGraph, PlatformTree],
                 config: ProtocolConfig, num_tasks: int,
                 overlay: Optional[Overlay] = None,
                 record_buffer_timeline: bool = False,
                 record_completion_times: bool = True,
                 contention: Optional[LinkContention] = None,
                 faults: Optional[FaultSchedule] = None,
                 check_invariants: bool = False,
                 fault_driver: Optional[GraphFaultDriver] = None,
                 arrivals=None, admission=None):
        if isinstance(platform, PlatformTree):
            platform = PlatformGraph.from_tree(platform)
        if arrivals is not None and (faults or fault_driver is not None):
            # The base engine's guard only sees its own ``faults``
            # schedule; graph faults arrive via the driver too.
            raise ProtocolError(
                "open-loop arrivals cannot be combined with "
                "mutation/churn/fault schedules")
        if fault_driver is not None:
            # Multi-app: the coordinator's driver already owns a private
            # graph copy shared by every lane.
            platform = fault_driver.graph
            faults = None
        elif faults:
            if config.priority_rule is PriorityRule.FIFO:
                raise ProtocolError(
                    "faults with FIFO ordering are unsupported (reconciling "
                    "a failed node's queued requests is ill-defined)")
            # Fault events mutate link state in place; the caller's graph
            # must not see them.
            platform = platform.copy()
        self.graph = platform
        self.overlay = overlay if overlay is not None else platform.overlay()
        # A caller-supplied manager lets several engines (one per
        # application) contend for the same physical links.
        self.contention = (contention if contention is not None
                           else LinkContention(platform.link_capacities(),
                                               platform.contention))
        if faults:
            faults.validate_graph(platform, self.overlay)
            fault_driver = GraphFaultDriver(
                platform, self.overlay, faults, self.contention,
                check_invariants=check_invariants)
        super().__init__(self.overlay.tree, config, num_tasks,
                         record_buffer_timeline=record_buffer_timeline,
                         record_completion_times=record_completion_times,
                         check_invariants=check_invariants,
                         arrivals=arrivals, admission=admission)
        routes = self.overlay.routes
        for agent in self.nodes:
            agent.route = routes[agent.id]
        self._fault_driver = fault_driver
        if fault_driver is not None:
            fault_driver.register_lane(self)
            self._warp_stand_down = REASON_GRAPH_FAULTS
            for agent in self.nodes:
                agent.enable_fault_recovery()

    def _arm(self) -> None:
        driver = self._fault_driver
        if driver is not None:
            # Fault events register before the t=0 demand announcements,
            # mirroring the tree engine's schedule-then-phases order.
            driver.arm(self.env)
        super()._arm()
        if driver is not None:
            # Liveness sweeps (base class arms them only for its own tree
            # fault path, which is inert here).
            for agent in self.nodes:
                agent._start_sweep()

    def _apply_rate_updates(self, updates) -> None:
        """Reschedule the completion timer of every rate-changed flow.

        ``updates`` is the contention manager's ``[(transfer, rate,
        remaining volume), ...]``; the sender of a flow is always the
        overlay parent of its destination, which owns the timer.
        """
        env = self.env
        for transfer, rate, volume in updates:
            if transfer.timer is not None:
                transfer.timer.cancel()
            transfer.remaining = volume
            transfer.started_at = env.now
            if volume > 0 and rate == 0:
                # Starved outright (the selfish allocator gives strictly
                # higher-priority classes everything): the flow stalls
                # with no timer; the reallocation that frees capacity
                # reports it again and reschedules it here.
                transfer.timer = None
                continue
            sender = transfer.child.parent
            duration = _leg_duration(volume, rate) if volume > 0 else 0
            transfer.timer = env.call_in(duration, sender._send_done, transfer)


def simulate_graph(platform: Union[PlatformGraph, PlatformTree],
                   config: ProtocolConfig, num_tasks: int, *,
                   overlay: Optional[Overlay] = None,
                   record_buffer_timeline: bool = False,
                   record_completion_times: bool = True,
                   faults: Optional[FaultSchedule] = None,
                   check_invariants: bool = False,
                   arrivals=None, admission=None) -> SimulationResult:
    """Run one protocol simulation on a graph platform.

    With no explicit ``overlay``, the platform's generator shape picks its
    protocol adaptation via
    :func:`repro.protocols.topologies.topology_overlay` (e.g. per-leaf
    head election on leaf-spine fabrics); pass an overlay to override.
    A ``faults`` schedule may address fabric links directly
    (:class:`~repro.platform.faults.EdgeFailureEvent` and friends) or use
    the tree-addressed events for single-hop overlay edges.
    """
    if overlay is None:
        from .topologies import topology_overlay
        if isinstance(platform, PlatformGraph):
            overlay = topology_overlay(platform)
    engine = GraphProtocolEngine(
        platform, config, num_tasks, overlay=overlay,
        record_buffer_timeline=record_buffer_timeline,
        record_completion_times=record_completion_times,
        faults=faults, check_invariants=check_invariants,
        arrivals=arrivals, admission=admission)
    return engine.run()
