"""Protocol engine for graph platforms: overlays plus link contention.

The autonomous protocols are defined on trees, so a graph run has two
halves:

* an **overlay** — a spanning tree over the graph's *hosts*
  (:class:`~repro.platform.graph.Overlay`), on which the unmodified
  protocol logic runs (priorities, buffers, growth, preemption: all of
  :class:`~repro.protocols.agents.NodeAgent`);
* a **fluid transfer model** — each overlay send is a flow of volume one
  task over the physical route behind the overlay edge, and concurrent
  flows sharing a link split its bandwidth per the graph's contention
  mode (:class:`~repro.platform.contention.LinkContention`).

:class:`GraphNodeAgent` overrides exactly the three scheduling touch
points where a tree agent talks to the calendar (start a leg, finish a
leg, preempt a leg) and routes them through the contention manager; the
manager reports back only the flows whose rate actually changed, and only
those timers are rescheduled.  On a tree expressed as a graph every link
carries at most one flow (the single send port serializes a parent's
transfers), so no rate ever changes, no timer is ever rescheduled, and
the event calendar — hence :meth:`SimulationResult.fingerprint` — is
bit-identical to the tree engine's.  That equivalence is the correctness
anchor for everything else this engine does, and is enforced by
``tests/protocols/test_graph_equivalence.py`` plus the CI
topology-equivalence job.

Dynamic platform schedules (mutations, churn, faults) and the
steady-state warp are tree-engine features; the graph engine rejects the
former and stands the warp down.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Union

from ..errors import ProtocolError
from ..platform.contention import LinkContention, _exact
from ..platform.graph import Overlay, PlatformGraph
from ..platform.tree import PlatformTree
from . import trace as _trace
from .agents import NodeAgent, Transfer
from .config import ProtocolConfig
from .engine import ProtocolEngine
from .result import SimulationResult

__all__ = ["GraphNodeAgent", "GraphProtocolEngine", "simulate_graph"]


def _leg_duration(volume, rate):
    """Time to drain ``volume`` at ``rate``, exactly (never float)."""
    if not isinstance(volume, Fraction):
        volume = Fraction(volume)
    return _exact(volume / rate)


class GraphNodeAgent(NodeAgent):
    """A protocol agent whose transfers are fluid flows on a graph.

    ``Transfer.remaining`` holds the flow's remaining *volume* in tasks
    (a full send starts at 1) instead of the tree agent's remaining
    *time*; with one flow per link the two are related by the constant
    link rate, which is why every inherited decision rule (including the
    preemption let-it-finish test) carries over unchanged.
    """

    __slots__ = ("route",)

    def _new_transfer(self, child: "GraphNodeAgent") -> Transfer:
        return Transfer(child, 1)  # volume: one task

    def _begin_leg(self, transfer: Transfer) -> None:
        engine = self.engine
        self.current_transfer = transfer
        updates = engine.contention.start(
            transfer, transfer.child.route, transfer.remaining, self.env.now,
            priority=engine._flow_priority)
        engine._apply_rate_updates(updates)

    def _send_done(self, transfer: Transfer) -> None:
        transfer.timer = None
        updates = self.engine.contention.finish(transfer, self.env.now)
        # Survivors speed up before the arrival cascade can start new
        # flows, so the cascade allocates against settled state.
        self.engine._apply_rate_updates(updates)
        super()._send_done(transfer)

    def _maybe_preempt(self) -> None:
        current = self.current_transfer
        if current is None:
            return
        best = self._choose_next()
        if best is None or best is current.child:
            return
        if best.prio_key >= current.child.prio_key:
            return
        engine = self.engine
        env = self.env
        if engine.contention.remaining_volume(current, env.now) <= 0:
            # The flow's completion timer is due this very timestep (it
            # just has a later calendar sequence number): let it finish.
            return
        remaining, updates = engine.contention.pause(current, env.now)
        if current.timer is not None:  # a starved flow stalls timer-less
            current.timer.cancel()
        current.remaining = remaining
        current.started_at = None
        current.timer = None
        self.shelf[current.child.id] = current
        self.current_transfer = None
        self.preemptions += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.record(env.now, _trace.PREEMPT, self.id, current.child.id)
        engine._apply_rate_updates(updates)
        self.try_send()


class GraphProtocolEngine(ProtocolEngine):
    """One simulation of ``num_tasks`` tasks on a :class:`PlatformGraph`.

    Accepts a graph (or a plain tree, embedded via
    :meth:`PlatformGraph.from_tree`) and an optional overlay; without one
    the graph's default relay overlay is used.  The protocol runs on the
    overlay tree — result fields indexed "per node" are per *overlay*
    node, and :attr:`overlay` maps them back to graph hosts (telemetry's
    per-node lanes inherit the same dense overlay ids).
    """

    _agent_class = GraphNodeAgent
    _supports_warp = False
    #: Priority tag attached to every flow this engine starts.  ``None``
    #: under the single-app allocators; the multi-app engine sets a per
    #: application ``(priority, app index)`` tuple for the ``selfish``
    #: allocator's strict-priority filling.
    _flow_priority = None

    def __init__(self, platform: Union[PlatformGraph, PlatformTree],
                 config: ProtocolConfig, num_tasks: int,
                 overlay: Optional[Overlay] = None,
                 record_buffer_timeline: bool = False,
                 record_completion_times: bool = True,
                 contention: Optional[LinkContention] = None):
        if isinstance(platform, PlatformTree):
            platform = PlatformGraph.from_tree(platform)
        self.graph = platform
        self.overlay = overlay if overlay is not None else platform.overlay()
        # A caller-supplied manager lets several engines (one per
        # application) contend for the same physical links.
        self.contention = (contention if contention is not None
                           else LinkContention(platform.link_capacities(),
                                               platform.contention))
        super().__init__(self.overlay.tree, config, num_tasks,
                         record_buffer_timeline=record_buffer_timeline,
                         record_completion_times=record_completion_times)
        routes = self.overlay.routes
        for agent in self.nodes:
            agent.route = routes[agent.id]

    def _apply_rate_updates(self, updates) -> None:
        """Reschedule the completion timer of every rate-changed flow.

        ``updates`` is the contention manager's ``[(transfer, rate,
        remaining volume), ...]``; the sender of a flow is always the
        overlay parent of its destination, which owns the timer.
        """
        env = self.env
        for transfer, rate, volume in updates:
            if transfer.timer is not None:
                transfer.timer.cancel()
            transfer.remaining = volume
            transfer.started_at = env.now
            if volume > 0 and rate == 0:
                # Starved outright (the selfish allocator gives strictly
                # higher-priority classes everything): the flow stalls
                # with no timer; the reallocation that frees capacity
                # reports it again and reschedules it here.
                transfer.timer = None
                continue
            sender = transfer.child.parent
            duration = _leg_duration(volume, rate) if volume > 0 else 0
            transfer.timer = env.call_in(duration, sender._send_done, transfer)


def simulate_graph(platform: Union[PlatformGraph, PlatformTree],
                   config: ProtocolConfig, num_tasks: int, *,
                   overlay: Optional[Overlay] = None,
                   record_buffer_timeline: bool = False,
                   record_completion_times: bool = True) -> SimulationResult:
    """Run one protocol simulation on a graph platform.

    With no explicit ``overlay``, the platform's generator shape picks its
    protocol adaptation via
    :func:`repro.protocols.topologies.topology_overlay` (e.g. per-leaf
    head election on leaf-spine fabrics); pass an overlay to override.
    """
    if overlay is None:
        from .topologies import topology_overlay
        if isinstance(platform, PlatformGraph):
            overlay = topology_overlay(platform)
    engine = GraphProtocolEngine(
        platform, config, num_tasks, overlay=overlay,
        record_buffer_timeline=record_buffer_timeline,
        record_completion_times=record_completion_times)
    return engine.run()
