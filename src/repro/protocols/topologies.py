"""Per-topology protocol adaptations for graph platforms.

The bandwidth-centric protocol is shape-agnostic — any overlay tree works
— but each generator shape has a natural adaptation:

* **star** — the overlay is a one-level fork, so the bandwidth-centric
  port schedule *degenerates to serving workers in ascending link-cost
  order* (:func:`star_service_order` exposes that order; it is exactly
  the sorted-by-``c`` list of the one-port star-scheduling literature);
* **chain** — the relay overlay makes every intermediate host a
  store-and-forward agent; :func:`chain_relay_config` arms such relays
  with buffer growth so a fast deep segment is not starved by a slow
  upstream hop (the paper's §3.1 growth rules, which exist for exactly
  this deep-path pipelining);
* **leaf-spine** — :func:`leaf_spine_overlay` elects a *head* host per
  leaf (lowest id in the rack) to aggregate the rack's traffic: the
  repository feeds heads, heads feed rack-mates, and cross-fabric flows
  are one per rack instead of one per host, which is what keeps the
  shared spine links from drowning in max-min reallocation churn.

:func:`topology_overlay` dispatches on the generator shape recorded in
``graph.meta`` and is what :func:`~repro.protocols.graph_engine.simulate_graph`
uses when no explicit overlay is given.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from ..errors import PlatformError
from ..platform.graph import Overlay, PlatformGraph, build_overlay
from .config import ProtocolConfig

__all__ = ["star_service_order", "chain_relay_config", "leaf_spine_overlay",
           "topology_overlay", "reassign_orphans"]


def star_service_order(graph: PlatformGraph) -> List[int]:
    """Workers of a star in the order the root's port serves them.

    One-hop bandwidth-centric ordering degenerates to sorting by link
    cost (ties by node id) — the returned ids are *graph* host ids.
    """
    root = graph.root
    workers = []
    for h in graph.hosts:
        if h == root:
            continue
        link = graph.adj[root].get(h)
        if link is None:
            raise PlatformError(
                f"host {h} is not a direct neighbour of the root — not a star")
        workers.append((graph.link_c[link], h))
    return [h for _c, h in sorted(workers)]


def chain_relay_config(base: ProtocolConfig) -> ProtocolConfig:
    """Adapt a protocol config for store-and-forward relay chains.

    Every interior chain host both computes and forwards, so its buffer
    pool must cover the pipeline depth; growth (rules 1–3) discovers that
    depth autonomously.  Fixed-buffer configs are given growth with the
    original pool size as the floor; growing configs pass through.
    """
    if base.buffer_growth:
        return base
    return replace(base, buffer_growth=True)


def leaf_spine_overlay(graph: PlatformGraph) -> Overlay:
    """Two-level overlay for leaf-spine fabrics via per-leaf head election.

    Each rack's lowest-id host becomes its head; the repository serves
    heads, each head serves its rack-mates.  Rack membership is read from
    the physical adjacency (a host's unique access switch), so the
    election also works on hand-built fabrics without generator ``meta``.
    """
    root = graph.root
    rack_of = {}
    for h in graph.hosts:
        access = [v for v in sorted(graph.adj[h]) if graph.w[v] is None]
        if len(access) != 1:
            raise PlatformError(
                f"host {h} has {len(access)} switch links — not a "
                f"single-homed leaf-spine fabric")
        rack_of[h] = access[0]
    heads = {}
    for h in sorted(graph.hosts):
        heads.setdefault(rack_of[h], h)
    # The repository's rack is headed by the repository itself.
    heads[rack_of[root]] = root
    parent_of = {}
    for h in graph.hosts:
        if h == root:
            continue
        head = heads[rack_of[h]]
        parent_of[h] = root if h == head else head
    return build_overlay(graph, parent_of)


def reassign_orphans(graph: PlatformGraph, victim_host: int,
                     orphan_hosts: List[int],
                     grandparent_host: int) -> dict:
    """Deterministic overlay re-election after a host crash.

    ``orphan_hosts`` are the graph hosts whose overlay parent
    ``victim_host`` just died; returns ``{orphan host: new parent host}``.
    On leaf-spine fabrics the dead node was a rack head, so the rack
    re-elects: the lowest-id surviving orphan becomes the new head (it
    re-parents to the victim's old parent — normally the repository) and
    the remaining rack-mates parent to it, preserving the one-flow-per-
    rack overlay shape.  Every other topology flattens: all orphans
    re-parent to the victim's old parent.
    """
    if not orphan_hosts:
        return {}
    if graph.meta.get("kind") == "leafspine":
        new_head = min(orphan_hosts)
        mapping = {new_head: grandparent_host}
        for h in orphan_hosts:
            if h != new_head:
                mapping[h] = new_head
        return mapping
    return {h: grandparent_host for h in orphan_hosts}


def topology_overlay(graph: PlatformGraph) -> Overlay:
    """The shape-appropriate overlay for a generated platform.

    Leaf-spine fabrics get the head-election overlay; every other shape
    (star, chain, embedded trees, hand-built graphs) uses the default
    relay overlay, which already is the natural adaptation there.
    """
    if graph.meta.get("kind") == "leafspine":
        return leaf_spine_overlay(graph)
    return graph.overlay()
