"""Protocol engine: wires a platform tree onto the kernel and runs one job.

The engine owns a private copy of the tree (mutations rewrite it), builds
one :class:`~repro.protocols.agents.NodeAgent` per node, registers every
node's initial requests *before* the first scheduling decision (so t=0
already respects priorities), and then lets the event loop run until all
``num_tasks`` tasks have been computed.

Dynamic platform changes (§4.2.3) are applied either when a completion
counter is reached or at a virtual time; in both cases activities already
in flight keep their original durations.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Sequence

from ..errors import ProtocolError
from ..platform.churn import ChurnSchedule, JoinEvent, LeaveEvent
from ..platform.faults import (CrashEvent, FaultSchedule, LinkFailureEvent,
                               LinkRepairEvent)
from ..platform.mutation import Mutation, MutationSchedule
from ..platform.tree import PlatformTree
from ..service.driver import OpenLoopDriver
from ..sim import Environment
from ..sim.warp import (REASON_CONTENTION, REASON_DYNAMIC, REASON_OPEN_LOOP,
                        REASON_TELEMETRY, REASON_TRACING, WarpController,
                        WarpSummary)
from . import trace as _trace
from .agents import NodeAgent
from .config import PriorityRule, ProtocolConfig
from .result import SimulationResult

__all__ = ["ProtocolEngine", "simulate"]

# Deep trees drive synchronous request chains up the ancestry; give the
# interpreter room well beyond the deepest generated platforms.
_MIN_RECURSION_LIMIT = 20_000


class _RecorderFanout:
    """Duplicates the protocol trace stream into multiple recorders (the
    user's tracer plus the telemetry event tap)."""

    __slots__ = ("sinks",)

    def __init__(self, sinks):
        self.sinks = tuple(sinks)

    def record(self, time, kind: str, node: int, peer=None) -> None:
        for sink in self.sinks:
            sink.record(time, kind, node, peer)


class ProtocolEngine:
    """One simulation of ``num_tasks`` independent tasks on ``tree``."""

    #: Agent type built per node — the graph engine substitutes its
    #: contention-aware subclass without re-plumbing the assembly code.
    _agent_class = NodeAgent
    #: Whether the steady-state warp is sound on this engine.  Shared-link
    #: contention breaks the quiescent-periodicity argument, so the graph
    #: engine stands warp down.
    _supports_warp = True
    #: Stand-down reason reported when ``_supports_warp`` is False — always
    #: one of :data:`repro.sim.warp.STAND_DOWN_REASONS` (the multi-app
    #: engine substitutes its own member of the set).
    _warp_stand_down = REASON_CONTENTION

    def __init__(self, tree: PlatformTree, config: ProtocolConfig,
                 num_tasks: int,
                 mutations: Optional[MutationSchedule] = None,
                 churn: Optional[ChurnSchedule] = None,
                 faults: Optional[FaultSchedule] = None,
                 record_buffer_timeline: bool = False,
                 record_completion_times: bool = True,
                 check_invariants: bool = False,
                 arrivals=None, admission=None):
        if num_tasks < 0:
            raise ProtocolError(f"num_tasks must be >= 0, got {num_tasks}")
        self.tree = tree.copy()  # mutations must not leak into caller's tree
        self.config = config
        self.num_tasks = num_tasks
        self.mutations = mutations if mutations is not None else MutationSchedule()
        self.mutations.validate(self.tree)
        self.churn = churn if churn is not None else ChurnSchedule()
        self.churn.validate(self.tree)
        if self.churn and config.priority_rule is PriorityRule.FIFO:
            raise ProtocolError(
                "churn with FIFO ordering is unsupported (withdrawing a "
                "departed node's queued requests is ill-defined)")
        self.faults = faults if faults is not None else FaultSchedule()
        self.faults.validate(self.tree)
        if self.faults and config.priority_rule is PriorityRule.FIFO:
            raise ProtocolError(
                "faults with FIFO ordering are unsupported (reconciling a "
                "failed node's queued requests is ill-defined)")
        self.record_buffer_timeline = record_buffer_timeline
        self.record_completion_times = record_completion_times
        #: Run the task-conservation checker after every fault event (and
        #: every pending-loss flush).  Off by default: the check walks all
        #: agents, which is pure overhead on healthy runs.
        self.check_invariants = check_invariants
        #: Open-loop service driver (``None`` for closed-bag runs).
        self.service_driver: Optional[OpenLoopDriver] = None
        if arrivals is not None:
            if num_tasks:
                raise ProtocolError(
                    "open-loop runs stream their tasks: pass arrivals= "
                    f"with an empty bag, not num_tasks={num_tasks}")
            if self.mutations or self.churn or self.faults:
                raise ProtocolError(
                    "open-loop arrivals cannot be combined with "
                    "mutation/churn/fault schedules")
            self.service_driver = OpenLoopDriver(self, arrivals, admission)
        elif admission is not None:
            raise ProtocolError("admission= requires arrivals=")

        self.env = self._make_env()
        self._tracer = None
        #: Effective trace recorder agents fan protocol events into: the
        #: user's tracer, the telemetry event tap, a fanout of both, or
        #: ``None``.  Rebuilt by :meth:`_rebuild_recorder`.
        self._recorder = None
        #: Live telemetry probe (``None`` unless ``config.telemetry`` set).
        self.probe = None
        if config.telemetry is not None:
            # Deferred import: the telemetry package imports protocols.
            from ..telemetry.probes import TelemetryProbe
            self.probe = TelemetryProbe(self, config.telemetry)
        self.nodes: List[NodeAgent] = []
        self._rebuild_recorder()
        self.completed = 0
        self.completion_times: List[int] = []
        #: Running fold of the last completion's time — kept even when the
        #: per-task timeline above is not recorded, so aggregate metrics
        #: (makespan, mean rate) never need the O(num_tasks) list.
        self.last_completion_time = 0
        self._warp: Optional[WarpController] = None
        self._warp_summary: Optional[WarpSummary] = None
        self.buffer_high_water = config.initial_buffers
        self.held_high_water = 0
        self.buffer_timeline: List[int] = []
        self.held_timeline: List[int] = []
        self._task_mutations = self.mutations.task_triggered()
        self._next_task_mutation = 0
        self._finished = False
        self.repository_exhausted_at: Optional[int] = None

        # Fault-recovery bookkeeping.  ``_pending_lost`` pools destroyed
        # task instances under the id of the node whose unreachability the
        # surviving tree will detect; the pool is flushed into the root's
        # repository when that detection (or a link repair) happens.
        self._pending_lost: Dict[int, int] = {}
        self.tasks_reexecuted = 0
        self.transfers_wasted = 0
        self.crashed_node_ids: List[int] = []
        self.crash_times: List[int] = []
        self.reclaim_times: List[int] = []

        self._build_agents()

    def _make_env(self) -> Environment:
        """Calendar this engine runs on.  The multi-app engine overrides
        this so several per-application agent sets share one calendar."""
        return Environment()

    # ------------------------------------------------------------- tracing
    @property
    def tracer(self):
        """Optional :class:`repro.protocols.trace.Tracer` recording protocol
        events; assign before calling :meth:`run`.  Agents cache a direct
        reference for the hot path, so the setter propagates to all of them
        (agents built later — e.g. on churn joins — pick it up at
        construction)."""
        return self._tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self._tracer = value
        self._rebuild_recorder()

    def _rebuild_recorder(self) -> None:
        """Recompute the effective recorder and push it to every agent."""
        sinks = []
        if self.probe is not None and self.probe.tap is not None:
            sinks.append(self.probe)
        if self._tracer is not None:
            sinks.append(self._tracer)
        if not sinks:
            self._recorder = None
        elif len(sinks) == 1:
            self._recorder = sinks[0]
        else:
            self._recorder = _RecorderFanout(sinks)
        for agent in self.nodes:
            agent.tracer = self._recorder

    # ------------------------------------------------------------ assembly
    def _build_agents(self) -> None:
        tree, config = self.tree, self.config
        for node_id in range(tree.num_nodes):
            agent = self._agent_class(self, node_id, tree.w[node_id],
                                      tree.c[node_id], config,
                                      is_root=(node_id == tree.root))
            self.nodes.append(agent)
        for node_id in range(tree.num_nodes):
            agent = self.nodes[node_id]
            parent_id = tree.parent[node_id]
            if parent_id is not None:
                agent.parent = self.nodes[parent_id]
            agent.children = [self.nodes[cid] for cid in tree.children[node_id]]
            agent.resort_children()
        self.nodes[tree.root].undispensed = self.num_tasks
        if self.faults:
            for agent in self.nodes:
                agent.enable_fault_recovery()

    # ----------------------------------------------------------- callbacks
    def _on_completion(self, node: NodeAgent) -> None:
        self.completed += 1
        self.last_completion_time = self.env.now
        if self.record_completion_times:
            self.completion_times.append(self.env.now)
        if self.record_buffer_timeline:
            self.buffer_timeline.append(self.buffer_high_water)
            self.held_timeline.append(self.held_high_water)
        while (self._next_task_mutation < len(self._task_mutations)
               and self._task_mutations[self._next_task_mutation].after_tasks
               <= self.completed):
            mutation = self._task_mutations[self._next_task_mutation]
            self._next_task_mutation += 1
            self._apply_mutation(mutation)
        # The driver's latency fold must run before the warp hook: the
        # warp's per-period template relies on seeing this completion's
        # latency before it fingerprints the instant.
        if self.service_driver is not None:
            self.service_driver.on_completion(self.env.now)
        if self._warp is not None:
            self._warp.on_completion(node)

    def _note_buffer_high_water(self, buffers: int) -> None:
        if buffers > self.buffer_high_water:
            self.buffer_high_water = buffers

    def _note_held_high_water(self, held: int) -> None:
        if held > self.held_high_water:
            self.held_high_water = held

    def _on_repository_exhausted(self) -> None:
        self.repository_exhausted_at = self.env.now
        if self.service_driver is not None:
            self.service_driver.on_repository_exhausted(self.env.now)

    def _apply_mutation(self, mutation: Mutation) -> None:
        mutation.apply(self.tree)  # keep the tree snapshot in sync
        if self._recorder is not None:
            self._recorder.record(self.env.now, _trace.MUTATION, mutation.node)
        self.nodes[mutation.node].apply_weight_change(
            mutation.attribute, mutation.value)

    def _apply_join(self, join: JoinEvent) -> None:
        if not 0 <= join.parent < self.tree.num_nodes:
            raise ProtocolError(
                f"join at t={join.at_time} targets unknown node {join.parent}")
        if self.nodes[join.parent].departed:
            raise ProtocolError(
                f"join at t={join.at_time}: node {join.parent} has departed")
        if not self.nodes[join.parent].alive:
            raise ProtocolError(
                f"join at t={join.at_time}: node {join.parent} has crashed")
        mapping = self.tree.attach_subtree(join.parent, join.subtree,
                                           join.attach_cost)
        new_ids = sorted(mapping.values())
        for node_id in new_ids:
            agent = NodeAgent(self, node_id, self.tree.w[node_id],
                              self.tree.c[node_id], self.config, is_root=False)
            self.nodes.append(agent)
        for node_id in new_ids:
            agent = self.nodes[node_id]
            agent.parent = self.nodes[self.tree.parent[node_id]]
            agent.children = [self.nodes[cid]
                              for cid in self.tree.children[node_id]]
            agent.resort_children()
        attach_parent = self.nodes[join.parent]
        attach_parent.children = [self.nodes[cid]
                                  for cid in self.tree.children[join.parent]]
        attach_parent.resort_children()
        if self.faults:
            for node_id in new_ids:
                agent = self.nodes[node_id]
                agent.enable_fault_recovery()
                agent._start_sweep()
        # New nodes start participating NOW: live requests (which may
        # immediately preempt lower-priority transfers under IC).
        for node_id in new_ids:
            self.nodes[node_id].announce_join()

    def _apply_leave(self, leave: LeaveEvent) -> None:
        if not 0 <= leave.node < self.tree.num_nodes:
            raise ProtocolError(
                f"leave at t={leave.at_time} targets unknown node {leave.node}")
        if leave.node == self.tree.root:
            raise ProtocolError("the repository root cannot leave")
        for node_id in self.tree.subtree_ids(leave.node):
            if self.nodes[node_id].alive:  # crashed nodes already "left"
                self.nodes[node_id].depart()

    # --------------------------------------------------------------- faults
    def _fault_agent(self, event) -> NodeAgent:
        if not 0 <= event.node < len(self.nodes):
            raise ProtocolError(
                f"fault at t={event.at_time} targets unknown node {event.node}")
        return self.nodes[event.node]

    def _apply_crash(self, event: CrashEvent) -> None:
        victim = self._fault_agent(event)
        if not victim.alive:
            return  # already dead (nested crash schedules)
        parent = victim.parent
        pending = 0
        # A surviving parent's transfer into the dying subtree dies with
        # it; the failed send is the parent's local failure observation.
        if parent is not None and parent.alive:
            transfer = parent.current_transfer
            killed = 0
            if transfer is not None and transfer.child is victim:
                if transfer.timer is not None:
                    transfer.timer.cancel()
                parent.current_transfer = None
                killed += 1
            if parent.shelf.pop(victim.id, None) is not None:
                killed += 1
            if killed:
                pending += killed
                self.transfers_wasted += killed
                parent._mark_suspect(victim)
                parent.try_send()
        # The whole subtree dies; any losses previously pooled under a
        # descendant lose their detector and fold into this crash's pool.
        stack = [victim]
        while stack:
            agent = stack.pop()
            stack.extend(agent.children)
            if not agent.alive:
                continue
            pending += agent._crash()
            pending += self._pending_lost.pop(agent.id, 0)
            self.crashed_node_ids.append(agent.id)
            if self._recorder is not None:
                self._recorder.record(self.env.now, _trace.CRASH, agent.id)
        self.crash_times.append(self.env.now)
        self._pending_lost[victim.id] = (
            self._pending_lost.get(victim.id, 0) + pending)
        if parent is None or not parent.alive or victim not in parent.children:
            # Nobody is left to detect this death (the subtree was already
            # partitioned or detached): the loss surfaces immediately.
            self._flush_pending_losses(victim)
        if self.check_invariants:
            self._check_conservation()

    def _apply_link_failure(self, event: LinkFailureEvent) -> None:
        agent = self._fault_agent(event)
        if not agent.alive:
            return
        agent.link_down = True
        if self._recorder is not None:
            self._recorder.record(self.env.now, _trace.LINK_DOWN, agent.id)
        parent = agent.parent
        if parent is None or not parent.alive:
            return
        transfer = parent.current_transfer
        if transfer is not None and transfer.child is agent:
            # The in-flight task dies on the wire.  (A *shelved* transfer
            # is parked at the parent and survives the outage.)
            if transfer.timer is not None:
                transfer.timer.cancel()
            parent.current_transfer = None
            self.transfers_wasted += 1
            # The child's buffer re-requests; the request stays deferred
            # until the link heals and the parent re-admits the child.
            agent.incoming -= 1
            agent.requested += 1
            agent.deferred_requests += 1
            self._pending_lost[agent.id] = (
                self._pending_lost.get(agent.id, 0) + 1)
            parent._mark_suspect(agent)
            parent.try_send()
        if self.check_invariants:
            self._check_conservation()

    def _apply_link_repair(self, event: LinkRepairEvent) -> None:
        agent = self._fault_agent(event)
        agent.link_down = False
        if self._recorder is not None:
            self._recorder.record(self.env.now, _trace.LINK_UP, agent.id)
        parent = agent.parent
        if agent.alive and parent is not None and parent.alive:
            if agent.id in parent.suspect or agent not in parent.children:
                parent._readmit_child(agent)  # flushes the pending pool
                return
            if agent.deferred_requests:
                # Healed before the parent ever noticed: announce the
                # requests deferred during the outage.
                parent.child_requests += agent.deferred_requests
                agent.deferred_requests = 0
                if parent.current_transfer is None:
                    parent.try_send()
                elif parent.interruptible:
                    parent._maybe_preempt()
        self._flush_pending_losses(agent)
        if self.check_invariants:
            self._check_conservation()

    def _flush_pending_losses(self, agent: NodeAgent, extra: int = 0) -> None:
        """Reclaim task instances destroyed around ``agent`` into the
        root's repository and restart dispensing."""
        lost = self._pending_lost.pop(agent.id, 0) + extra
        if lost == 0:
            return
        self.tasks_reexecuted += lost
        self.reclaim_times.append(self.env.now)
        if self._recorder is not None:
            self._recorder.record(self.env.now, _trace.RECLAIM, agent.id, lost)
        root = self.nodes[self.tree.root]
        root.undispensed += lost
        self.repository_exhausted_at = None
        root.try_start_compute()
        if root.current_transfer is None:
            root.try_send()
        elif root.interruptible:
            root._maybe_preempt()
        if self.check_invariants:
            self._check_conservation()

    def _check_conservation(self) -> None:
        """Runtime task-conservation invariant: every instance of the bag
        is in exactly one place — completed, undispensed at the root,
        buffered, on a CPU, in flight on a port, shelved mid-send, or
        pooled as a pending loss awaiting reclamation.  A leak here is a
        bug in fault bookkeeping that would otherwise only surface as a
        hung run or a short count at collection time."""
        in_buffers = in_cpu = in_flight = shelved = 0
        for agent in self.nodes:
            in_buffers += agent.tasks_held
            if agent.cpu_busy:
                in_cpu += 1
            if agent.current_transfer is not None:
                in_flight += 1
            shelved += len(agent.shelf)
        pending = sum(self._pending_lost.values())
        undispensed = self.nodes[self.tree.root].undispensed
        total = (self.completed + undispensed + in_buffers + in_cpu
                 + in_flight + shelved + pending)
        if total != self.num_tasks:
            raise ProtocolError(
                f"task conservation violated at t={self.env.now}: "
                f"completed={self.completed} + undispensed={undispensed} "
                f"+ buffered={in_buffers} + computing={in_cpu} "
                f"+ in-flight={in_flight} + shelved={shelved} "
                f"+ pending-lost={pending} = {total} != "
                f"num_tasks={self.num_tasks}")

    # ----------------------------------------------------------------- run
    def _resolve_warp(self) -> None:
        """Apply the warp guard chain: either build the controller or stand
        down with one of the shared :data:`~repro.sim.warp.
        STAND_DOWN_REASONS` constants."""
        if not self.config.warp:
            return
        # The warp is sound only for the quiescent base model: any
        # dynamic platform schedule breaks periodicity, and tracing
        # observes the very events the warp would skip.
        if not self._supports_warp:
            self._warp_summary = WarpSummary(
                applied=False, reason=self._warp_stand_down)
        elif self.mutations or self.churn or self.faults:
            self._warp_summary = WarpSummary(
                applied=False, reason=REASON_DYNAMIC)
        elif self._recorder is not None or self.env.trace_hook is not None:
            self._warp_summary = WarpSummary(
                applied=False, reason=REASON_TRACING)
        elif self.probe is not None:
            # Sampling probes observe intermediate state at times the
            # warp would skip straight over.
            self._warp_summary = WarpSummary(
                applied=False, reason=REASON_TELEMETRY)
        elif (self.service_driver is not None
              and not self.service_driver.arrivals.is_periodic):
            # Stochastic arrival streams never recur, so the cycle
            # detector would only burn fingerprints; exactly-periodic
            # streams keep warp in play (arrival-phase recurrence).
            self._warp_summary = WarpSummary(
                applied=False, reason=REASON_OPEN_LOOP)
        else:
            self._warp = WarpController(self)

    def _arm(self) -> None:
        """Register schedules, announce t=0 demand, and kick scheduling.

        Split from :meth:`run` so the multi-app engine can arm several
        agent sets (one per application, possibly at staggered arrival
        times) on one shared calendar before running it once.
        """
        for mutation in self.mutations.time_triggered():
            self.env.call_at(mutation.at_time, self._apply_mutation, mutation)
        for event in self.churn:
            handler = (self._apply_join if isinstance(event, JoinEvent)
                       else self._apply_leave)
            self.env.call_at(event.at_time, handler, event)
        for event in self.faults:
            if isinstance(event, CrashEvent):
                fault_handler = self._apply_crash
            elif isinstance(event, LinkFailureEvent):
                fault_handler = self._apply_link_failure
            else:
                fault_handler = self._apply_link_repair
            self.env.call_at(event.at_time, fault_handler, event)

        # Phase 1: every node registers its initial requests.
        for agent in self.nodes:
            agent.send_initial_requests()
        # Phase 2: scheduling starts with full knowledge of t=0 demand.
        for agent in self.nodes:
            agent.try_start_compute()
            agent.try_send()
        if self.faults:
            # Liveness sweeps only exist when faults can happen, so a
            # fault-free run keeps a bit-identical event calendar.
            for agent in self.nodes:
                agent._start_sweep()
        if self.service_driver is not None:
            self.service_driver.arm()
        if self.probe is not None:
            self.probe.start()

    def run(self) -> SimulationResult:
        """Execute the simulation to completion and return its result."""
        if self._finished:
            raise ProtocolError("engine already ran; build a new one")
        self._finished = True
        self._resolve_warp()

        limit = sys.getrecursionlimit()
        if limit < _MIN_RECURSION_LIMIT:
            sys.setrecursionlimit(_MIN_RECURSION_LIMIT)
        try:
            self._arm()
            self.env.run()
        finally:
            sys.setrecursionlimit(limit)
        return self._collect()

    def _collect(self) -> SimulationResult:
        """Check the conservation invariant and assemble the result."""
        if self.completed != self.num_tasks:  # pragma: no cover - invariant
            raise ProtocolError(
                f"run ended with {self.completed}/{self.num_tasks} tasks "
                "completed — a task instance was lost and never reclaimed")

        if self._warp is not None:
            self._warp_summary = self._warp.finalize()

        return SimulationResult(
            tree=self.tree,
            config=self.config,
            num_tasks=self.num_tasks,
            completion_times=tuple(self.completion_times),
            per_node_computed=tuple(a.computed for a in self.nodes),
            per_node_max_buffers=tuple(a.max_buffers_seen for a in self.nodes),
            per_node_max_held=tuple(a.max_held_seen for a in self.nodes),
            buffer_high_water_at_completion=tuple(self.buffer_timeline),
            held_high_water_at_completion=tuple(self.held_timeline),
            departed_node_ids=tuple(a.id for a in self.nodes if a.departed),
            buffers_decayed=sum(a.buffers_decayed for a in self.nodes),
            preemptions=sum(a.preemptions for a in self.nodes),
            transfers=sum(a.transfers_started for a in self.nodes),
            # The sampler's own calendar entries are not protocol work;
            # subtracting them keeps telemetry-on fingerprints equal to
            # telemetry-off ones.
            events_processed=self.env.processed_count - (
                self.probe.sampler_fires if self.probe is not None else 0),
            repository_exhausted_at=self.repository_exhausted_at,
            crashed_node_ids=tuple(self.crashed_node_ids),
            tasks_reexecuted=self.tasks_reexecuted,
            transfers_wasted=self.transfers_wasted,
            crash_times=tuple(self.crash_times),
            reclaim_times=tuple(self.reclaim_times),
            last_completion_time=self.last_completion_time,
            warp=self._warp_summary,
            telemetry=(self.probe.finalize()
                       if self.probe is not None else None),
            service=(self.service_driver.finalize()
                     if self.service_driver is not None else None),
        )


def simulate(tree: PlatformTree, config: ProtocolConfig, num_tasks: int,
             *, mutations: Optional[MutationSchedule] = None,
             churn: Optional[ChurnSchedule] = None,
             faults: Optional[FaultSchedule] = None,
             record_buffer_timeline: bool = False,
             record_completion_times: bool = True,
             check_invariants: bool = False,
             arrivals=None, admission=None) -> SimulationResult:
    """Run one protocol simulation (one-line convenience wrapper)."""
    engine = ProtocolEngine(tree, config, num_tasks, mutations=mutations,
                            churn=churn, faults=faults,
                            record_buffer_timeline=record_buffer_timeline,
                            record_completion_times=record_completion_times,
                            check_invariants=check_invariants,
                            arrivals=arrivals, admission=admission)
    return engine.run()
