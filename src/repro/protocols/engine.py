"""Protocol engine: wires a platform tree onto the kernel and runs one job.

The engine owns a private copy of the tree (mutations rewrite it), builds
one :class:`~repro.protocols.agents.NodeAgent` per node, registers every
node's initial requests *before* the first scheduling decision (so t=0
already respects priorities), and then lets the event loop run until all
``num_tasks`` tasks have been computed.

Dynamic platform changes (§4.2.3) are applied either when a completion
counter is reached or at a virtual time; in both cases activities already
in flight keep their original durations.
"""

from __future__ import annotations

import sys
from typing import List, Optional, Sequence

from ..errors import ProtocolError
from ..platform.churn import ChurnSchedule, JoinEvent, LeaveEvent
from ..platform.mutation import Mutation, MutationSchedule
from ..platform.tree import PlatformTree
from ..sim import Environment
from .agents import NodeAgent
from .config import PriorityRule, ProtocolConfig
from .result import SimulationResult

__all__ = ["ProtocolEngine", "simulate"]

# Deep trees drive synchronous request chains up the ancestry; give the
# interpreter room well beyond the deepest generated platforms.
_MIN_RECURSION_LIMIT = 20_000


class ProtocolEngine:
    """One simulation of ``num_tasks`` independent tasks on ``tree``."""

    def __init__(self, tree: PlatformTree, config: ProtocolConfig,
                 num_tasks: int,
                 mutations: Optional[MutationSchedule] = None,
                 churn: Optional[ChurnSchedule] = None,
                 record_buffer_timeline: bool = False):
        if num_tasks < 0:
            raise ProtocolError(f"num_tasks must be >= 0, got {num_tasks}")
        self.tree = tree.copy()  # mutations must not leak into caller's tree
        self.config = config
        self.num_tasks = num_tasks
        self.mutations = mutations if mutations is not None else MutationSchedule()
        self.mutations.validate(self.tree)
        self.churn = churn if churn is not None else ChurnSchedule()
        self.churn.validate(self.tree)
        if self.churn and config.priority_rule is PriorityRule.FIFO:
            raise ProtocolError(
                "churn with FIFO ordering is unsupported (withdrawing a "
                "departed node's queued requests is ill-defined)")
        self.record_buffer_timeline = record_buffer_timeline

        self.env = Environment()
        #: Optional :class:`repro.protocols.trace.Tracer` recording protocol
        #: events; assign before calling :meth:`run`.
        self.tracer = None
        self.nodes: List[NodeAgent] = []
        self.completed = 0
        self.completion_times: List[int] = []
        self.buffer_high_water = config.initial_buffers
        self.held_high_water = 0
        self.buffer_timeline: List[int] = []
        self.held_timeline: List[int] = []
        self._task_mutations = self.mutations.task_triggered()
        self._next_task_mutation = 0
        self._finished = False
        self.repository_exhausted_at: Optional[int] = None

        self._build_agents()

    # ------------------------------------------------------------ assembly
    def _build_agents(self) -> None:
        tree, config = self.tree, self.config
        for node_id in range(tree.num_nodes):
            agent = NodeAgent(self, node_id, tree.w[node_id], tree.c[node_id],
                              config, is_root=(node_id == tree.root))
            self.nodes.append(agent)
        for node_id in range(tree.num_nodes):
            agent = self.nodes[node_id]
            parent_id = tree.parent[node_id]
            if parent_id is not None:
                agent.parent = self.nodes[parent_id]
            agent.children = [self.nodes[cid] for cid in tree.children[node_id]]
            agent.resort_children()
        self.nodes[tree.root].undispensed = self.num_tasks

    # ----------------------------------------------------------- callbacks
    def _on_completion(self, node: NodeAgent) -> None:
        self.completed += 1
        self.completion_times.append(self.env.now)
        if self.record_buffer_timeline:
            self.buffer_timeline.append(self.buffer_high_water)
            self.held_timeline.append(self.held_high_water)
        while (self._next_task_mutation < len(self._task_mutations)
               and self._task_mutations[self._next_task_mutation].after_tasks
               <= self.completed):
            mutation = self._task_mutations[self._next_task_mutation]
            self._next_task_mutation += 1
            self._apply_mutation(mutation)

    def _note_buffer_high_water(self, buffers: int) -> None:
        if buffers > self.buffer_high_water:
            self.buffer_high_water = buffers

    def _note_held_high_water(self, held: int) -> None:
        if held > self.held_high_water:
            self.held_high_water = held

    def _on_repository_exhausted(self) -> None:
        self.repository_exhausted_at = self.env.now

    def _apply_mutation(self, mutation: Mutation) -> None:
        mutation.apply(self.tree)  # keep the tree snapshot in sync
        if self.tracer is not None:
            from .trace import MUTATION

            self.tracer.record(self.env.now, MUTATION, mutation.node)
        self.nodes[mutation.node].apply_weight_change(
            mutation.attribute, mutation.value)

    def _apply_join(self, join: JoinEvent) -> None:
        if not 0 <= join.parent < self.tree.num_nodes:
            raise ProtocolError(
                f"join at t={join.at_time} targets unknown node {join.parent}")
        if self.nodes[join.parent].departed:
            raise ProtocolError(
                f"join at t={join.at_time}: node {join.parent} has departed")
        mapping = self.tree.attach_subtree(join.parent, join.subtree,
                                           join.attach_cost)
        new_ids = sorted(mapping.values())
        for node_id in new_ids:
            agent = NodeAgent(self, node_id, self.tree.w[node_id],
                              self.tree.c[node_id], self.config, is_root=False)
            self.nodes.append(agent)
        for node_id in new_ids:
            agent = self.nodes[node_id]
            agent.parent = self.nodes[self.tree.parent[node_id]]
            agent.children = [self.nodes[cid]
                              for cid in self.tree.children[node_id]]
            agent.resort_children()
        attach_parent = self.nodes[join.parent]
        attach_parent.children = [self.nodes[cid]
                                  for cid in self.tree.children[join.parent]]
        attach_parent.resort_children()
        # New nodes start participating NOW: live requests (which may
        # immediately preempt lower-priority transfers under IC).
        for node_id in new_ids:
            self.nodes[node_id].announce_join()

    def _apply_leave(self, leave: LeaveEvent) -> None:
        if not 0 <= leave.node < self.tree.num_nodes:
            raise ProtocolError(
                f"leave at t={leave.at_time} targets unknown node {leave.node}")
        if leave.node == self.tree.root:
            raise ProtocolError("the repository root cannot leave")
        for node_id in self.tree.subtree_ids(leave.node):
            self.nodes[node_id].depart()

    # ----------------------------------------------------------------- run
    def run(self) -> SimulationResult:
        """Execute the simulation to completion and return its result."""
        if self._finished:
            raise ProtocolError("engine already ran; build a new one")
        self._finished = True

        limit = sys.getrecursionlimit()
        if limit < _MIN_RECURSION_LIMIT:
            sys.setrecursionlimit(_MIN_RECURSION_LIMIT)
        try:
            for mutation in self.mutations.time_triggered():
                self.env.call_at(mutation.at_time, self._apply_mutation, mutation)
            for event in self.churn:
                handler = (self._apply_join if isinstance(event, JoinEvent)
                           else self._apply_leave)
                self.env.call_at(event.at_time, handler, event)

            # Phase 1: every node registers its initial requests.
            for agent in self.nodes:
                agent.send_initial_requests()
            # Phase 2: scheduling starts with full knowledge of t=0 demand.
            for agent in self.nodes:
                agent.try_start_compute()
                agent.try_send()

            self.env.run()
        finally:
            sys.setrecursionlimit(limit)

        if self.completed != self.num_tasks:  # pragma: no cover - invariant
            raise ProtocolError(
                f"run ended with {self.completed}/{self.num_tasks} tasks "
                "completed — a task was lost")

        return SimulationResult(
            tree=self.tree,
            config=self.config,
            num_tasks=self.num_tasks,
            completion_times=tuple(self.completion_times),
            per_node_computed=tuple(a.computed for a in self.nodes),
            per_node_max_buffers=tuple(a.max_buffers_seen for a in self.nodes),
            per_node_max_held=tuple(a.max_held_seen for a in self.nodes),
            buffer_high_water_at_completion=tuple(self.buffer_timeline),
            held_high_water_at_completion=tuple(self.held_timeline),
            departed_node_ids=tuple(a.id for a in self.nodes if a.departed),
            buffers_decayed=sum(a.buffers_decayed for a in self.nodes),
            preemptions=sum(a.preemptions for a in self.nodes),
            transfers=sum(a.transfers_started for a in self.nodes),
            events_processed=self.env.processed_count,
            repository_exhausted_at=self.repository_exhausted_at,
        )


def simulate(tree: PlatformTree, config: ProtocolConfig, num_tasks: int,
             *, mutations: Optional[MutationSchedule] = None,
             churn: Optional[ChurnSchedule] = None,
             record_buffer_timeline: bool = False) -> SimulationResult:
    """Run one protocol simulation (one-line convenience wrapper)."""
    engine = ProtocolEngine(tree, config, num_tasks, mutations=mutations,
                            churn=churn,
                            record_buffer_timeline=record_buffer_timeline)
    return engine.run()
