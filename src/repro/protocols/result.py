"""Result record of one protocol simulation run."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..platform.tree import PlatformTree
from ..sim.warp import WarpSummary
from .config import ProtocolConfig

if TYPE_CHECKING:  # annotation-only: the telemetry package imports protocols
    from ..apps.spec import AppResult
    from ..service.slo import ServiceStats
    from ..telemetry.probes import TelemetrySnapshot

__all__ = ["SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Everything a protocol run produced, ready for the metrics layer.

    Completion times are in virtual timesteps and non-decreasing;
    ``completion_times[i]`` is when the ``i+1``-th task finished computing.
    """

    #: The platform as it stood at the *end* of the run (mutations applied).
    tree: PlatformTree
    config: ProtocolConfig
    num_tasks: int
    #: Time of each task completion (length == num_tasks).
    completion_times: Tuple[int, ...]
    #: Tasks computed by each node (length == tree.num_nodes).
    per_node_computed: Tuple[int, ...]
    #: High-water buffer *pool* size of each node (grown buffers).
    per_node_max_buffers: Tuple[int, ...]
    #: High-water of *simultaneously occupied* buffers of each node — the
    #: "buffers used" figure Tables 1 and 2 are read against (the root's
    #: repository is not buffered, so its entry is 0).
    per_node_max_held: Tuple[int, ...]
    #: Global pool high-water as of each completion (empty if not recorded).
    buffer_high_water_at_completion: Tuple[int, ...]
    #: Global occupied high-water as of each completion (empty if not recorded).
    held_high_water_at_completion: Tuple[int, ...]
    #: Nodes that left the pool during the run (graceful churn departures).
    departed_node_ids: Tuple[int, ...]
    #: Total buffers shed by decay across all nodes (0 unless enabled).
    buffers_decayed: int
    #: Total preemptions across all nodes (0 under non-IC).
    preemptions: int
    #: Total transfers started (resumed legs not re-counted).
    transfers: int
    #: Calendar entries processed by the kernel.
    events_processed: int
    #: Virtual time at which the repository handed out its last task
    #: (``None`` for empty runs); everything after it is wind-down.
    repository_exhausted_at: Optional[int] = None
    #: Nodes destroyed by :class:`~repro.platform.faults.CrashEvent`\ s
    #: (every member of each crashed subtree, in death order).
    crashed_node_ids: Tuple[int, ...] = ()
    #: Task instances destroyed by faults and re-dispensed by the root.
    tasks_reexecuted: int = 0
    #: Transfers (in flight or shelved) killed by crashes, link outages,
    #: or dead-child declarations — pure wasted link time.
    transfers_wasted: int = 0
    #: Virtual time of each :class:`~repro.platform.faults.CrashEvent`.
    crash_times: Tuple[int, ...] = ()
    #: Virtual time of each reclaim (lost work re-entering the repository);
    #: ``reclaim - crash`` is the protocol's detection/recovery latency.
    reclaim_times: Tuple[int, ...] = ()
    #: Virtual time of the final completion, tracked as a running fold so
    #: aggregate metrics survive ``record_completion_times=False`` runs.
    last_completion_time: int = 0
    #: Steady-state warp outcome (``None`` unless ``config.warp`` was set).
    #: Excluded from :meth:`fingerprint` by design: a warped run and its
    #: exact twin must fingerprint identically.
    warp: Optional[WarpSummary] = None
    #: Telemetry snapshot (``None`` unless ``config.telemetry`` was set).
    #: Also excluded from :meth:`fingerprint`: probes are read-only and the
    #: sampler's own calendar entries are subtracted from
    #: :attr:`events_processed`, so a telemetry-on run fingerprints
    #: identically to its telemetry-off twin.
    telemetry: Optional["TelemetrySnapshot"] = None
    #: Service-level stats of an open-loop run (``None`` for closed
    #: bags).  *Included* in :meth:`fingerprint` when present: the warp
    #: equivalence contract extends to the entire latency fold, so a
    #: warped service run must reproduce the exact run's sketch
    #: bit-for-bit.
    service: Optional["ServiceStats"] = None
    #: Per-application results of a multi-application run, in application
    #: order.  A single-app run through the legacy engines leaves this
    #: empty; the multi-app engine fills it even for N=1 (where the rest
    #: of the record is bit-identical to the single-app engine's).
    apps: Tuple["AppResult", ...] = ()
    #: Aggregate steady-state rate of the cooperative optimum
    #: (:func:`repro.steady_state.solve_tree` on the shared platform) —
    #: the denominator-side reference for :attr:`price_of_anarchy`.
    cooperative_rate: Optional[Fraction] = None

    @property
    def makespan(self) -> int:
        """Virtual time of the last completion (0 for an empty run)."""
        if self.completion_times:
            return self.completion_times[-1]
        return self.last_completion_time

    @property
    def max_buffers(self) -> int:
        """Largest buffer pool any node grew during the run."""
        return max(self.per_node_max_buffers, default=0)

    @property
    def max_held(self) -> int:
        """Largest number of buffers any node had occupied at once."""
        return max(self.per_node_max_held, default=0)

    @property
    def used_node_ids(self) -> List[int]:
        """Nodes that computed at least one task (Figure 6's "used nodes")."""
        return [i for i, n in enumerate(self.per_node_computed) if n > 0]

    @property
    def num_used_nodes(self) -> int:
        return sum(1 for n in self.per_node_computed if n > 0)

    @property
    def used_depth(self) -> int:
        """Maximum depth among used nodes (0 if only the root computed)."""
        used = self.used_node_ids
        return max((self.tree.depth(i) for i in used), default=0)

    def mean_rate(self) -> float:
        """Overall tasks-per-timestep over the whole run (0 if trivial)."""
        if self.makespan == 0:
            return 0.0
        return self.num_tasks / self.makespan

    def fingerprint(self) -> str:
        """sha256 over every deterministic field of the run.

        Two runs of the same (tree, config, workload) are bit-identical
        exactly when their fingerprints match — the crash-safe harness's
        resume and workers=1-vs-N equivalence tests compare these instead
        of whole objects.
        """
        digest = hashlib.sha256()
        parts = (
            self.config.label, self.num_tasks,
            self.completion_times, self.per_node_computed,
            self.per_node_max_buffers, self.per_node_max_held,
            self.buffer_high_water_at_completion,
            self.held_high_water_at_completion,
            self.departed_node_ids, self.buffers_decayed,
            self.preemptions, self.transfers, self.events_processed,
            self.repository_exhausted_at, self.crashed_node_ids,
            self.tasks_reexecuted, self.transfers_wasted,
            self.crash_times, self.reclaim_times,
            self.last_completion_time,
        )
        for part in parts:
            digest.update(repr(part).encode("utf-8"))
            digest.update(b"\x1f")
        if self.service is not None:
            # Closed-bag runs must fingerprint exactly as they did before
            # service mode existed, so the service fold only enters the
            # digest when an arrival process was actually driving.
            for part in self.service.fingerprint_parts():
                digest.update(repr(part).encode("utf-8"))
                digest.update(b"\x1f")
        if len(self.apps) > 1:
            # N=1 multi-app runs must fingerprint bit-identically to the
            # single-app engine, so per-app parts only enter the digest
            # when there genuinely is more than one application.
            for app in self.apps:
                for part in app.fingerprint_parts():
                    digest.update(repr(part).encode("utf-8"))
                    digest.update(b"\x1f")
        return digest.hexdigest()

    @property
    def jain_index(self) -> Optional[float]:
        """Jain fairness index over per-app steady-state rates.

        ``(Σx)² / (n·Σx²)`` — 1.0 when every application achieves the
        same rate, ``1/n`` when one app starves the rest.  ``None``
        unless this was a multi-application run.
        """
        if len(self.apps) < 2:
            return None
        from ..apps.metrics import jain_index
        return jain_index([app.steady_rate for app in self.apps])

    @property
    def price_of_anarchy(self) -> Optional[float]:
        """Cooperative optimal aggregate rate / achieved aggregate rate.

        ≥ 1; how much total throughput the non-cooperative split left on
        the table.  ``None`` unless the run recorded a cooperative
        reference rate and at least one per-app rate is positive.
        """
        if not self.apps or self.cooperative_rate is None:
            return None
        from ..apps.metrics import price_of_anarchy
        return price_of_anarchy(
            [app.steady_rate for app in self.apps], self.cooperative_rate)

    def surviving_tree(self) -> PlatformTree:
        """The platform with every crashed subtree pruned — what the
        steady-state model (``solve_tree``) should be fed to predict the
        post-recovery rate.  Node ids are relabelled by the pruning."""
        if not self.crashed_node_ids:
            return self.tree
        return self.tree.pruned_many(self.crashed_node_ids)
