"""Plain-text rendering of experiment outputs (paper-style rows)."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["format_table", "fmt_pct", "fmt_num", "fmt_opt"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Fixed-width text table (right-aligned numbers, left-aligned first col)."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render(cells):
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render(row) for row in str_rows)
    return "\n".join(lines)


def fmt_pct(value: float, digits: int = 1) -> str:
    """``42.5%`` style."""
    return f"{value:.{digits}f}%"


def fmt_num(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"


def fmt_opt(value, placeholder: str = "-") -> str:
    """Render ``None`` as a placeholder (e.g. 'never reached')."""
    return placeholder if value is None else str(value)
