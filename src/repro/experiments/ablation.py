"""Ablation experiments beyond the paper's evaluation.

* :func:`priority_rules` — what the bandwidth-centric ordering buys over
  FIFO and compute-centric ordering (the design choice §2.1 argues for).
* :func:`overlay_strategies` — how the overlay tree construction (the §6
  future-work question) affects the achievable optimal rate on random
  physical topologies.
* :func:`buffer_decay_ablation` — §2.2's "optimally, buffer decay": effect
  of decay on reached-optimal rates and buffer pools.
* :func:`churn_resilience` — §6's dynamically evolving pools: joins and
  graceful departures under IC/FB=3.
* :func:`fault_recovery` — abrupt failures (crashes and link outages with
  in-flight task loss) and the autonomous recovery protocol's cost:
  re-executed tasks, detection latency, and post-recovery throughput
  against the surviving platform's optimal rate.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from fractions import Fraction
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ExperimentError
from ..harness import HarnessConfig, RunCoverage, run_seeds
from ..metrics import detect_onset, percentage_reached
from ..platform.generator import PAPER_DEFAULTS, TreeGeneratorParams, generate_tree
from ..platform.overlay import PhysicalTopology, compare_overlays
from ..api import simulate
from ..protocols import PriorityRule, ProtocolConfig
from ..steady_state import solve_tree
from .common import ExperimentScale
from .reporting import fmt_num, fmt_pct, format_table

__all__ = [
    "PriorityAblationResult",
    "priority_rules",
    "format_priority_result",
    "OverlayAblationResult",
    "overlay_strategies",
    "format_overlay_result",
    "DecayAblationResult",
    "buffer_decay_ablation",
    "format_decay_result",
    "ChurnResilienceResult",
    "churn_resilience",
    "format_churn_result",
    "FaultRecoveryResult",
    "fault_recovery",
    "format_fault_result",
    "MultiAppAblationResult",
    "multi_app",
    "format_multi_app_result",
]

def _map_seeds(worker: Callable, seeds: Sequence[int], progress,
               workers: int, *, harness: Optional[HarnessConfig] = None,
               experiment: str = "ablation",
               config_parts: Tuple = ()) -> Tuple[List, Optional[RunCoverage]]:
    """Run ``worker(seed)`` for every seed under the crash-safe harness.

    Results come back in seed order whether serial or parallel, so
    ``workers=1`` and ``workers=N`` produce identical ablation results (the
    per-seed work is independent and internally deterministic).  With a
    ``harness``, worker death and per-seed errors are retried and finally
    recorded as structured failures (see :mod:`repro.harness`); the second
    return value is then the :class:`~repro.harness.RunCoverage` report.
    Without one, the first error propagates — the pre-harness behaviour —
    but Ctrl-C still cancels pending futures instead of hanging on
    orphaned workers.
    """
    outcome = run_seeds(worker, seeds, experiment=experiment,
                        config_parts=config_parts, harness=harness,
                        workers=workers, progress=progress)
    return list(outcome.values), (outcome.coverage if harness is not None
                                  else None)


PRIORITY_CONFIGS: Tuple[ProtocolConfig, ...] = (
    ProtocolConfig.non_interruptible(3, buffer_growth=False),
    ProtocolConfig.non_interruptible(
        3, buffer_growth=False, priority_rule=PriorityRule.COMPUTE_CENTRIC),
    ProtocolConfig.non_interruptible(
        3, buffer_growth=False, priority_rule=PriorityRule.FIFO),
)


@dataclass(frozen=True)
class PriorityAblationResult:
    scale: ExperimentScale
    #: label → % of trees reaching optimal steady state.
    reached: Dict[str, float]
    #: label → mean normalized steady-window rate.
    mean_normalized_rate: Dict[str, float]
    #: Crash-safety coverage report (``None`` when run without a harness).
    coverage: Optional[RunCoverage] = None


def _priority_seed(seed: int, *, params: TreeGeneratorParams, tasks: int,
                   threshold: int) -> Dict[str, Tuple[Optional[int], float]]:
    """Per-tree measurements for :func:`priority_rules` (picklable)."""
    tree = generate_tree(params, seed=seed)
    optimal = solve_tree(tree).rate
    out: Dict[str, Tuple[Optional[int], float]] = {}
    for config in PRIORITY_CONFIGS:
        result = simulate(tree, tasks, config)
        onset = detect_onset(result.completion_times, optimal, threshold)
        times = result.completion_times
        x = len(times) // 3
        rate = Fraction(x, times[2 * x - 1] - times[x - 1])
        out[config.label] = (onset, float(rate / optimal))
    return out


def priority_rules(scale: ExperimentScale = ExperimentScale(),
                   params: TreeGeneratorParams = PAPER_DEFAULTS,
                   *, progress=None, workers: int = 1,
                   harness: Optional[HarnessConfig] = None
                   ) -> PriorityAblationResult:
    """Compare child-ordering rules over a random ensemble."""
    worker = partial(_priority_seed, params=params, tasks=scale.tasks,
                     threshold=scale.threshold)
    seeds = [scale.base_seed + i for i in range(scale.trees)]
    onsets: Dict[str, List] = {c.label: [] for c in PRIORITY_CONFIGS}
    norms: Dict[str, List[float]] = {c.label: [] for c in PRIORITY_CONFIGS}
    per_seed, coverage = _map_seeds(
        worker, seeds, progress, workers, harness=harness,
        experiment="priorities",
        config_parts=(params, scale.tasks, scale.threshold))
    for per_label in per_seed:
        for label, (onset, norm) in per_label.items():
            onsets[label].append(onset)
            norms[label].append(norm)
    return PriorityAblationResult(
        scale=scale,
        reached={k: percentage_reached(v) for k, v in onsets.items()},
        mean_normalized_rate={k: sum(v) / len(v) for k, v in norms.items()},
        coverage=coverage,
    )


def format_priority_result(result: PriorityAblationResult) -> str:
    rows = [[label, fmt_pct(result.reached[label]),
             fmt_num(result.mean_normalized_rate[label])]
            for label in result.reached]
    return format_table(
        ["priority rule", "reached optimal", "mean normalized steady rate"],
        rows,
        title=(f"Ablation — child-ordering rules ({result.scale.trees} trees, "
               f"{result.scale.tasks} tasks)"))


@dataclass(frozen=True)
class OverlayAblationResult:
    graphs: int
    #: strategy → mean optimal rate (normalized to the best strategy per graph).
    mean_relative_rate: Dict[str, float]
    #: strategy → how often it produced the best tree.
    wins: Dict[str, int]
    #: Crash-safety coverage report (``None`` when run without a harness).
    coverage: Optional[RunCoverage] = None


def _random_topology(rng: random.Random, hosts: int) -> PhysicalTopology:
    """Connected random host graph: a random tree plus extra chords."""
    w = [rng.randint(10, 1000) for _ in range(hosts)]
    links = []
    for node in range(1, hosts):
        links.append((rng.randrange(node), node, rng.randint(1, 100)))
    extra = hosts // 2
    for _ in range(extra):
        u, v = rng.randrange(hosts), rng.randrange(hosts)
        if u != v:
            links.append((u, v, rng.randint(1, 100)))
    return PhysicalTopology(w, links)


def _overlay_seed(seed: int, *,
                  hosts: int) -> Tuple[str, Dict[str, float]]:
    """Per-graph measurements for :func:`overlay_strategies` (picklable)."""
    rng = random.Random(seed)
    topology = _random_topology(rng, hosts)
    rows = compare_overlays(topology, seed=seed)
    best = rows[0].rate
    return rows[0].strategy, {row.strategy: row.rate / best for row in rows}


#: Graph-ensemble size used when :func:`overlay_strategies` gets no scale.
DEFAULT_OVERLAY_GRAPHS = 30


def overlay_strategies(scale: Union[ExperimentScale, int, None] = None,
                       *, hosts: int = 40, progress=None, workers: int = 1,
                       harness: Optional[HarnessConfig] = None,
                       graphs: Optional[int] = None,
                       base_seed: Optional[int] = None) -> OverlayAblationResult:
    """Compare overlay constructions by achievable optimal rate.

    Takes the unified signature ``run(scale, *, progress=None, workers=1)``;
    ``scale.trees`` is the number of random physical topologies and
    ``scale.tasks`` is unused (no simulation happens — only the solver).
    ``overlay_strategies(30)`` / ``graphs=`` / ``base_seed=`` are deprecated
    spellings of the scale fields and emit a :class:`DeprecationWarning`.
    """
    if isinstance(scale, int):
        warnings.warn(
            "overlay_strategies(graphs) is deprecated; pass an "
            "ExperimentScale (its `trees` field is the graph count)",
            DeprecationWarning, stacklevel=2)
        graphs, scale = scale, None
    elif graphs is not None:
        warnings.warn(
            "overlay_strategies(graphs=...) is deprecated; pass an "
            "ExperimentScale (its `trees` field is the graph count)",
            DeprecationWarning, stacklevel=2)
    if base_seed is not None:
        warnings.warn(
            "overlay_strategies(base_seed=...) is deprecated; pass an "
            "ExperimentScale (its `base_seed` field)",
            DeprecationWarning, stacklevel=2)
    if graphs is None:
        graphs = scale.trees if scale is not None else DEFAULT_OVERLAY_GRAPHS
    if base_seed is None:
        base_seed = scale.base_seed if scale is not None else 0

    worker = partial(_overlay_seed, hosts=hosts)
    seeds = [base_seed + i for i in range(graphs)]
    totals: Dict[str, float] = {}
    wins: Dict[str, int] = {}
    per_seed, coverage = _map_seeds(worker, seeds, progress, workers,
                                    harness=harness, experiment="overlays",
                                    config_parts=(hosts,))
    measured = len(per_seed)
    for winner, relative in per_seed:
        wins[winner] = wins.get(winner, 0) + 1
        for strategy, value in relative.items():
            totals[strategy] = totals.get(strategy, 0.0) + value
    return OverlayAblationResult(
        graphs=graphs,
        mean_relative_rate={k: v / measured
                            for k, v in sorted(totals.items())},
        wins=wins,
        coverage=coverage,
    )


def format_overlay_result(result: OverlayAblationResult) -> str:
    rows = [[strategy, fmt_num(rel), result.wins.get(strategy, 0)]
            for strategy, rel in sorted(result.mean_relative_rate.items(),
                                        key=lambda kv: -kv[1])]
    return format_table(
        ["overlay strategy", "mean rate vs best", "wins"],
        rows,
        title=(f"Ablation — overlay construction on {result.graphs} random "
               "physical topologies (§6 future work)"))


@dataclass(frozen=True)
class DecayAblationResult:
    """Decay on/off comparison for the growing non-IC protocol."""

    scale: ExperimentScale
    #: variant label → % of trees that reached optimal steady state.
    reached: Dict[str, float]
    #: variant label → mean buffer-pool high-water across trees.
    mean_max_pool: Dict[str, float]
    #: variant label → total buffers shed by decay (0 for the off variant).
    decayed: Dict[str, int]
    #: Crash-safety coverage report (``None`` when run without a harness).
    coverage: Optional[RunCoverage] = None


_DECAY_VARIANTS = (
    ("non-IC, IB=1", ProtocolConfig.non_interruptible()),
    ("non-IC, IB=1 +decay",
     ProtocolConfig.non_interruptible(buffer_decay=True)),
)


def _decay_seed(seed: int, *, params: TreeGeneratorParams, tasks: int,
                threshold: int) -> Dict[str, Tuple[Optional[int], int, int]]:
    """Per-tree measurements for :func:`buffer_decay_ablation` (picklable)."""
    tree = generate_tree(params, seed=seed)
    optimal = solve_tree(tree).rate
    out: Dict[str, Tuple[Optional[int], int, int]] = {}
    for label, config in _DECAY_VARIANTS:
        result = simulate(tree, tasks, config)
        onset = detect_onset(result.completion_times, optimal, threshold)
        out[label] = (onset, result.max_buffers, result.buffers_decayed)
    return out


def buffer_decay_ablation(scale: ExperimentScale = ExperimentScale(),
                          params: TreeGeneratorParams = PAPER_DEFAULTS,
                          *, progress=None, workers: int = 1,
                          harness: Optional[HarnessConfig] = None
                          ) -> DecayAblationResult:
    """Quantify §2.2's "optimally, buffer decay" over a random ensemble."""
    worker = partial(_decay_seed, params=params, tasks=scale.tasks,
                     threshold=scale.threshold)
    seeds = [scale.base_seed + i for i in range(scale.trees)]
    onsets: Dict[str, List] = {label: [] for label, _cfg in _DECAY_VARIANTS}
    pools: Dict[str, List[int]] = {label: [] for label, _cfg in _DECAY_VARIANTS}
    decayed: Dict[str, int] = {label: 0 for label, _cfg in _DECAY_VARIANTS}
    per_seed, coverage = _map_seeds(
        worker, seeds, progress, workers, harness=harness, experiment="decay",
        config_parts=(params, scale.tasks, scale.threshold))
    for per_label in per_seed:
        for label, (onset, pool, shed) in per_label.items():
            onsets[label].append(onset)
            pools[label].append(pool)
            decayed[label] += shed
    return DecayAblationResult(
        scale=scale,
        reached={k: percentage_reached(v) for k, v in onsets.items()},
        mean_max_pool={k: sum(v) / len(v) for k, v in pools.items()},
        decayed=decayed,
        coverage=coverage,
    )


def format_decay_result(result: DecayAblationResult) -> str:
    rows = [[label, fmt_pct(result.reached[label]),
             fmt_num(result.mean_max_pool[label], 1),
             result.decayed[label]]
            for label in result.reached]
    return format_table(
        ["variant", "reached optimal", "mean max pool", "buffers decayed"],
        rows,
        title=(f"Ablation — buffer decay ({result.scale.trees} trees, "
               f"{result.scale.tasks} tasks)"))


@dataclass(frozen=True)
class ChurnResilienceResult:
    """Join/leave resilience of IC/FB=3 over a random ensemble."""

    scale: ExperimentScale
    #: Per-tree normalized mid-run rate after a cluster join.
    join_norms: Tuple[float, ...]
    #: All tasks conserved in every join and leave scenario.
    all_conserved: bool
    #: Every leave scenario produced at least one graceful departure.
    all_departed: bool
    #: Crash-safety coverage report (``None`` when run without a harness).
    coverage: Optional[RunCoverage] = None

    @property
    def mean_join_norm(self) -> float:
        return sum(self.join_norms) / len(self.join_norms)

    @property
    def within_ten_percent(self) -> int:
        return sum(1 for n in self.join_norms if 0.9 <= n <= 1.1)


def _churn_seed(seed: int, *, params: TreeGeneratorParams,
                tasks: int) -> Tuple[float, bool, bool]:
    """Per-tree join/leave measurements for :func:`churn_resilience`."""
    from ..platform import ChurnSchedule, JoinEvent, LeaveEvent
    from ..platform.tree import PlatformTree

    config = ProtocolConfig.interruptible(3)
    base = generate_tree(params, seed=seed)
    cluster = PlatformTree([3, 2, 2], [(0, 1, 1), (0, 2, 1)])
    join = ChurnSchedule([
        JoinEvent(at_time=200, parent=base.root, subtree=cluster,
                  attach_cost=1)])
    result = simulate(base, tasks, config, churn=join)
    grown_optimal = solve_tree(result.tree).rate
    times = result.completion_times
    lo, hi = tasks // 2, (3 * tasks) // 4
    mid = Fraction(hi - lo, times[hi - 1] - times[lo - 1])
    norm = float(mid / grown_optimal)
    conserved = sum(result.per_node_computed) == tasks

    victim = base.children[base.root][0]
    leave = ChurnSchedule([LeaveEvent(at_time=200, node=victim)])
    leave_result = simulate(base, tasks, config, churn=leave)
    conserved &= sum(leave_result.per_node_computed) == tasks
    departed = len(leave_result.departed_node_ids) >= 1
    return norm, conserved, departed


def churn_resilience(scale: ExperimentScale = ExperimentScale(),
                     params: TreeGeneratorParams = PAPER_DEFAULTS,
                     *, progress=None, workers: int = 1,
                     harness: Optional[HarnessConfig] = None
                     ) -> ChurnResilienceResult:
    """Measure §6's dynamically-evolving-pool resilience under IC/FB=3."""
    worker = partial(_churn_seed, params=params, tasks=scale.tasks)
    seeds = [scale.base_seed + i for i in range(scale.trees)]
    norms: List[float] = []
    conserved = True
    departed = True
    per_seed, coverage = _map_seeds(worker, seeds, progress, workers,
                                    harness=harness, experiment="churn",
                                    config_parts=(params, scale.tasks))
    for norm, seed_conserved, seed_departed in per_seed:
        norms.append(norm)
        conserved &= seed_conserved
        departed &= seed_departed
    return ChurnResilienceResult(
        scale=scale, join_norms=tuple(norms),
        all_conserved=conserved, all_departed=departed, coverage=coverage)


def format_churn_result(result: ChurnResilienceResult) -> str:
    return (
        f"Ablation — churn resilience (IC/FB=3, {result.scale.trees} trees, "
        f"{result.scale.tasks} tasks)\n"
        f"{'=' * 60}\n"
        f"tasks conserved in every join/leave scenario : "
        f"{result.all_conserved}\n"
        f"graceful departures on every leave           : "
        f"{result.all_departed}\n"
        f"mid-run rate / grown-platform optimal        : mean "
        f"{result.mean_join_norm:.3f}, within +-10% on "
        f"{result.within_ten_percent}/{len(result.join_norms)} trees")


@dataclass(frozen=True)
class FaultRecoveryResult:
    """Crash/outage recovery behaviour of IC/FB=3 over a random ensemble."""

    scale: ExperimentScale
    #: Per-tree post-recovery rate / surviving-platform optimal rate.
    efficiencies: Tuple[float, ...]
    #: Per-crash detection-to-reclaim latency (virtual time).
    latencies: Tuple[int, ...]
    total_reexecuted: int
    total_wasted: int
    #: Every run completed all its tasks despite the failures.
    all_completed: bool
    #: Crash-safety coverage report (``None`` when run without a harness).
    coverage: Optional[RunCoverage] = None

    @property
    def mean_efficiency(self) -> float:
        return sum(self.efficiencies) / len(self.efficiencies)

    @property
    def within_five_percent(self) -> int:
        return sum(1 for e in self.efficiencies if e >= 0.95)

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)


def _fault_seed(seed: int, *, params: TreeGeneratorParams, tasks: int
                ) -> Tuple[Optional[float], Tuple[int, ...], int, int, bool]:
    """Per-tree crash/outage measurements for :func:`fault_recovery`."""
    from ..metrics.faults import recovery_report
    from ..platform import (CrashEvent, FaultSchedule, LinkFailureEvent,
                            LinkRepairEvent)

    config = ProtocolConfig.interruptible(3)
    tree = generate_tree(params, seed=seed)
    root_children = tree.children[tree.root]
    events: list = [CrashEvent(at_time=200, node=root_children[0])]
    if len(root_children) > 1:
        events.append(LinkFailureEvent(at_time=150, node=root_children[1]))
        events.append(LinkRepairEvent(at_time=450, node=root_children[1]))
    result = simulate(tree, tasks, config, faults=FaultSchedule(events))
    completed = sum(result.per_node_computed) == tasks
    report = recovery_report(result)
    return (report.post_recovery_efficiency,
            tuple(report.recovery_latencies),
            report.tasks_reexecuted, report.transfers_wasted, completed)


def fault_recovery(scale: ExperimentScale = ExperimentScale(),
                   params: TreeGeneratorParams = PAPER_DEFAULTS,
                   *, progress=None, workers: int = 1,
                   harness: Optional[HarnessConfig] = None
                   ) -> FaultRecoveryResult:
    """Crash one root subtree mid-run (plus a transient link outage on a
    second, when the tree has one) and measure the recovery protocol."""
    worker = partial(_fault_seed, params=params, tasks=scale.tasks)
    seeds = [scale.base_seed + i for i in range(scale.trees)]
    efficiencies: List[float] = []
    latencies: List[int] = []
    reexecuted = 0
    wasted = 0
    completed = True
    per_seed, coverage = _map_seeds(worker, seeds, progress, workers,
                                    harness=harness, experiment="faults",
                                    config_parts=(params, scale.tasks))
    for (efficiency, seed_latencies, seed_reexecuted, seed_wasted,
         seed_completed) in per_seed:
        if efficiency is not None:
            efficiencies.append(efficiency)
        latencies.extend(seed_latencies)
        reexecuted += seed_reexecuted
        wasted += seed_wasted
        completed &= seed_completed
    return FaultRecoveryResult(
        scale=scale,
        efficiencies=tuple(efficiencies),
        latencies=tuple(latencies),
        total_reexecuted=reexecuted,
        total_wasted=wasted,
        all_completed=completed,
        coverage=coverage,
    )


def format_fault_result(result: FaultRecoveryResult) -> str:
    return (
        f"Ablation — fault recovery (IC/FB=3, {result.scale.trees} trees, "
        f"{result.scale.tasks} tasks; mid-run subtree crash + link outage)\n"
        f"{'=' * 60}\n"
        f"all tasks completed despite failures      : "
        f"{result.all_completed}\n"
        f"task instances re-executed (total)        : "
        f"{result.total_reexecuted}\n"
        f"transfers wasted (total)                  : {result.total_wasted}\n"
        f"mean crash-to-reclaim latency             : "
        f"{result.mean_latency:.0f} steps\n"
        f"post-recovery rate / surviving optimal    : mean "
        f"{result.mean_efficiency:.3f}, >=95% on "
        f"{result.within_five_percent}/{len(result.efficiencies)} trees")


MULTI_APP_CONFIG = ProtocolConfig.interruptible(3)


@dataclass(frozen=True)
class MultiAppAblationResult:
    """Per-allocator fairness/efficiency of N concurrent applications."""

    scale: ExperimentScale
    apps: int
    allocators: Tuple[str, ...]
    #: allocator → mean steady-state rate of each app (application order).
    mean_app_rates: Dict[str, Tuple[float, ...]]
    #: allocator → mean Jain fairness index across the ensemble.
    mean_jain: Dict[str, float]
    #: allocator → mean price of anarchy (``None`` if never defined).
    mean_poa: Dict[str, Optional[float]]
    #: Crash-safety coverage report (``None`` when run without a harness).
    coverage: Optional[RunCoverage] = None


def _multi_app_seed(seed: int, *, params: TreeGeneratorParams, tasks: int,
                    apps: int, allocators: Tuple[str, ...]
                    ) -> Dict[str, Tuple[Tuple[float, ...], float,
                                         Optional[float]]]:
    """Per-tree multi-app measurements (picklable).

    Apps get ascending priorities (app0 most urgent) so ``selfish`` and
    the cooperative allocators genuinely disagree.
    """
    from ..apps import Application, Workload

    tree = generate_tree(params, seed=seed)
    per_app = max(2, tasks // apps)
    workload = Workload.of([
        Application(per_app, name=f"app{i}", priority=i)
        for i in range(apps)])
    out: Dict[str, Tuple[Tuple[float, ...], float, Optional[float]]] = {}
    for allocator in allocators:
        result = simulate(tree, workload, MULTI_APP_CONFIG,
                          allocator=allocator)
        rates = tuple(float(a.steady_rate) for a in result.apps)
        out[allocator] = (rates, result.jain_index, result.price_of_anarchy)
    return out


def multi_app(scale: ExperimentScale = ExperimentScale(),
              params: TreeGeneratorParams = PAPER_DEFAULTS,
              *, apps: int = 2,
              allocators: Sequence[str] = ("selfish", "maxmin"),
              progress=None, workers: int = 1,
              harness: Optional[HarnessConfig] = None
              ) -> MultiAppAblationResult:
    """Compare per-app bandwidth allocators over a random ensemble.

    ``scale.tasks`` is split evenly across ``apps`` concurrent
    applications with ascending priorities; every allocator runs on the
    same trees, and the result aggregates per-app steady rates, the Jain
    fairness index, and the price of anarchy vs the cooperative optimum.
    """
    if apps < 2:
        raise ExperimentError(f"multi_app needs >= 2 apps, got {apps}")
    allocators = tuple(allocators)
    worker = partial(_multi_app_seed, params=params, tasks=scale.tasks,
                     apps=apps, allocators=allocators)
    seeds = [scale.base_seed + i for i in range(scale.trees)]
    per_seed, coverage = _map_seeds(
        worker, seeds, progress, workers, harness=harness,
        experiment="multi_app",
        config_parts=(params, scale.tasks, apps, allocators))
    mean_app_rates: Dict[str, Tuple[float, ...]] = {}
    mean_jain: Dict[str, float] = {}
    mean_poa: Dict[str, Optional[float]] = {}
    for allocator in allocators:
        rate_rows = [row[allocator][0] for row in per_seed]
        jains = [row[allocator][1] for row in per_seed]
        poas = [row[allocator][2] for row in per_seed
                if row[allocator][2] is not None]
        mean_app_rates[allocator] = tuple(
            sum(col) / len(col) for col in zip(*rate_rows))
        mean_jain[allocator] = sum(jains) / len(jains)
        mean_poa[allocator] = sum(poas) / len(poas) if poas else None
    return MultiAppAblationResult(
        scale=scale, apps=apps, allocators=allocators,
        mean_app_rates=mean_app_rates, mean_jain=mean_jain,
        mean_poa=mean_poa, coverage=coverage)


def format_multi_app_result(result: MultiAppAblationResult) -> str:
    headers = (["allocator"]
               + [f"app{i} rate" for i in range(result.apps)]
               + ["Jain index", "price of anarchy"])
    rows = []
    for allocator in result.allocators:
        rates = result.mean_app_rates[allocator]
        poa = result.mean_poa[allocator]
        rows.append([allocator]
                    + [f"{r:.5f}" for r in rates]
                    + [fmt_num(result.mean_jain[allocator]),
                       fmt_num(poa) if poa is not None else "-"])
    return format_table(
        headers, rows,
        title=(f"Ablation — multi-application allocators "
               f"({result.apps} apps, {result.scale.trees} trees, "
               f"{result.scale.tasks} tasks split evenly, IC/FB=3)"))
