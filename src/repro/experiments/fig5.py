"""Figure 5 — Impact of computation-to-communication ratios.

Four tree classes vary the computation parameter x over
{500, 1000, 5000, 10000} with communication fixed at [1, 100]; for
non-IC/IB=1 and IC/FB=3, the percentage of trees reaching optimal steady
state within the application (4000 tasks in the paper).  The paper's
reading: IC/FB=3 stays strong across all classes; non-IC suffers badly as
the ratio rises, and startup lengthens with the ratio for all protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..harness import HarnessConfig, RunCoverage
from ..metrics import onset_cdf, percentage_reached
from ..platform.generator import PAPER_DEFAULTS, TreeGeneratorParams
from ..protocols import ProtocolConfig
from .common import ExperimentScale, TreeCase, sweep
from .reporting import fmt_pct, format_table

__all__ = ["X_CLASSES", "FIG5_CONFIGS", "Fig5Result", "run", "format_result"]

#: The paper's four computation-parameter classes.
X_CLASSES: Tuple[int, ...] = (500, 1000, 5000, 10000)

FIG5_CONFIGS: Tuple[ProtocolConfig, ...] = (
    ProtocolConfig.non_interruptible(1),
    ProtocolConfig.interruptible(3),
)


@dataclass(frozen=True)
class Fig5Result:
    scale: ExperimentScale
    grid: Tuple[int, ...]
    #: (x-class, label) → CDF percentages over the grid.
    cdf: Dict[Tuple[int, str], Tuple[float, ...]]
    #: (x-class, label) → final % reached.
    reached: Dict[Tuple[int, str], float]
    #: Crash-safety coverage merged over the per-class sweeps (``None``
    #: when run without a harness).
    coverage: Optional[RunCoverage] = None
    #: Per-tree cases across every x-class, in (class, seed) order —
    #: carries the telemetry snapshots when the sweep sampled them.
    cases: Tuple[TreeCase, ...] = ()


def run(scale: ExperimentScale = ExperimentScale(),
        params: TreeGeneratorParams = PAPER_DEFAULTS,
        progress=None, workers: int = 1,
        harness: Optional[HarnessConfig] = None) -> Fig5Result:
    max_window = scale.tasks // 2
    grid = tuple(int(v) for v in np.linspace(scale.threshold, max_window, 10))
    cdf: Dict[Tuple[int, str], Tuple[float, ...]] = {}
    reached: Dict[Tuple[int, str], float] = {}
    coverages = []
    all_cases: List[TreeCase] = []
    for x in X_CLASSES:
        class_params = params.with_max_comp(x)
        cases = sweep(FIG5_CONFIGS, scale, class_params, progress=progress,
                      workers=workers, harness=harness,
                      experiment=f"fig5-x{x}")
        coverages.append(cases.coverage)
        all_cases.extend(cases)
        for config in FIG5_CONFIGS:
            onsets = [case.outcomes[config.label].onset for case in cases]
            cdf[(x, config.label)] = tuple(
                100.0 * v for v in onset_cdf(onsets, grid))
            reached[(x, config.label)] = percentage_reached(onsets)
    coverage = (RunCoverage.merge(coverages) if harness is not None else None)
    return Fig5Result(scale=scale, grid=grid, cdf=cdf, reached=reached,
                      coverage=coverage, cases=tuple(all_cases))


def format_result(result: Fig5Result) -> str:
    headers = ["x class"] + [c.label for c in FIG5_CONFIGS]
    rows = [[x] + [fmt_pct(result.reached[(x, c.label)]) for c in FIG5_CONFIGS]
            for x in X_CLASSES]
    summary = format_table(
        headers, rows,
        title=(f"Figure 5 — % of trees reaching optimal steady state by "
               f"computation-to-communication class "
               f"({result.scale.trees} trees/class, {result.scale.tasks} tasks)"))

    curve_headers = ["tasks completed"] + [
        f"x={x} {c.label}" for x in X_CLASSES for c in FIG5_CONFIGS]
    curve_rows = []
    for i, g in enumerate(result.grid):
        curve_rows.append([g] + [
            fmt_pct(result.cdf[(x, c.label)][i])
            for x in X_CLASSES for c in FIG5_CONFIGS])
    curves = format_table(curve_headers, curve_rows)
    return summary + "\n\n" + curves
