"""Figure 6 — Tree characteristics: all nodes vs used nodes.

Probability distributions of (a) the number of nodes and (b) the maximum
depth, comparing the full trees against the sub-trees of *used* nodes
(nodes that computed at least one task) under non-IC/IB=1 and IC/FB=3.

The paper's reading: with the default (high) computation-to-communication
ratios, significant sub-trees do real work — usually more than 50 nodes,
typical used depth around 18 — and non-IC occasionally uses a slightly
larger/deeper sub-tree than IC/FB=3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..harness import HarnessConfig, RunCoverage
from ..metrics import histogram_pdf, summarize
from ..platform.generator import PAPER_DEFAULTS, TreeGeneratorParams
from ..protocols import ProtocolConfig
from .common import ExperimentScale, TreeCase, sweep
from .reporting import fmt_num, format_table

__all__ = ["FIG6_CONFIGS", "Fig6Result", "run", "format_result"]

FIG6_CONFIGS: Tuple[ProtocolConfig, ...] = (
    ProtocolConfig.non_interruptible(1),
    ProtocolConfig.interruptible(3),
)


@dataclass(frozen=True)
class Fig6Result:
    scale: ExperimentScale
    #: series label → list of per-tree values; keys: "all" plus one per
    #: protocol, for both "nodes" and "depth" dimensions.
    node_series: Dict[str, List[int]]
    depth_series: Dict[str, List[int]]
    #: Crash-safety coverage report (``None`` when run without a harness).
    coverage: Optional[RunCoverage] = None
    #: Per-tree cases in seed order — carries the telemetry snapshots
    #: when the sweep sampled them.
    cases: Tuple[TreeCase, ...] = ()

    def node_pdf(self, label: str, bin_width: int = 25):
        """Binned PDF of a node-count series (Figure 6(a))."""
        return histogram_pdf(self.node_series[label], bin_width)

    def depth_pdf(self, label: str, bin_width: int = 4):
        """Binned PDF of a depth series (Figure 6(b))."""
        return histogram_pdf(self.depth_series[label], bin_width)


def run(scale: ExperimentScale = ExperimentScale(),
        params: TreeGeneratorParams = PAPER_DEFAULTS,
        progress=None, workers: int = 1,
        harness: Optional[HarnessConfig] = None) -> Fig6Result:
    cases = sweep(FIG6_CONFIGS, scale, params, progress=progress,
                  workers=workers, harness=harness, experiment="fig6")
    node_series: Dict[str, List[int]] = {"all": [c.num_nodes for c in cases]}
    depth_series: Dict[str, List[int]] = {"all": [c.max_depth for c in cases]}
    for config in FIG6_CONFIGS:
        label = f"used, {config.label}"
        node_series[label] = [c.outcomes[config.label].used_nodes for c in cases]
        depth_series[label] = [c.outcomes[config.label].used_depth for c in cases]
    return Fig6Result(scale=scale, node_series=node_series,
                      depth_series=depth_series, coverage=cases.coverage,
                      cases=tuple(cases))


def format_result(result: Fig6Result) -> str:
    sections = []
    for name, series in (("tree size (nodes)", result.node_series),
                         ("tree depth", result.depth_series)):
        rows = []
        for label, values in series.items():
            stats = summarize([float(v) for v in values])
            rows.append([label, fmt_num(stats["mean"], 1),
                         fmt_num(stats["median"], 1),
                         int(stats["min"]), int(stats["max"])])
        sections.append(format_table(
            ["series", "mean", "median", "min", "max"], rows,
            title=f"Figure 6 — {name} ({result.scale.trees} trees)"))
    return "\n\n".join(sections)
