"""Figure 4 — Achieving maximal steady state.

For each protocol (non-IC/IB=1 and IC with 1, 2, 3 fixed buffers), the
cumulative percentage of trees whose onset of optimal steady state occurs
within x completed tasks.  The paper's reading: IC/FB=3 reaches the optimal
rate in 99.57 % of 25 000 trees, IC/FB=2 in 98.51 %, IC/FB=1 in ~82 %, and
non-IC/IB=1 in only 20.18 % (with much longer startup phases).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..harness import HarnessConfig, RunCoverage
from ..metrics import onset_cdf, percentage_reached
from ..platform.generator import PAPER_DEFAULTS, TreeGeneratorParams
from ..protocols import ProtocolConfig
from .common import ExperimentScale, TreeCase, sweep
from .reporting import fmt_pct, format_table

__all__ = ["FIG4_CONFIGS", "Fig4Result", "run", "format_result"]

#: The four protocol variants plotted in Figure 4.
FIG4_CONFIGS: Tuple[ProtocolConfig, ...] = (
    ProtocolConfig.non_interruptible(1),
    ProtocolConfig.interruptible(1),
    ProtocolConfig.interruptible(2),
    ProtocolConfig.interruptible(3),
)

#: Reference percentages reported by the paper (for EXPERIMENTS.md).
PAPER_REACHED = {
    "non-IC, IB=1": 20.18,
    "IC, FB=1": 81.9,
    "IC, FB=2": 98.51,
    "IC, FB=3": 99.57,
}


@dataclass(frozen=True)
class Fig4Result:
    scale: ExperimentScale
    cases: List[TreeCase]
    #: x-axis grid (tasks completed at the beginning of the window).
    grid: Tuple[int, ...]
    #: label → cumulative % of trees with onset <= x, per grid point.
    cdf: Dict[str, Tuple[float, ...]]
    #: label → final % of trees that reached optimal steady state.
    reached: Dict[str, float]
    #: Crash-safety coverage report (``None`` when run without a harness).
    coverage: Optional[RunCoverage] = None


def run(scale: ExperimentScale = ExperimentScale(),
        params: TreeGeneratorParams = PAPER_DEFAULTS,
        progress=None, workers: int = 1,
        harness: Optional[HarnessConfig] = None) -> Fig4Result:
    """Run the Figure 4 ensemble (also feeds Table 1)."""
    cases = sweep(FIG4_CONFIGS, scale, params, progress=progress,
                  workers=workers, harness=harness, experiment="fig4")
    return summarize(cases, scale, coverage=cases.coverage)


def summarize(cases: Sequence[TreeCase], scale: ExperimentScale,
              coverage: Optional[RunCoverage] = None) -> Fig4Result:
    """Aggregate a finished sweep into CDFs (reused by Table 1's runner)."""
    max_window = scale.tasks // 2
    grid = tuple(int(x) for x in np.linspace(scale.threshold, max_window, 12))
    cdf: Dict[str, Tuple[float, ...]] = {}
    reached: Dict[str, float] = {}
    for config in FIG4_CONFIGS:
        onsets = [case.outcomes[config.label].onset for case in cases]
        cdf[config.label] = tuple(100.0 * v for v in onset_cdf(onsets, grid))
        reached[config.label] = percentage_reached(onsets)
    return Fig4Result(scale=scale, cases=list(cases), grid=grid, cdf=cdf,
                      reached=reached, coverage=coverage)


def format_result(result: Fig4Result) -> str:
    """Text rendering of the CDF curves plus the headline percentages."""
    labels = [c.label for c in FIG4_CONFIGS]
    rows = []
    for i, x in enumerate(result.grid):
        rows.append([x] + [fmt_pct(result.cdf[label][i]) for label in labels])
    table = format_table(
        ["tasks completed"] + labels, rows,
        title=(f"Figure 4 — % of trees at optimal steady state within x tasks "
               f"({result.scale.trees} trees, {result.scale.tasks} tasks, "
               f"threshold window {result.scale.threshold})"))
    summary_rows = [[label,
                     fmt_pct(result.reached[label], 2),
                     fmt_pct(PAPER_REACHED[label], 2)]
                    for label in labels]
    summary = format_table(["protocol", "reached (this run)", "reached (paper)"],
                           summary_rows)
    return table + "\n\n" + summary
