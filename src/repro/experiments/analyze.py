"""Analysis of user-supplied platforms: the library as a planning tool.

``python -m repro analyze --tree platform.json`` reports everything the
theory knows about a platform (optimal rate, per-node allocation,
bottleneck classification, best upgrades); ``python -m repro simulate
--tree platform.json --protocol ic3 --tasks 5000`` runs an autonomous
protocol on it and compares achieved throughput against the optimum.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from fractions import Fraction
from typing import Dict, Optional

from ..api import simulate
from ..apps import Application
from ..errors import ExperimentError
from ..metrics import detect_onset, phase_breakdown, window_rate
from ..platform import PlatformGraph, PlatformTree, from_json
from ..protocols import ProtocolConfig, Tracer, topology_overlay
from ..telemetry.config import TelemetryConfig
from ..steady_state import (
    allocate,
    classify_bottlenecks,
    solve_tree,
    top_improvements,
)
from .reporting import fmt_num, fmt_opt, format_table

__all__ = ["PROTOCOL_PRESETS", "load_tree", "analyze_tree",
           "simulation_report", "simulate_tree"]

#: Named protocol presets accepted by the CLI.
PROTOCOL_PRESETS: Dict[str, ProtocolConfig] = {
    "ic1": ProtocolConfig.interruptible(1),
    "ic2": ProtocolConfig.interruptible(2),
    "ic3": ProtocolConfig.interruptible(3),
    "non-ic": ProtocolConfig.non_interruptible(),
    "non-ic-decay": ProtocolConfig.non_interruptible(buffer_decay=True),
    "non-ic-fb3": ProtocolConfig.non_interruptible(3, buffer_growth=False),
}


def load_tree(path: str):
    """Read a platform from a JSON file (see :mod:`repro.platform.serialize`).

    Returns a :class:`PlatformTree` or, for ``"kind": "graph"`` documents,
    a :class:`PlatformGraph`; both CLI subcommands accept either.
    """
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        raise ExperimentError(f"cannot read platform file {path!r}: {exc}") from exc
    return from_json(text)


def _as_overlay_tree(platform):
    """``(overlay or None, tree the theory runs on)`` for either platform
    kind.  Graphs analyze/simulate through their shape's protocol overlay;
    the steady-state numbers are then exact for contention-free shapes and
    an upper bound where flows share links."""
    if isinstance(platform, PlatformGraph):
        overlay = topology_overlay(platform)
        return overlay, overlay.tree
    return None, platform


def analyze_tree(platform) -> str:
    """Full theoretical report for one platform (tree or graph)."""
    overlay, tree = _as_overlay_tree(platform)
    solution = solve_tree(tree)
    allocation = allocate(tree, solution)
    bottlenecks = {b.node: b for b in classify_bottlenecks(tree, solution)}

    rows = []
    for node_id in range(tree.num_nodes):
        parent = tree.parent[node_id]
        rate = allocation.compute_rates[node_id]
        rows.append([
            f"P{node_id}",
            tree.w[node_id],
            tree.c[node_id] if parent is not None else "-",
            fmt_num(float(rate), 4) if rate > 0 else "starved",
            fmt_num(float(allocation.inflow_rates[node_id]), 4),
            bottlenecks[node_id].kind,
        ])
    node_table = format_table(
        ["node", "w", "c", "compute rate", "subtree inflow", "bottleneck"],
        rows, title=f"Platform analysis — {tree.num_nodes} nodes, "
                    f"optimal rate {float(solution.rate):.5f} tasks/step "
                    f"(w_tree = {solution.w_tree})")

    upgrades = top_improvements(tree, k=min(5, 2 * tree.num_nodes - 1))
    upgrade_rows = [[
        f"{'CPU' if e.attribute == 'w' else 'link'} of P{e.node}",
        fmt_num(float(e.new_value), 3),
        fmt_num(float(e.rate_delta), 6),
    ] for e in upgrades]
    upgrade_table = format_table(
        ["10% upgrade of", "new weight", "rate gain"],
        upgrade_rows, title="Best single-resource upgrades")

    report = node_table + "\n\n" + upgrade_table
    if overlay is not None:
        kind = platform.meta.get("kind", "graph")
        header = (f"Graph platform ({kind}): {platform.num_nodes} nodes "
                  f"({len(platform.hosts)} hosts, "
                  f"{len(platform.switches)} switches), "
                  f"{platform.num_links} links, "
                  f"contention={platform.contention}.\n"
                  f"Analysis below is of the protocol overlay tree "
                  f"(P<i> = overlay node i, graph host "
                  f"{', '.join(str(h) for h in overlay.hosts)}); rates "
                  f"ignore shared-link contention.\n\n")
        report = header + report
    return report


def simulation_report(platform, protocol: str, tasks: int,
                      telemetry: Optional[TelemetryConfig] = None,
                      telemetry_out: Optional[str] = None, *,
                      apps: int = 1,
                      allocator: Optional[str] = None,
                      faults=None,
                      check_invariants: bool = False,
                      arrivals=None,
                      admission=None) -> str:
    """Run a named protocol preset on the platform and report the outcome.

    With ``telemetry`` set the run carries probes and the report gains
    telemetry rows; ``telemetry_out`` additionally exports the run —
    Chrome trace-event JSON by default (a :class:`~repro.protocols.trace.
    Tracer` is attached so the trace has per-node activity lanes), JSONL
    or CSV by file extension.

    ``apps > 1`` splits the bag over that many concurrent applications
    (ascending priorities, ``allocator`` choosing the per-app bandwidth
    split) and adds per-app rate, Jain-index, and price-of-anarchy rows;
    trace exports then carry one Perfetto process group per application.

    ``faults`` is a :class:`~repro.platform.faults.FaultSchedule`, or an
    int seed for :func:`~repro.platform.faults.chaos_schedule` on this
    platform; the report gains crash/recovery rows (and, with multiple
    apps, pre/post-fault fairness).  ``check_invariants`` arms the task
    conservation checker at every fault delivery.

    ``arrivals`` switches the run to service mode: tasks stream in from
    an arrival process (a spec string for
    :func:`~repro.service.parse_arrivals`, or a process object) gated by
    ``admission`` (spec string for
    :func:`~repro.service.parse_admission`, or a policy), and the report
    gains latency/drop SLO rows.
    """
    if protocol not in PROTOCOL_PRESETS:
        raise ExperimentError(
            f"unknown protocol {protocol!r}; choose from "
            f"{sorted(PROTOCOL_PRESETS)}")
    if admission is not None and arrivals is None:
        raise ExperimentError("--admission requires --arrivals")
    if arrivals is not None:
        if apps != 1:
            raise ExperimentError(
                "--arrivals streams a single open-loop application; it is "
                "incompatible with --apps")
        from ..service import parse_admission, parse_arrivals

        if isinstance(arrivals, str):
            arrivals = parse_arrivals(arrivals)
        if isinstance(admission, str):
            admission = parse_admission(admission)
    elif tasks < 2:
        raise ExperimentError(f"tasks must be >= 2, got {tasks}")
    if apps < 1:
        raise ExperimentError(f"apps must be >= 1, got {apps}")
    if apps == 1 and allocator is not None:
        raise ExperimentError(
            "--allocator selects the per-app bandwidth split; it needs "
            "--apps >= 2")
    config = PROTOCOL_PRESETS[protocol]
    if telemetry is not None:
        config = replace(config, telemetry=telemetry)
    if isinstance(faults, int):
        from ..platform.faults import chaos_schedule

        faults = chaos_schedule(platform, seed=faults)
    overlay, tree = _as_overlay_tree(platform)
    optimal = solve_tree(tree).rate

    if arrivals is not None:
        from ..apps import Workload

        workload = Workload(arrivals=arrivals, admission=admission)
    elif apps == 1:
        workload = tasks
    else:
        per_app = max(2, tasks // apps)
        workload = [Application(per_app, name=f"app{i}", priority=i)
                    for i in range(apps)]
        tasks = per_app * apps
    want_trace = bool(telemetry_out) and not (
        telemetry_out.endswith(".jsonl") or telemetry_out.endswith(".csv"))
    tracers = [Tracer() for _ in range(apps)] if want_trace else None
    result = simulate(platform, workload, config, allocator=allocator,
                      tracer=tracers, faults=faults,
                      check_invariants=check_invariants)

    if arrivals is not None:
        tasks = result.service.completed
    x = max(1, tasks // 3)
    steady = window_rate(result.completion_times, x)
    onset = detect_onset(result.completion_times, optimal)
    phases = phase_breakdown(result, optimal)

    # Contended fluid runs can finish at a non-integral (exact Fraction)
    # virtual time; render those as floats, keep integer steps exact.
    makespan = (result.makespan if isinstance(result.makespan, int)
                else fmt_num(float(result.makespan), 2))
    rows = [
        ["protocol", config.label],
        ["tasks", tasks if arrivals is None
         else f"{tasks} (streamed open-loop)"],
        ["makespan (steps)", makespan],
        ["optimal rate", fmt_num(float(optimal), 5)],
        ["steady-window rate", fmt_num(float(steady), 5)],
        ["normalized", fmt_num(float(steady / optimal), 4)],
        ["onset window", fmt_opt(onset, "never reached")],
        ["startup (steps)", fmt_opt(phases.startup)],
        ["wind-down (steps)", phases.wind_down],
        ["nodes used", f"{result.num_used_nodes}/{tree.num_nodes}"],
        ["max buffer pool", result.max_buffers],
        ["max buffers occupied", result.max_held],
        ["preemptions", result.preemptions],
    ]
    stats = result.service
    if stats is not None:
        rows.extend([
            ["arrivals", repr(arrivals)],
            ["admission", repr(admission) if admission is not None
             else "always admit"],
            ["offered / admitted / dropped",
             f"{stats.offered} / {stats.admitted} / {stats.dropped}"],
            ["drop rate", fmt_num(float(stats.drop_rate), 4)],
            ["latency p50 / p95 / p99",
             " / ".join(fmt_opt(q if q is None else fmt_num(q, 1))
                        for q in (stats.p50, stats.p95, stats.p99))],
            ["latency mean / max",
             f"{fmt_num(float(stats.latency_mean), 2)} / "
             f"{stats.latency_max}"],
            ["utilization (busy fraction)",
             fmt_num(float(stats.utilization), 4)],
            ["time in saturation", fmt_num(float(stats.saturation), 4)],
            ["pending high water", stats.pending_high_water],
        ])
    if faults is not None:
        rows.extend([
            ["fault events", len(faults)],
            ["crashed nodes",
             ", ".join(f"P{n}" for n in result.crashed_node_ids) or "-"],
            ["tasks re-executed", result.tasks_reexecuted],
            ["transfers wasted", result.transfers_wasted],
        ])
    if len(result.apps) > 1:
        rows.append(["applications", len(result.apps)])
        for app_result in result.apps:
            rows.append([f"{app_result.name} steady rate",
                         fmt_num(float(app_result.steady_rate), 5)])
        poa = result.price_of_anarchy
        rows.extend([
            ["Jain fairness index", fmt_num(result.jain_index, 4)],
            ["price of anarchy",
             fmt_num(poa, 4) if poa is not None else "-"],
        ])
        if faults is not None:
            from ..apps.metrics import fault_fairness

            pre, post = fault_fairness(
                [a.completion_times for a in result.apps],
                result.crash_times, result.reclaim_times, result.makespan)
            rows.extend([
                ["pre-fault fairness",
                 fmt_num(pre, 4) if pre is not None else "-"],
                ["post-recovery fairness",
                 fmt_num(post, 4) if post is not None else "-"],
            ])
    snapshot = result.telemetry
    if snapshot is not None:
        util = snapshot.utilization()
        rows.extend([
            ["telemetry samples", snapshot.samples],
            ["telemetry sample dt", snapshot.effective_dt],
            ["mean node utilization",
             fmt_num(sum(util) / len(util), 4) if util else "-"],
        ])
    text = format_table(["metric", "value"], rows,
                        title="Protocol simulation report")
    if telemetry_out:
        written = _export_run(telemetry_out, result, tracers, want_trace)
        text += f"\n[telemetry written to {telemetry_out} ({written} records)]"
    return text


def _export_run(telemetry_out: str, result, tracers, want_trace: bool) -> int:
    """Export one report run: per-app Perfetto process groups for
    multi-application trace exports, :func:`export_auto` otherwise."""
    from ..telemetry.export import export_auto, write_multi_app_trace

    if len(result.apps) > 1:
        if want_trace:
            entries = [(app_result.name, app_result.telemetry, tracer)
                       for app_result, tracer in zip(result.apps, tracers)]
            return write_multi_app_trace(telemetry_out, entries)
        snapshots = [a.telemetry for a in result.apps
                     if a.telemetry is not None]
        return export_auto(telemetry_out, snapshots)
    return export_auto(telemetry_out, result.telemetry or [],
                       tracer=tracers[0] if want_trace else None)


def simulate_tree(platform, protocol: str, tasks: int,
                  telemetry: Optional[TelemetryConfig] = None,
                  telemetry_out: Optional[str] = None) -> str:
    """Deprecated shim — call :func:`simulation_report` instead."""
    warnings.warn(
        "analyze.simulate_tree() is deprecated; use "
        "analyze.simulation_report() (same report, plus multi-application "
        "support)", DeprecationWarning, stacklevel=2)
    return simulation_report(platform, protocol, tasks, telemetry,
                             telemetry_out)
