"""Table 1 — Percentage of trees that reached the optimal steady-state rate
using at most n buffers per node.

The IC rows use their fixed buffer count by construction; the growing
non-IC row is filtered by the buffer high-water the run actually hit.  The
paper's values: IC/FB=1 81.9 % at n=1, IC/FB=2 98.5 % at n=2, IC/FB=3
99.6 % at n=3 — while non-IC manages 0 % through n=3, 0.2 % at n=10,
0.8 % at n=20, 5.1 % at n=100 and 20.18 % unbounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..harness import HarnessConfig, RunCoverage
from ..metrics import reached_within_buffers
from ..platform.generator import PAPER_DEFAULTS, TreeGeneratorParams
from ..protocols import ProtocolConfig
from .common import ExperimentScale, TreeCase, sweep
from .fig4 import FIG4_CONFIGS
from .reporting import fmt_pct, format_table

__all__ = ["BUFFER_BUDGETS", "Table1Result", "run", "from_cases", "format_result"]

#: Buffer budgets n reported by the paper's Table 1.
BUFFER_BUDGETS: Tuple[int, ...] = (1, 2, 3, 10, 20, 100)

NON_IC = FIG4_CONFIGS[0]
IC_CONFIGS = FIG4_CONFIGS[1:]


@dataclass(frozen=True)
class Table1Result:
    scale: ExperimentScale
    #: label → {budget → percentage}, ``None`` where the paper leaves a dash
    #: (an IC row only has an entry at its own fixed buffer count).
    percentages: Dict[str, Dict[int, Optional[float]]]
    #: non-IC percentage with unbounded buffers (the 20.18 % headline).
    non_ic_unbounded: float
    #: Crash-safety coverage report (``None`` when run without a harness).
    coverage: Optional[RunCoverage] = None
    #: Per-tree cases in seed order — carries the telemetry snapshots
    #: when the sweep sampled them.
    cases: Tuple[TreeCase, ...] = ()


def from_cases(cases: Sequence[TreeCase], scale: ExperimentScale,
               coverage: Optional[RunCoverage] = None) -> Table1Result:
    """Build Table 1 from a Figure-4 sweep (same runs, different cut)."""
    total = len(cases)
    percentages: Dict[str, Dict[int, Optional[float]]] = {}

    # "Buffers used" for the growing protocol is read as the high-water of
    # simultaneously occupied buffers (max_held) — see DESIGN.md.
    non_ic_rows: Dict[int, Optional[float]] = {}
    for budget in BUFFER_BUDGETS:
        hits = sum(
            1 for case in cases
            if reached_within_buffers(case.outcomes[NON_IC.label].onset,
                                      case.outcomes[NON_IC.label].max_held,
                                      budget))
        non_ic_rows[budget] = 100.0 * hits / total
    percentages[NON_IC.label] = non_ic_rows

    for config in IC_CONFIGS:
        row: Dict[int, Optional[float]] = {b: None for b in BUFFER_BUDGETS}
        reached = sum(1 for case in cases
                      if case.outcomes[config.label].onset is not None)
        if config.initial_buffers in row:
            row[config.initial_buffers] = 100.0 * reached / total
        percentages[config.label] = row

    unbounded = 100.0 * sum(
        1 for case in cases
        if case.outcomes[NON_IC.label].onset is not None) / total
    return Table1Result(scale=scale, percentages=percentages,
                        non_ic_unbounded=unbounded, coverage=coverage,
                        cases=tuple(cases))


def run(scale: ExperimentScale = ExperimentScale(),
        params: TreeGeneratorParams = PAPER_DEFAULTS,
        progress=None, workers: int = 1,
        harness: Optional[HarnessConfig] = None) -> Table1Result:
    """Run the ensemble and produce Table 1."""
    # Same sweep (and hence the same checkpoint journal) as Figure 4 — a
    # resumed table1 run reuses every seed a fig4 run already journaled.
    cases = sweep(FIG4_CONFIGS, scale, params, progress=progress,
                  workers=workers, harness=harness, experiment="fig4")
    return from_cases(cases, scale, coverage=cases.coverage)


def format_result(result: Table1Result) -> str:
    headers = ["protocol"] + [str(b) for b in BUFFER_BUDGETS]
    rows: List[List[str]] = []
    for label, row in result.percentages.items():
        rows.append([label] + [
            "-" if row[b] is None else fmt_pct(row[b])
            for b in BUFFER_BUDGETS])
    table = format_table(
        headers, rows,
        title=(f"Table 1 — % of trees reaching optimal steady state using at "
               f"most n buffers ({result.scale.trees} trees, "
               f"{result.scale.tasks} tasks)"))
    return (table + f"\n\nnon-IC with unbounded growth reaches optimal in "
            f"{fmt_pct(result.non_ic_unbounded, 2)} of trees "
            f"(paper: 20.18%)")
