"""Table 2 — Median and maximum buffers used by non-IC across tree classes.

For each computation-parameter class x ∈ {500, 1000, 5000, 10000}, the
median (over trees) buffer high-water when 100 / 1000 / 4000 tasks have
completed, plus the class-wide maximum.  The paper's reading: buffer growth
is rampant at high computation-to-communication ratios (median 551–561 and
max 1951 at x = 10 000) but modest at x = 500 (median 3, max 165).

Sample task counts scale with the application size: for the paper's
4000-task runs they are exactly 100/1000/4000.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..harness import HarnessConfig, RunCoverage
from ..metrics import median_or_none
from ..platform.generator import PAPER_DEFAULTS, TreeGeneratorParams
from ..protocols import ProtocolConfig
from .common import ExperimentScale, TreeCase, sweep
from .fig5 import X_CLASSES
from .reporting import fmt_opt, format_table

__all__ = ["Table2Result", "run", "sample_counts_for", "format_result"]

NON_IC = ProtocolConfig.non_interruptible(1)

#: The paper's sample points, defined for 4000-task applications.
PAPER_SAMPLE_FRACTIONS: Tuple[float, ...] = (100 / 4000, 1000 / 4000, 1.0)


def sample_counts_for(tasks: int) -> Tuple[int, ...]:
    """Scale the paper's 100/1000/4000 sample points to ``tasks``."""
    return tuple(max(1, round(tasks * f)) for f in PAPER_SAMPLE_FRACTIONS)


@dataclass(frozen=True)
class Table2Result:
    scale: ExperimentScale
    sample_counts: Tuple[int, ...]
    #: x-class → median occupied-buffer high-water at each sample count.
    medians: Dict[int, Tuple[Optional[float], ...]]
    #: x-class → maximum occupied-buffer high-water over the whole class.
    maxima: Dict[int, int]
    #: x-class → maximum buffer *pool* grown over the whole class (the
    #: over-requesting the paper's §3.1 case 4 warns about).
    pool_maxima: Dict[int, int]
    #: Crash-safety coverage merged over the per-class sweeps (``None``
    #: when run without a harness).
    coverage: Optional[RunCoverage] = None
    #: Per-tree cases across every x-class, in (class, seed) order —
    #: carries the telemetry snapshots when the sweep sampled them.
    cases: Tuple[TreeCase, ...] = ()


def run(scale: ExperimentScale = ExperimentScale(),
        params: TreeGeneratorParams = PAPER_DEFAULTS,
        progress=None, workers: int = 1,
        harness: Optional[HarnessConfig] = None) -> Table2Result:
    counts = sample_counts_for(scale.tasks)
    medians: Dict[int, Tuple[Optional[float], ...]] = {}
    maxima: Dict[int, int] = {}
    pool_maxima: Dict[int, int] = {}
    coverages = []
    all_cases: List[TreeCase] = []
    for x in X_CLASSES:
        class_params = params.with_max_comp(x)
        cases = sweep([NON_IC], scale, class_params,
                      record_buffers=True, sample_counts=counts,
                      progress=progress, workers=workers,
                      harness=harness, experiment=f"table2-x{x}")
        coverages.append(cases.coverage)
        all_cases.extend(cases)
        outcomes = [case.outcomes[NON_IC.label] for case in cases]
        medians[x] = tuple(
            median_or_none([o.buffer_samples[count] for o in outcomes])
            for count in counts)
        maxima[x] = max(o.max_held for o in outcomes)
        pool_maxima[x] = max(o.max_buffers for o in outcomes)
    coverage = (RunCoverage.merge(coverages) if harness is not None else None)
    return Table2Result(scale=scale, sample_counts=counts,
                        medians=medians, maxima=maxima,
                        pool_maxima=pool_maxima, coverage=coverage,
                        cases=tuple(all_cases))


def format_result(result: Table2Result) -> str:
    headers = ["x"] + [f"median @ {c} tasks" for c in result.sample_counts] + [
        "maximum"]
    rows: List[List[str]] = []
    for x in X_CLASSES:
        rows.append([x] + [fmt_opt(m) for m in result.medians[x]] + [
            result.maxima[x]])
    table = format_table(
        headers, rows,
        title=(f"Table 2 — buffers used (occupied high-water) by non-IC/IB=1 "
               f"({result.scale.trees} trees/class, {result.scale.tasks} "
               f"tasks; paper medians at x=10000: 551/560/561, max 1951)"))
    pools = ", ".join(f"x={x}: {result.pool_maxima[x]}" for x in X_CLASSES)
    return table + f"\n\nmax buffer pools grown (over-requesting): {pools}"
