"""Figure 7 — Adaptability to communication and processor contention.

On the Figure 1 platform, a 1000-task application runs under the
non-interruptible protocol with two fixed buffers (as stated in §4.2.3).
Three scenarios:

* baseline: ``c1 = 1, w1 = 3`` throughout;
* communication contention: after 200 completed tasks, ``c1`` rises to 3;
* processor relief: after 200 completed tasks, ``w1`` drops to 1.

The figure plots cumulative tasks completed against time, with the optimal
steady-state slope of each platform phase as a reference; the protocol's
post-change slope should track the new optimum closely.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from fractions import Fraction
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ExperimentError
from ..harness import HarnessConfig, RunCoverage, run_seeds
from ..metrics import window_rate
from ..platform import Mutation, MutationSchedule, figure1_tree
from ..api import simulate
from ..protocols import ProtocolConfig
from ..steady_state import solve_tree
from .common import ExperimentScale
from .reporting import fmt_num, format_table

__all__ = ["Fig7Result", "ScenarioResult", "run", "format_result"]

CONFIG = ProtocolConfig.non_interruptible(2, buffer_growth=False)
CHANGE_AT = 200
NUM_TASKS = 1000


@dataclass(frozen=True)
class ScenarioResult:
    name: str
    #: (time, cumulative tasks) samples of the run.
    curve: Tuple[Tuple[int, int], ...]
    #: Optimal steady-state rate before the change.
    optimal_before: Fraction
    #: Optimal rate after the change (equals before for the baseline).
    optimal_after: Fraction
    #: Measured rate over the tail (well after the change).
    measured_after: Fraction

    @property
    def tracking_error(self) -> float:
        """Relative gap between the post-change rate and the new optimum."""
        return abs(float(self.measured_after / self.optimal_after) - 1.0)


@dataclass(frozen=True)
class Fig7Result:
    scenarios: Tuple[ScenarioResult, ...]
    #: Crash-safety coverage report (``None`` when run without a harness).
    coverage: Optional[RunCoverage] = None


def _run_scenario(name: str, mutation: Optional[Mutation],
                  num_tasks: int, sample_points: int) -> ScenarioResult:
    tree = figure1_tree()
    schedule = MutationSchedule([mutation] if mutation else [])
    optimal_before = solve_tree(tree).rate
    phases = schedule.phases(tree)
    optimal_after = solve_tree(phases[-1][1]).rate

    result = simulate(tree, num_tasks, CONFIG, mutations=schedule)
    times = result.completion_times
    step = max(1, len(times) // sample_points)
    curve = tuple((times[i], i + 1) for i in range(step - 1, len(times), step))

    # Tail rate: completions from 2×change-point to the end.
    skip = min(2 * CHANGE_AT, len(times) - 2)
    count = len(times) - skip
    measured = Fraction(count, times[-1] - times[skip - 1])
    return ScenarioResult(name=name, curve=curve,
                          optimal_before=optimal_before,
                          optimal_after=optimal_after,
                          measured_after=measured)


def _scenario_specs() -> Tuple[Tuple[str, Optional[Mutation]], ...]:
    return (
        ("baseline (c1=1, w1=3)", None),
        (f"c1: 1 → 3 after {CHANGE_AT} tasks",
         Mutation(node=1, attribute="c", value=3, after_tasks=CHANGE_AT)),
        (f"w1: 3 → 1 after {CHANGE_AT} tasks",
         Mutation(node=1, attribute="w", value=1, after_tasks=CHANGE_AT)),
    )


def _run_scenario_for_pool(index: int, *, num_tasks: int,
                           sample_points: int) -> ScenarioResult:
    """Module-level wrapper so :func:`run` pool workers can be pickled.

    Keyed by scenario *index* so the crash-safe harness can journal each
    scenario like an ensemble seed.
    """
    name, mutation = _scenario_specs()[index]
    return _run_scenario(name, mutation, num_tasks, sample_points)


def run(scale: Union[ExperimentScale, int, None] = None, *,
        progress=None, workers: int = 1,
        harness: Optional[HarnessConfig] = None,
        sample_points: int = 20,
        num_tasks: Optional[int] = None) -> Fig7Result:
    """Run the three Figure 7 scenarios.

    Takes the unified experiment signature ``run(scale, *, progress=None,
    workers=1)``.  With no ``scale`` the paper's §4.2.3 setting is used
    (``NUM_TASKS`` tasks on the fixed Figure 1 platform — the ensemble
    fields of a scale do not apply here, only ``scale.tasks``).
    ``workers > 1`` fans the three independent scenarios out over a
    process pool; results come back in scenario order either way.

    ``run(1000)`` / ``run(num_tasks=1000)`` are deprecated spellings of
    ``run(scale.with_tasks(1000))`` and emit a :class:`DeprecationWarning`.
    """
    if isinstance(scale, int):
        warnings.warn(
            "fig7.run(num_tasks) is deprecated; pass an ExperimentScale "
            "(e.g. ExperimentScale(trees=1, tasks=...))",
            DeprecationWarning, stacklevel=2)
        scale = ExperimentScale(trees=1, tasks=scale)
    if num_tasks is not None:
        warnings.warn(
            "fig7.run(num_tasks=...) is deprecated; pass an ExperimentScale "
            "(e.g. ExperimentScale(trees=1, tasks=...))",
            DeprecationWarning, stacklevel=2)
        scale = ExperimentScale(trees=1, tasks=num_tasks)
    if scale is None:
        scale = ExperimentScale(trees=1, tasks=NUM_TASKS)
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")

    specs = _scenario_specs()
    worker_fn = partial(_run_scenario_for_pool, num_tasks=scale.tasks,
                        sample_points=sample_points)
    outcome = run_seeds(
        worker_fn, range(len(specs)),
        experiment="fig7",
        config_parts=(scale.tasks, sample_points),
        harness=harness, workers=workers, progress=progress)
    return Fig7Result(scenarios=tuple(outcome.values),
                      coverage=(outcome.coverage if harness is not None
                                else None))


def format_result(result: Fig7Result) -> str:
    rows = []
    for s in result.scenarios:
        rows.append([
            s.name,
            fmt_num(float(s.optimal_before), 4),
            fmt_num(float(s.optimal_after), 4),
            fmt_num(float(s.measured_after), 4),
            fmt_num(100 * s.tracking_error, 2) + "%",
        ])
    table = format_table(
        ["scenario", "optimal before", "optimal after",
         "measured after change", "tracking error"],
        rows,
        title=("Figure 7 — adaptability on the Figure 1 platform "
               f"(non-IC/FB=2, {NUM_TASKS} tasks, change at {CHANGE_AT})"))
    curves = []
    for s in result.scenarios:
        points = "  ".join(f"({t},{n})" for t, n in s.curve)
        curves.append(f"{s.name}: {points}")
    return table + "\n\ncumulative completions (time, tasks):\n" + "\n".join(curves)
