"""Command-line entry point: regenerate any table or figure of the paper.

Examples::

    python -m repro fig4 --trees 200 --tasks 2000
    python -m repro table2 --trees 50
    python -m repro fig7
    python -m repro all --trees 60 --tasks 1500 --out results.txt
    python -m repro fig4 --scale paper        # the full 25 000-tree run
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional

from ..harness import HarnessConfig
from .common import ExperimentScale
from . import ablation, fig3, fig4, fig5, fig6, fig7, table1, table2

__all__ = ["main", "build_parser", "resolve_harness", "ExperimentSpec",
           "EXPERIMENTS"]


@contextmanager
def _profiled(enabled: bool):
    """cProfile the enclosed block; top 25 by cumulative time to stderr."""
    if not enabled:
        yield
        return
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)


def _progress(label: str):
    def update(done: int, total: int) -> None:
        sys.stderr.write(f"\r{label}: {done}/{total}")
        sys.stderr.flush()
        if done == total:
            sys.stderr.write("\n")

    return update


def _collect_snapshots(result):
    """Telemetry snapshots of an experiment result, in (seed, label) order.

    Every ensemble experiment keeps its :class:`~repro.experiments.common.
    CaseList` on ``result.cases``; snapshots only exist when the sweep ran
    with ``scale.telemetry``.  The order is deterministic, so fresh and
    resumed sweeps aggregate (and export) identically.
    """
    cases = getattr(result, "cases", None)
    if cases is None:
        return []
    snapshots = []
    for case in cases:
        for label in sorted(case.outcomes):
            snapshot = case.outcomes[label].telemetry
            if snapshot is not None:
                snapshots.append(snapshot)
    return snapshots


@dataclass(frozen=True)
class ExperimentSpec:
    """One CLI subcommand, declaratively.

    Every experiment entry point shares the unified signature
    ``run(scale, *, progress=None, workers=1)``, so the whole CLI table is
    data: a runner, a formatter, and (optionally) the name of a
    ``repro.viz`` renderer.  Calling a spec returns ``(report text, svg
    text or None)``; the viz module is only imported when ``svg=True``.
    """

    name: str
    run: Callable
    format: Callable[[object], str]
    svg_renderer: Optional[str] = None

    def __call__(self, scale: ExperimentScale, workers: int = 1,
                 svg: bool = False,
                 harness: Optional[HarnessConfig] = None,
                 telemetry_out: Optional[str] = None):
        result = self.run(scale, progress=_progress(self.name),
                          workers=workers, harness=harness)
        coverage = getattr(result, "coverage", None)
        if coverage is not None:
            # stderr, so resumed and fresh runs produce byte-identical
            # stdout reports.
            sys.stderr.write(f"{self.name}: {coverage.summary()}\n")
        text = self.format(result)
        snapshots = _collect_snapshots(result)
        if snapshots:
            from ..telemetry import (aggregate_snapshots,
                                     format_telemetry_summary)

            summary = format_telemetry_summary(
                aggregate_snapshots(snapshots))
            text += (f"\n\nTelemetry ensemble summary "
                     f"({len(snapshots)} runs)\n{summary}")
            if telemetry_out:
                from ..telemetry.export import export_auto

                written = export_auto(telemetry_out, snapshots)
                text += (f"\n[telemetry written to {telemetry_out} "
                         f"({written} records)]")
        if not svg or self.svg_renderer is None:
            return text, None
        from .. import viz

        return text, getattr(viz, self.svg_renderer)(result)


#: name → :class:`ExperimentSpec`; call as ``EXPERIMENTS[name](scale,
#: workers=..., svg=...)`` → ``(report text, svg text or None)``.
EXPERIMENTS: Dict[str, ExperimentSpec] = {spec.name: spec for spec in (
    ExperimentSpec("fig3", fig3.run, fig3.format_result, "fig3_svg"),
    ExperimentSpec("fig4", fig4.run, fig4.format_result, "fig4_svg"),
    ExperimentSpec("fig5", fig5.run, fig5.format_result, "fig5_svg"),
    ExperimentSpec("fig6", fig6.run, fig6.format_result, "fig6_svg"),
    ExperimentSpec("fig7", fig7.run, fig7.format_result, "fig7_svg"),
    ExperimentSpec("table1", table1.run, table1.format_result),
    ExperimentSpec("table2", table2.run, table2.format_result),
    ExperimentSpec("priorities", ablation.priority_rules,
                   ablation.format_priority_result),
    ExperimentSpec("overlays", ablation.overlay_strategies,
                   ablation.format_overlay_result),
    ExperimentSpec("decay", ablation.buffer_decay_ablation,
                   ablation.format_decay_result),
    ExperimentSpec("churn", ablation.churn_resilience,
                   ablation.format_churn_result),
    ExperimentSpec("faults", ablation.fault_recovery,
                   ablation.format_fault_result),
    ExperimentSpec("apps", ablation.multi_app,
                   ablation.format_multi_app_result),
)}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the IPDPS'03 "
                    "bandwidth-centric scheduling paper.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all", "analyze",
                                       "simulate"],
                        help="table/figure to regenerate, or "
                             "'analyze'/'simulate' for a --tree file")
    parser.add_argument("--tree", type=str, default=None, metavar="FILE",
                        help="platform JSON (required for analyze/simulate)")
    parser.add_argument("--protocol", type=str, default="ic3",
                        help="protocol preset for 'simulate' "
                             "(ic1/ic2/ic3/non-ic/non-ic-decay/non-ic-fb3)")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool size for ensemble experiments")
    parser.add_argument("--trees", type=int, default=None,
                        help="ensemble size (default: 150)")
    parser.add_argument("--tasks", type=int, default=None,
                        help="tasks per application (default: 2000)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed for the ensemble (default: 0)")
    parser.add_argument("--threshold", type=int, default=None,
                        help="onset threshold window (default: scaled from "
                             "the paper's 300)")
    parser.add_argument("--scale", choices=["default", "smoke", "paper"],
                        default="default",
                        help="preset scale; --trees/--tasks override it")
    parser.add_argument("--topology",
                        choices=["tree", "star", "chain", "leafspine"],
                        default="tree",
                        help="platform shape per seed: the paper's random "
                             "trees (default) or star / chain / leaf-spine "
                             "graph platforms run through the contention-"
                             "aware graph engine with the shape's protocol "
                             "adaptation")
    parser.add_argument("--apps", type=int, default=None, metavar="N",
                        help="concurrent applications sharing each "
                             "platform, for the 'apps' ablation (default "
                             "2) and 'simulate' (default 1); the bag is "
                             "split evenly with ascending priorities")
    parser.add_argument("--allocator", action="append", default=None,
                        choices=["selfish", "maxmin", "fairshare"],
                        help="per-app bandwidth allocator; repeatable for "
                             "the 'apps' ablation (default: selfish and "
                             "maxmin), single-valued for 'simulate'")
    parser.add_argument("--arrivals", type=str, default=None, metavar="SPEC",
                        help="run 'simulate' open-loop: stream tasks from "
                             "an arrival process instead of a finite bag "
                             "(poisson:rate=R,horizon=H | burst:... | "
                             "diurnal:rates=a/b/c,phase=P,horizon=H | "
                             "periodic:interval=I,horizon=H); the report "
                             "gains latency/drop SLO rows")
    parser.add_argument("--admission", type=str, default=None, metavar="SPEC",
                        help="admission policy for --arrivals (always | "
                             "queue:limit=N | token:rate=R,burst=B; "
                             "default: admit everything)")
    parser.add_argument("--faults", type=int, default=None, metavar="SEED",
                        help="inject a seeded chaos fault schedule "
                             "(crashes, link failures/repairs, degrades) "
                             "into 'simulate'; graph platforms get the "
                             "routed edge/switch events")
    parser.add_argument("--check-invariants", action="store_true",
                        help="assert task conservation after every fault "
                             "delivery and loss reclamation ('simulate' "
                             "with --faults)")
    parser.add_argument("--warp", action="store_true",
                        help="enable steady-state warp: fast-forward the "
                             "periodic middle of each run (results are "
                             "identical to exact simulation)")
    parser.add_argument("--telemetry", action="store_true",
                        help="attach telemetry probes to ensemble sweeps "
                             "(fig4/fig5/fig6/table1/table2: reports gain "
                             "an aggregate summary) and to 'simulate' "
                             "(utilization rows); probes are read-only — "
                             "results are unchanged")
    parser.add_argument("--telemetry-out", type=str, default=None,
                        metavar="FILE",
                        help="export telemetry (implies --telemetry): "
                             ".jsonl per-run snapshots, .csv global "
                             "series, anything else Chrome trace-event "
                             "JSON for Perfetto / chrome://tracing")
    parser.add_argument("--telemetry-sample-dt", type=int, default=None,
                        metavar="N",
                        help="telemetry sampling period in virtual "
                             "timesteps (default: 200 for ensembles, "
                             "50 for 'simulate')")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the top 25 "
                             "functions by cumulative time to stderr "
                             "(forces --workers 1)")
    parser.add_argument("--checkpoint-dir", type=str, default=None,
                        metavar="DIR",
                        help="journal per-seed results into DIR so an "
                             "interrupted sweep can be resumed")
    parser.add_argument("--resume", action="store_true",
                        help="replay the journal in --checkpoint-dir and "
                             "run only the missing seeds")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="retries per seed after a crash/timeout "
                             "(default: 2)")
    parser.add_argument("--seed-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock watchdog per seed; overdue seeds "
                             "are killed and retried")
    parser.add_argument("--out", type=str, default=None,
                        help="also write the report to this file")
    parser.add_argument("--svg", type=str, default=None, metavar="DIR",
                        help="also render figures as SVG into this directory")
    return parser


def resolve_scale(args: argparse.Namespace) -> ExperimentScale:
    presets = {
        "default": ExperimentScale(),
        "smoke": ExperimentScale.smoke(),
        "paper": ExperimentScale.paper(),
    }
    scale = presets[args.scale]
    if args.trees is not None:
        scale = scale.with_trees(args.trees)
    if args.tasks is not None:
        scale = scale.with_tasks(args.tasks)
    if args.seed:
        scale = replace(scale, base_seed=args.seed)
    if args.threshold is not None:
        scale = replace(scale, threshold_window=args.threshold)
    if getattr(args, "warp", False):
        scale = replace(scale, warp=True)
    if getattr(args, "topology", "tree") != "tree":
        scale = replace(scale, topology=args.topology)
    telemetry = resolve_telemetry(args)
    if telemetry is not None:
        scale = replace(scale, telemetry=telemetry)
    return scale


def resolve_telemetry(args: argparse.Namespace):
    """The run's :class:`~repro.telemetry.config.TelemetryConfig`, or
    ``None`` when neither ``--telemetry`` nor ``--telemetry-out`` was
    given.  Ensemble sweeps get the sampling-only default — the exact
    event tap is per-run detail that ensemble aggregation never reads."""
    if not (getattr(args, "telemetry", False)
            or getattr(args, "telemetry_out", None)):
        return None
    from ..telemetry.config import TelemetryConfig

    sample_dt = getattr(args, "telemetry_sample_dt", None)
    if sample_dt is None:
        return TelemetryConfig()
    return TelemetryConfig(sample_dt=sample_dt)


def resolve_harness(args: argparse.Namespace) -> HarnessConfig:
    """Build the crash-safety config from CLI flags.

    The CLI always runs under a harness, so worker deaths are retried
    rather than aborting a long sweep; checkpointing only engages when
    ``--checkpoint-dir`` is given.
    """
    return HarnessConfig(
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        max_retries=args.max_retries,
        seed_timeout=args.seed_timeout,
    )


def _run_tree_command(args) -> str:
    from .analyze import analyze_tree, load_tree, simulation_report

    if args.tree:
        tree = load_tree(args.tree)
    elif getattr(args, "topology", "tree") != "tree":
        # No file needed for the generated graph shapes: --topology
        # picks the generator, --seed the instance.
        from ..platform.graph import generate_platform

        tree = generate_platform(args.topology, seed=args.seed)
    else:
        raise SystemExit(
            f"'{args.experiment}' requires --tree FILE (or --topology "
            f"star/chain/leafspine to generate a platform)")
    if args.experiment == "analyze":
        return analyze_tree(tree)
    tasks = args.tasks if args.tasks is not None else 2000
    telemetry = None
    if getattr(args, "telemetry", False) or getattr(args, "telemetry_out",
                                                    None):
        # Single-run inspection wants the full picture: per-node series
        # plus the exact event tap (the Perfetto counter tracks and the
        # utilization cross-check both come from these), sampled finer
        # than the ensemble default.
        from ..telemetry.config import TelemetryConfig

        sample_dt = getattr(args, "telemetry_sample_dt", None)
        telemetry = (TelemetryConfig.tracing() if sample_dt is None
                     else TelemetryConfig.tracing(sample_dt=sample_dt))
    allocators = getattr(args, "allocator", None)
    if allocators and len(allocators) > 1:
        raise SystemExit("'simulate' takes a single --allocator")
    return simulation_report(
        tree, args.protocol, tasks, telemetry=telemetry,
        telemetry_out=getattr(args, "telemetry_out", None),
        apps=args.apps if args.apps is not None else 1,
        allocator=allocators[0] if allocators else None,
        faults=getattr(args, "faults", None),
        check_invariants=getattr(args, "check_invariants", False),
        arrivals=getattr(args, "arrivals", None),
        admission=getattr(args, "admission", None))


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment in ("analyze", "simulate"):
        # Single-run commands profile too: ``simulate --topology
        # leafspine --profile`` is the first place to look when the
        # contention kernel shows up hot.
        with _profiled(args.profile):
            text = _run_tree_command(args)
        print(text)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
        return 0
    scale = resolve_scale(args)
    harness = resolve_harness(args)
    workers = args.workers
    if args.profile and workers != 1:
        # cProfile only sees the calling process; pool workers would hide
        # the very frames being profiled.
        sys.stderr.write("--profile forces --workers 1\n")
        workers = 1
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    experiments = dict(EXPERIMENTS)
    if args.apps is not None or args.allocator:
        # --apps / --allocator parameterize the multi-app ablation; every
        # other ensemble experiment is single-application by design.
        from functools import partial

        spec = experiments["apps"]
        experiments["apps"] = replace(spec, run=partial(
            spec.run,
            apps=args.apps if args.apps is not None else 2,
            allocators=tuple(args.allocator) if args.allocator
            else ("selfish", "maxmin")))
    reports = []
    for name in names:
        start = time.time()
        with _profiled(args.profile):
            report, svg_text = experiments[name](
                scale, workers=workers, svg=args.svg is not None,
                harness=harness, telemetry_out=args.telemetry_out)
        elapsed = time.time() - start
        if args.svg and svg_text is not None:
            import os

            os.makedirs(args.svg, exist_ok=True)
            svg_path = os.path.join(args.svg, f"{name}.svg")
            with open(svg_path, "w") as handle:
                handle.write(svg_text)
            report += f"\n[figure written to {svg_path}]"
        reports.append(f"{report}\n\n[{name} completed in {elapsed:.1f}s]")
    text = ("\n\n" + "#" * 72 + "\n\n").join(reports)
    print(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
