"""Shared experiment plumbing: scales, per-tree cases, ensemble sweeps.

The paper's evaluation runs 25 000 trees × 10 000 tasks; that scale needs a
2003 cluster (or a week).  Every experiment here takes an
:class:`ExperimentScale` so the same code runs the paper's parameters
(``ExperimentScale.paper()``) or laptop-sized ensembles (the default), with
the steady-state threshold window scaled proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..api import simulate
from ..apps import Workload
from ..errors import ExperimentError
from ..harness import HarnessConfig, RunCoverage, run_seeds
from ..metrics import default_threshold, detect_onset
from ..platform.generator import PAPER_DEFAULTS, TreeGeneratorParams, generate_tree
from ..platform.graph import GRAPH_TOPOLOGIES, generate_platform
from ..protocols import ProtocolConfig
from ..protocols.topologies import topology_overlay
from ..steady_state import solve_tree
from ..telemetry.config import TelemetryConfig
from ..telemetry.probes import TelemetrySnapshot

__all__ = ["ExperimentScale", "ConfigOutcome", "TreeCase", "CaseList",
           "run_case", "sweep"]


@dataclass(frozen=True)
class ExperimentScale:
    """Ensemble size, application size, and detection threshold.

    ``threshold_window=None`` scales the paper's window-300 criterion
    proportionally to ``tasks`` (see :func:`repro.metrics.default_threshold`).
    """

    trees: int = 150
    tasks: int = 2000
    base_seed: int = 0
    threshold_window: Optional[int] = None
    #: Run every protocol with steady-state warp (:mod:`repro.sim.warp`)
    #: enabled.  Results are identical to exact simulation; long ensembles
    #: finish sooner when runs reach a periodic steady state.
    warp: bool = False
    #: Attach telemetry probes (:mod:`repro.telemetry`) to every run of the
    #: sweep; each :class:`ConfigOutcome` then carries a
    #: :class:`~repro.telemetry.probes.TelemetrySnapshot` for ensemble
    #: aggregation.  ``None`` (the default) keeps sweeps probe-free.
    #: Mutually exclusive with ``warp`` in effect: probes make the warp
    #: stand down per run, so a warped sweep with telemetry runs exact.
    telemetry: Optional[TelemetryConfig] = None
    #: Platform shape per seed: ``"tree"`` (the paper's generator, default)
    #: or one of :data:`~repro.platform.graph.GRAPH_TOPOLOGIES` (``star``,
    #: ``chain``, ``leafspine``) run through the graph engine with the
    #: shape's protocol adaptation.  Non-tree sweeps checkpoint separately.
    topology: str = "tree"
    #: Explicit workload (multi-application or sized/staggered bags).
    #: ``None`` — the default — runs ``tasks`` unit tasks as one
    #: application, exactly as before; sweeps with an explicit workload
    #: checkpoint separately.
    workload: Optional[Workload] = None

    def __post_init__(self):
        if self.trees < 1:
            raise ExperimentError(f"trees must be >= 1, got {self.trees}")
        if self.tasks < 2:
            raise ExperimentError(f"tasks must be >= 2, got {self.tasks}")
        if self.topology != "tree" and self.topology not in GRAPH_TOPOLOGIES:
            raise ExperimentError(
                f"unknown topology {self.topology!r}; choose 'tree' or one "
                f"of {GRAPH_TOPOLOGIES}")

    @property
    def effective_workload(self) -> Workload:
        """The workload each run gets: the explicit one, else ``tasks``
        unit tasks as a single default application."""
        if self.workload is not None:
            return self.workload
        return Workload(tasks=self.tasks)

    @property
    def threshold(self) -> int:
        """The effective onset-threshold window."""
        if self.threshold_window is not None:
            return self.threshold_window
        return default_threshold(self.tasks)

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """The scale used in the paper's §4.2.1 (hours of CPU time)."""
        return cls(trees=25_000, tasks=10_000, threshold_window=300)

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        """A seconds-scale setting for CI smoke runs and benchmarks.

        Tasks stay at 2000: much below that, the IC/FB=3 startup (three
        buffers filling through the whole tree) eats into the detection
        horizon and the onset criterion under-reports the best protocol.
        """
        return cls(trees=20, tasks=2000)

    def with_trees(self, trees: int) -> "ExperimentScale":
        return replace(self, trees=trees)

    def with_tasks(self, tasks: int) -> "ExperimentScale":
        return replace(self, tasks=tasks)


@dataclass(frozen=True)
class ConfigOutcome:
    """Per-(tree, protocol) measurements used by the tables and figures."""

    onset: Optional[int]
    #: Largest buffer *pool* any node grew (requests outstanding capacity).
    max_buffers: int
    #: Largest number of buffers any node had *occupied* at once — the
    #: "buffers used" reading for Tables 1 and 2.
    max_held: int
    used_nodes: int
    used_depth: int
    makespan: int
    #: ``completed-task count → occupied-buffer high water`` samples
    #: (Table 2), present only when the sweep asked for buffer recording.
    buffer_samples: Dict[int, Optional[int]] = field(default_factory=dict)
    #: Telemetry snapshot of the run (``None`` unless the sweep's scale
    #: carried a :class:`~repro.telemetry.config.TelemetryConfig`).
    telemetry: Optional[TelemetrySnapshot] = None

    @property
    def reached(self) -> bool:
        return self.onset is not None


@dataclass(frozen=True)
class TreeCase:
    """One ensemble tree with its per-protocol outcomes."""

    seed: int
    num_nodes: int
    max_depth: int
    optimal_rate: Fraction
    outcomes: Dict[str, ConfigOutcome]

    def outcome(self, config: ProtocolConfig) -> ConfigOutcome:
        return self.outcomes[config.label]


def run_case(seed: int, params: TreeGeneratorParams,
             configs: Sequence[ProtocolConfig], scale: ExperimentScale,
             *, record_buffers: bool = False,
             sample_counts: Sequence[int] = ()) -> TreeCase:
    """Generate platform ``seed``, run every protocol on it, measure everything.

    Non-tree topologies run through the graph engine with the shape's
    protocol adaptation; their optimal-rate reference is the overlay
    tree's steady-state solution (exact for star/chain, which are
    contention-free; an upper bound on fabrics where flows share links).
    """
    if scale.topology == "tree":
        graph = None
        overlay = None
        tree = generate_tree(params, seed=seed)
    else:
        graph = generate_platform(scale.topology, params, seed=seed)
        overlay = topology_overlay(graph)
        tree = overlay.tree
    optimal = solve_tree(tree).rate
    outcomes: Dict[str, ConfigOutcome] = {}
    for config in configs:
        if scale.warp and not config.warp:
            config = replace(config, warp=True)
        if scale.telemetry is not None and config.telemetry is None:
            config = replace(config, telemetry=scale.telemetry)
        workload = scale.effective_workload
        if graph is None:
            result = simulate(tree, workload, config,
                              record_buffer_timeline=record_buffers)
        else:
            result = simulate(graph, workload, config, overlay=overlay,
                              record_buffer_timeline=record_buffers)
        onset = detect_onset(result.completion_times, optimal, scale.threshold)
        samples: Dict[int, Optional[int]] = {}
        if record_buffers:
            timeline = result.held_high_water_at_completion
            for count in sample_counts:
                samples[count] = (timeline[count - 1]
                                  if 1 <= count <= len(timeline) else None)
        outcomes[config.label] = ConfigOutcome(
            onset=onset,
            max_buffers=result.max_buffers,
            max_held=result.max_held,
            used_nodes=result.num_used_nodes,
            used_depth=result.used_depth,
            makespan=result.makespan,
            buffer_samples=samples,
            telemetry=result.telemetry,
        )
    return TreeCase(
        seed=seed,
        num_nodes=tree.num_nodes,
        max_depth=tree.max_depth,
        optimal_rate=optimal,
        outcomes=outcomes,
    )


class CaseList(List[TreeCase]):
    """A list of :class:`TreeCase` with the sweep's coverage report.

    Behaves exactly like the plain list :func:`sweep` used to return;
    ``coverage`` is ``None`` unless the sweep ran under a harness.
    """

    coverage: Optional[RunCoverage] = None


def sweep(configs: Sequence[ProtocolConfig], scale: ExperimentScale,
          params: TreeGeneratorParams = PAPER_DEFAULTS,
          *, record_buffers: bool = False,
          sample_counts: Sequence[int] = (),
          progress=None, workers: int = 1,
          harness: Optional[HarnessConfig] = None,
          experiment: str = "sweep") -> CaseList:
    """Run every protocol over the whole ensemble (seeds base..base+trees-1).

    ``progress`` is an optional callable ``(done, total)`` invoked after each
    tree — the CLI uses it for a live counter.  ``workers > 1`` fans the
    (embarrassingly parallel, per-tree-seeded) ensemble out over a
    supervised process pool; results are returned in seed order either way,
    so parallel and serial sweeps are bit-identical.

    ``harness`` opts into crash safety (checkpoint/resume, per-seed retry,
    structured failures — see :mod:`repro.harness`); ``experiment`` names
    the checkpoint journal.  Without a harness any worker error propagates
    immediately, as before.
    """
    labels = [c.label for c in configs]
    if len(set(labels)) != len(labels):
        raise ExperimentError(f"duplicate protocol labels in sweep: {labels}")
    seeds = [scale.base_seed + i for i in range(scale.trees)]

    from functools import partial

    worker_fn = partial(_run_case_for_pool, params=params,
                        configs=tuple(configs), scale=scale,
                        record_buffers=record_buffers,
                        sample_counts=tuple(sample_counts))
    outcome = run_seeds(
        worker_fn, seeds,
        experiment=experiment,
        # Per-seed results depend on the generator, protocols, application
        # size, and threshold — not on the ensemble size, base seed, or
        # ``scale.warp`` (warped results are identical by contract, so
        # warped and exact sweeps share checkpoints).
        # ``scale.telemetry`` is included: snapshots live inside the
        # journalled outcomes, so probe-on and probe-off sweeps must not
        # share checkpoints the way warped and exact sweeps do.
        # ``scale.topology`` / ``scale.workload`` join only when
        # non-default so pre-existing tree-sweep journals keep their
        # checkpoint digests.
        config_parts=(params, tuple(configs), scale.tasks,
                      scale.threshold, bool(record_buffers),
                      tuple(sample_counts), scale.telemetry)
        + ((scale.topology,) if scale.topology != "tree" else ())
        + ((scale.workload,) if scale.workload is not None else ()),
        harness=harness, workers=workers, progress=progress,
        meta={"scale": {"trees": scale.trees, "tasks": scale.tasks,
                        "base_seed": scale.base_seed,
                        "threshold": scale.threshold}})
    cases = CaseList(outcome.values)
    cases.coverage = outcome.coverage if harness is not None else None
    return cases


def _run_case_for_pool(seed: int, *, params, configs, scale,
                       record_buffers, sample_counts) -> TreeCase:
    """Module-level wrapper so :func:`sweep` workers can be pickled."""
    return run_case(seed, params, list(configs), scale,
                    record_buffers=record_buffers,
                    sample_counts=list(sample_counts))
