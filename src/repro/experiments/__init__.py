"""Experiment harness: one module per table/figure of the paper's §4.

Every module exposes ``run(scale) -> <Result>`` and
``format_result(result) -> str`` printing the same rows the paper reports.
The CLI (``python -m repro <experiment>``) wires them together.
"""

from .common import ConfigOutcome, ExperimentScale, TreeCase, run_case, sweep
from . import export
from . import ablation, fig3, fig4, fig5, fig6, fig7, table1, table2
from .cli import EXPERIMENTS, main

__all__ = [
    "ExperimentScale",
    "ConfigOutcome",
    "TreeCase",
    "run_case",
    "sweep",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "table1",
    "table2",
    "ablation",
    "export",
    "EXPERIMENTS",
    "main",
]
