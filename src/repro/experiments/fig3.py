"""Figure 3 — Throughput over a sliding growing window for selected trees.

The paper picks three illustrative trees to show how hard it is to eyeball
the onset of steady state: one exceeds the optimal rate several times early
before settling near it, one stays well below optimal, one climbs slowly
toward it.  We recreate the figure by scanning the ensemble for trees with
those behaviours (same IC/FB=3 protocol) and reporting their normalized
window-rate series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExperimentError
from ..harness import HarnessConfig, RunCoverage, run_seeds
from ..metrics import detect_onset, normalized_window_rates
from ..platform.generator import PAPER_DEFAULTS, TreeGeneratorParams, generate_tree
from ..api import simulate
from ..protocols import ProtocolConfig
from ..steady_state import solve_tree
from .common import ExperimentScale
from .reporting import fmt_num, format_table

__all__ = ["Fig3Result", "TreeSeries", "run", "format_result"]

CONFIG = ProtocolConfig.interruptible(3)


@dataclass(frozen=True)
class TreeSeries:
    """Normalized window-rate series of one tree (Figure 3 curve)."""

    seed: int
    behaviour: str  # "overshoot-then-settle" | "below-optimal" | "slow-climb"
    onset: Optional[int]
    #: (window index, normalized rate) samples.
    samples: Tuple[Tuple[int, float], ...]


@dataclass(frozen=True)
class Fig3Result:
    scale: ExperimentScale
    series: Tuple[TreeSeries, ...]
    #: Crash-safety coverage report (``None`` when run without a harness).
    coverage: Optional[RunCoverage] = None


def _series_for(seed: int, scale: ExperimentScale,
                params: TreeGeneratorParams):
    tree = generate_tree(params, seed=seed)
    optimal = solve_tree(tree).rate
    result = simulate(tree, scale.tasks, CONFIG)
    normalized = normalized_window_rates(result.completion_times, optimal)
    onset = detect_onset(result.completion_times, optimal, scale.threshold)
    return normalized, onset


def _classify(normalized: np.ndarray, onset: Optional[int],
              threshold: int) -> str:
    early = normalized[: max(1, threshold)]
    if onset is None:
        return "below-optimal"
    if (early > 1.0).any():
        return "overshoot-then-settle"
    return "slow-climb"


def _downsample(normalized: np.ndarray, points: int) -> Tuple[Tuple[int, float], ...]:
    if normalized.size == 0:
        return ()
    idx = np.unique(np.linspace(0, normalized.size - 1, points).astype(int))
    return tuple((int(i + 1), float(normalized[i])) for i in idx)


def run(scale: ExperimentScale = ExperimentScale(),
        params: TreeGeneratorParams = PAPER_DEFAULTS,
        candidates: int = 30, sample_points: int = 16,
        progress=None, workers: int = 1,
        harness: Optional[HarnessConfig] = None) -> Fig3Result:
    """Scan ``candidates`` seeds and pick one tree per behaviour.

    ``workers > 1`` fans the candidate simulations out over a process
    pool; the selection still walks results in seed order, so parallel
    and serial runs pick identical trees.  ``progress`` is an optional
    ``(done, total)`` callable invoked after each candidate.

    With a ``harness``, every candidate goes through the crash-safe
    runner (journalled, retried) instead of breaking out early once
    three behaviours are found; the selection over the full scan is a
    superset of the early-break scan, so the same trees are chosen.
    """
    if candidates < 3:
        raise ExperimentError("need at least 3 candidate seeds")
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    seeds = range(scale.base_seed, scale.base_seed + candidates)
    found: Dict[str, Tuple[int, np.ndarray, Optional[int]]] = {}
    fallback: List[Tuple[int, np.ndarray, Optional[int]]] = []
    coverage = None

    def _consider(seed, normalized, onset) -> bool:
        behaviour = _classify(normalized, onset, scale.threshold)
        fallback.append((seed, normalized, onset))
        if behaviour not in found:
            found[behaviour] = (seed, normalized, onset)
        return len(found) == 3

    if harness is not None:
        from functools import partial

        worker_fn = partial(_series_for, scale=scale, params=params)
        outcome = run_seeds(
            worker_fn, seeds, experiment="fig3",
            config_parts=(params, scale.tasks, scale.threshold,
                          sample_points),
            harness=harness, workers=workers, progress=progress)
        coverage = outcome.coverage
        for seed, (normalized, onset) in zip(outcome.seeds, outcome.values):
            if _consider(seed, normalized, onset):
                break
    elif workers == 1:
        for i, seed in enumerate(seeds):
            normalized, onset = _series_for(seed, scale, params)
            done = _consider(seed, normalized, onset)
            if progress is not None:
                progress(i + 1, candidates)
            if done:
                break
    else:
        from concurrent.futures import ProcessPoolExecutor
        from functools import partial

        worker_fn = partial(_series_for, scale=scale, params=params)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for i, (seed, (normalized, onset)) in enumerate(
                    zip(seeds, pool.map(worker_fn, seeds))):
                done = _consider(seed, normalized, onset)
                if progress is not None:
                    progress(i + 1, candidates)
                if done:
                    break

    series: List[TreeSeries] = []
    for behaviour, (seed, normalized, onset) in sorted(found.items()):
        series.append(TreeSeries(
            seed=seed, behaviour=behaviour, onset=onset,
            samples=_downsample(normalized, sample_points)))
    # If some behaviour never showed up in the scan, pad with unclassified
    # trees so the figure still has three curves.
    extra = iter(fb for fb in fallback
                 if all(fb[0] != s.seed for s in series))
    while len(series) < 3:
        seed, normalized, onset = next(extra)
        series.append(TreeSeries(
            seed=seed, behaviour="additional", onset=onset,
            samples=_downsample(normalized, sample_points)))
    return Fig3Result(scale=scale, series=tuple(series), coverage=coverage)


def format_result(result: Fig3Result) -> str:
    windows = [w for w, _r in result.series[0].samples]
    headers = ["window (tasks)"] + [
        f"seed {s.seed} ({s.behaviour})" for s in result.series]
    rows = []
    for i, window in enumerate(windows):
        rows.append([window] + [
            fmt_num(s.samples[i][1]) if i < len(s.samples) else "-"
            for s in result.series])
    table = format_table(
        headers, rows,
        title=(f"Figure 3 — normalized window throughput "
               f"({result.scale.tasks} tasks, IC/FB=3)"))
    onsets = ", ".join(
        f"seed {s.seed}: {s.onset if s.onset is not None else 'never'}"
        for s in result.series)
    return table + "\n\nonset of optimal steady state — " + onsets
