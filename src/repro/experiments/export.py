"""Tabular export of ensemble results (CSV / JSON).

The text tables are for reading; this module is for *keeping* — flatten a
sweep's :class:`~repro.experiments.common.TreeCase` list into one row per
(tree, protocol) and write it as CSV or JSON for downstream analysis
(pandas, R, spreadsheets).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Sequence, Tuple, Union

from ..errors import ExperimentError
from .common import TreeCase

__all__ = ["CASE_COLUMNS", "case_rows", "write_csv", "write_json", "cases_to_csv"]

#: Column order of :func:`case_rows`.
CASE_COLUMNS: Tuple[str, ...] = (
    "seed", "num_nodes", "max_depth", "optimal_rate", "protocol",
    "onset", "reached", "max_buffers", "max_held",
    "used_nodes", "used_depth", "makespan",
)


def case_rows(cases: Sequence[TreeCase]) -> List[Dict[str, object]]:
    """One flat dict per (tree, protocol) outcome."""
    rows: List[Dict[str, object]] = []
    for case in cases:
        for label, outcome in case.outcomes.items():
            rows.append({
                "seed": case.seed,
                "num_nodes": case.num_nodes,
                "max_depth": case.max_depth,
                "optimal_rate": float(case.optimal_rate),
                "protocol": label,
                "onset": outcome.onset,
                "reached": outcome.reached,
                "max_buffers": outcome.max_buffers,
                "max_held": outcome.max_held,
                "used_nodes": outcome.used_nodes,
                "used_depth": outcome.used_depth,
                "makespan": outcome.makespan,
            })
    return rows


def write_csv(target: Union[str, io.TextIOBase],
              rows: Sequence[Dict[str, object]],
              columns: Sequence[str] = CASE_COLUMNS) -> None:
    """Write dict rows as CSV (header row first, '' for ``None``)."""
    if not rows:
        raise ExperimentError("no rows to export")
    missing = set(columns) - set(rows[0])
    if missing:
        raise ExperimentError(f"rows lack columns: {sorted(missing)}")

    def dump(handle) -> None:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for row in rows:
            writer.writerow(["" if row[col] is None else row[col]
                             for col in columns])

    if isinstance(target, str):
        with open(target, "w", newline="") as handle:
            dump(handle)
    else:
        dump(target)


def write_json(target: Union[str, io.TextIOBase],
               rows: Sequence[Dict[str, object]]) -> None:
    """Write dict rows as a JSON array."""
    if not rows:
        raise ExperimentError("no rows to export")
    if isinstance(target, str):
        with open(target, "w") as handle:
            json.dump(list(rows), handle, indent=1)
    else:
        json.dump(list(rows), target, indent=1)


def cases_to_csv(target: Union[str, io.TextIOBase],
                 cases: Sequence[TreeCase]) -> None:
    """Convenience: flatten ``cases`` and write them as CSV."""
    write_csv(target, case_rows(cases))
