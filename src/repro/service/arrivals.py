"""Seeded, deterministic arrival processes for open-loop service runs.

The paper's engines drain a fixed finite bag; service mode replaces the
bag with an **arrival process**: a lazy, seeded stream of ``(time,
count)`` calendar events.  Laziness is the point — a diurnal "day" of a
million tasks is generated one event at a time as the simulation reaches
it, so the full arrival list never exists in memory (the per-region
Poisson shards of SNIPPETS.md snippet 1, folded into one stream).

Every process is a frozen dataclass with a deterministic ``repr`` (the
checkpoint digests in :mod:`repro.harness.checkpoint` hash reprs, so an
open-loop sweep can never silently share a journal with a closed-bag
one) and an :meth:`ArrivalProcess.events` method returning a *fresh*
iterator of strictly-increasing integer-time events — integer times keep
the DES kernel on its int fast path.

:class:`PeriodicArrivals` is the exactly-periodic special case the
steady-state warp understands: its iterator is analytic (``skip(n)`` is
O(1)), which is what lets the warp fast-forward thousands of periods
without generating the skipped arrival events.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Optional, Tuple

__all__ = ["ArrivalProcess", "PoissonArrivals", "BurstArrivals",
           "DiurnalArrivals", "PeriodicArrivals", "parse_arrivals"]

#: One arrival event: ``count`` tasks offered at integer virtual ``time``.
ArrivalEvent = Tuple[int, int]


class ArrivalProcess:
    """Base class: a deterministic stream of arrival events.

    Subclasses implement :meth:`events`; each call returns a **fresh**
    iterator (processes hold no per-run state, so one spec can drive many
    runs and always produce the same stream).  Events are ``(time,
    count)`` with strictly increasing integer times in ``[0, horizon)``
    and ``count >= 1``.
    """

    #: True only for processes whose stream is exactly periodic — the
    #: condition under which the steady-state warp may stay armed.
    is_periodic = False

    def events(self) -> Iterator[ArrivalEvent]:
        raise NotImplementedError

    @property
    def num_events(self) -> Optional[int]:
        """Total events the stream will emit, when analytically known
        (``None`` for stochastic processes — the warp needs this to cap
        its skip, which is why it only engages on periodic streams)."""
        return None


def _merge_floors(raw, horizon: int) -> Iterator[ArrivalEvent]:
    """Floor continuous event times to ints, merging same-step events.

    ``raw`` yields ``(continuous time, count)`` with non-decreasing
    times; the output is the strictly-increasing integer-time stream the
    calendar wants.  Cuts off at ``horizon`` (exclusive).
    """
    pending_time = -1
    pending_count = 0
    for t, count in raw:
        it = int(t)
        if it >= horizon:
            break
        if it == pending_time:
            pending_count += count
        else:
            if pending_count:
                yield (pending_time, pending_count)
            pending_time = it
            pending_count = count
    if pending_count:
        yield (pending_time, pending_count)


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals: ``rate`` tasks per timestep."""

    rate: float
    horizon: int
    seed: int = 0

    def __post_init__(self):
        if not self.rate > 0:
            raise ValueError(f"arrival rate must be > 0, got {self.rate!r}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {self.horizon!r}")

    def events(self) -> Iterator[ArrivalEvent]:
        def raw():
            expo = random.Random(self.seed).expovariate
            rate = float(self.rate)
            t = 0.0
            while True:
                t += expo(rate)
                yield (t, 1)

        return _merge_floors(raw(), self.horizon)


@dataclass(frozen=True)
class BurstArrivals(ArrivalProcess):
    """Batched/bursty arrivals: Poisson batch instants at ``rate``
    batches per timestep, each delivering a uniform ``[min_size,
    max_size]`` batch (request fan-in: one user action, many tasks)."""

    rate: float
    horizon: int
    min_size: int = 1
    max_size: int = 8
    seed: int = 0

    def __post_init__(self):
        if not self.rate > 0:
            raise ValueError(f"burst rate must be > 0, got {self.rate!r}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {self.horizon!r}")
        if not 1 <= self.min_size <= self.max_size:
            raise ValueError(
                f"need 1 <= min_size <= max_size, got "
                f"[{self.min_size}, {self.max_size}]")

    def events(self) -> Iterator[ArrivalEvent]:
        def raw():
            rng = random.Random(self.seed)
            rate = float(self.rate)
            lo, hi = self.min_size, self.max_size
            t = 0.0
            while True:
                t += rng.expovariate(rate)
                yield (t, rng.randint(lo, hi))

        return _merge_floors(raw(), self.horizon)


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Piecewise-rate (diurnal) Poisson arrivals.

    ``rates[i]`` is the Poisson rate during the ``i``-th phase of length
    ``phase_len`` timesteps; phases cycle, so a 3-rate profile with an
    8-hour ``phase_len`` is one traffic day repeated until ``horizon``.
    Sampled exactly by time-scaling a unit-rate Poisson process through
    the piecewise-linear integrated intensity (no thinning, no bias at
    phase edges); a zero rate silences its phase entirely.
    """

    rates: Tuple[float, ...]
    phase_len: int
    horizon: int
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "rates", tuple(self.rates))
        if not self.rates:
            raise ValueError("diurnal profile needs at least one rate")
        if any(r < 0 for r in self.rates):
            raise ValueError(f"rates must be >= 0, got {self.rates!r}")
        if not any(r > 0 for r in self.rates):
            raise ValueError("diurnal profile needs a positive rate")
        if self.phase_len <= 0:
            raise ValueError(
                f"phase_len must be > 0, got {self.phase_len!r}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {self.horizon!r}")

    def events(self) -> Iterator[ArrivalEvent]:
        def raw():
            expo = random.Random(self.seed).expovariate
            rates = [float(r) for r in self.rates]
            n = len(rates)
            plen = self.phase_len
            horizon = self.horizon
            t = 0.0          # continuous time within the profile
            idx = 0          # current phase index
            edge = float(plen)  # end of the current phase
            while True:
                e = expo(1.0)  # unit-rate increment of integrated intensity
                while True:
                    rate = rates[idx % n]
                    if rate > 0.0:
                        span = (edge - t) * rate
                        if e < span:
                            t += e / rate
                            break
                        e -= span
                    t = edge
                    edge += plen
                    idx += 1
                    if t >= horizon:
                        return
                yield (t, 1)

        return _merge_floors(raw(), self.horizon)


class _PeriodicIterator:
    """Analytic iterator over a :class:`PeriodicArrivals` stream.

    ``skip(n)`` advances ``n`` events in O(1) — the warp's lever for
    fast-forwarding a skipped span without generating its arrivals.
    """

    __slots__ = ("_phase", "_interval", "_batch", "_index", "_total")

    def __init__(self, process: "PeriodicArrivals"):
        self._phase = process.phase
        self._interval = process.interval
        self._batch = process.batch
        self._index = 0
        self._total = process.num_events

    def __iter__(self):
        return self

    def __next__(self) -> ArrivalEvent:
        i = self._index
        if i >= self._total:
            raise StopIteration
        self._index = i + 1
        return (self._phase + i * self._interval, self._batch)

    def skip(self, n: int) -> None:
        self._index += n


@dataclass(frozen=True)
class PeriodicArrivals(ArrivalProcess):
    """Exactly-periodic arrivals: ``batch`` tasks every ``interval``
    steps starting at ``phase``, until ``horizon``.

    The only process the steady-state warp keeps running under: its
    recurrence structure is what the warp's cycle detector recognizes,
    and its iterator supports O(1) ``skip``.
    """

    interval: int
    horizon: int
    batch: int = 1
    phase: int = 0
    is_periodic = True

    def __post_init__(self):
        if self.interval <= 0:
            raise ValueError(f"interval must be > 0, got {self.interval!r}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {self.horizon!r}")
        if self.batch <= 0:
            raise ValueError(f"batch must be > 0, got {self.batch!r}")
        if not 0 <= self.phase < self.horizon:
            raise ValueError(
                f"phase must be in [0, horizon), got {self.phase!r}")

    @property
    def num_events(self) -> int:
        return len(range(self.phase, self.horizon, self.interval))

    @property
    def total_tasks(self) -> int:
        return self.num_events * self.batch

    def events(self) -> _PeriodicIterator:
        return _PeriodicIterator(self)


def _parse_kv(body: str, spec: str) -> dict:
    fields = {}
    for item in body.split(","):
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep:
            raise ValueError(
                f"bad arrival spec {spec!r}: expected key=value, got {item!r}")
        fields[key.strip()] = value.strip()
    return fields


def _pop_int(fields: dict, key: str, spec: str, default=None) -> int:
    if key not in fields:
        if default is None:
            raise ValueError(f"arrival spec {spec!r} needs {key}=")
        return default
    return int(fields.pop(key))


def parse_arrivals(spec: str) -> ArrivalProcess:
    """Parse a CLI arrival spec string into a process.

    Formats (``seed`` defaults to 0 where it applies)::

        poisson:rate=0.05,horizon=100000[,seed=N]
        burst:rate=0.01,horizon=100000[,min=1][,max=8][,seed=N]
        diurnal:rates=0.01/0.2/0.05,phase=5000,horizon=100000[,seed=N]
        periodic:interval=20,horizon=100000[,batch=1][,phase=0]
    """
    kind, sep, body = spec.partition(":")
    if not sep:
        raise ValueError(
            f"bad arrival spec {spec!r}: expected kind:key=value,...")
    kind = kind.strip()
    fields = _parse_kv(body, spec)
    try:
        if kind == "poisson":
            process = PoissonArrivals(
                rate=float(fields.pop("rate")),
                horizon=_pop_int(fields, "horizon", spec),
                seed=_pop_int(fields, "seed", spec, 0))
        elif kind == "burst":
            process = BurstArrivals(
                rate=float(fields.pop("rate")),
                horizon=_pop_int(fields, "horizon", spec),
                min_size=_pop_int(fields, "min", spec, 1),
                max_size=_pop_int(fields, "max", spec, 8),
                seed=_pop_int(fields, "seed", spec, 0))
        elif kind == "diurnal":
            process = DiurnalArrivals(
                rates=tuple(float(r)
                            for r in fields.pop("rates").split("/")),
                phase_len=_pop_int(fields, "phase", spec),
                horizon=_pop_int(fields, "horizon", spec),
                seed=_pop_int(fields, "seed", spec, 0))
        elif kind == "periodic":
            process = PeriodicArrivals(
                interval=_pop_int(fields, "interval", spec),
                horizon=_pop_int(fields, "horizon", spec),
                batch=_pop_int(fields, "batch", spec, 1),
                phase=_pop_int(fields, "phase", spec, 0))
        else:
            raise ValueError(
                f"unknown arrival kind {kind!r}; choose "
                f"poisson/burst/diurnal/periodic")
    except KeyError as missing:
        raise ValueError(
            f"arrival spec {spec!r} needs {missing.args[0]}=") from None
    if fields:
        raise ValueError(
            f"arrival spec {spec!r} has unknown keys {sorted(fields)}")
    return process
