"""The open-loop driver: feeds an arrival process into a running engine.

One driver instance rides along with one protocol engine (each
multi-app lane gets its own).  It keeps exactly **one** arrival timer
on the calendar at a time — the next event of the lazy stream — so the
calendar never holds a materialized day of traffic.  When the timer
fires it offers the event's tasks to the admission policy, credits the
admitted count to the root repository (the same refill-and-kick
sequence the fault layer uses when reclaiming lost tasks), and pulls
the next event from the iterator.

Latency pairing: tasks in this model are indistinguishable, so the
driver attributes each completion to the **oldest outstanding arrival**
(FIFO).  For fungible tasks this relabeling is exact — the multiset of
sojourn latencies under any admissible attribution has the same totals,
and FIFO is the canonical minimal-spread choice — and it needs only a
deque of admitted arrival timestamps whose length equals the
in-system count (bounded by the admission policy, not the stream
length).

Warp protocol: the driver exposes ``fingerprint_state`` (and a class
``id``) so the warp's canonicalizer treats its timer as a legitimate
calendar citizen, plus snapshot/apply hooks so an exactly-periodic
arrival pattern can be fast-forwarded — counters scale by ``k``, the
latency sketch replays one period's template with weight ``k``, the
pending deque and admission state translate in time, and the arrival
iterator ``skip``s the elided events.  The result of a warped run is
bit-identical to the exact run, latency fold included.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .admission import AlwaysAdmit
from .slo import LatencySketch, ServiceStats

__all__ = ["OpenLoopDriver"]


class OpenLoopDriver:
    """Streams one arrival process into one engine; accumulates SLOs."""

    #: Calendar-owner identity for the warp canonicalizer.  Node agents
    #: use their non-negative tree ids; -1 is reserved for the driver.
    id = -1

    __slots__ = ("engine", "arrivals", "admission", "_policy", "_iter",
                 "_next", "offered", "admitted", "dropped", "completed",
                 "events_emitted", "pending", "pending_high_water",
                 "sketch", "busy_time", "_busy_since", "saturated_time",
                 "_sat_since", "_template", "_root")

    def __init__(self, engine, arrivals, admission=None):
        self.engine = engine
        self.arrivals = arrivals
        self.admission = admission if admission is not None else AlwaysAdmit()
        self._policy = self.admission.state()
        self._iter = arrivals.events()
        self._next = None
        self.offered = 0
        self.admitted = 0
        self.dropped = 0
        self.completed = 0
        self.events_emitted = 0
        #: Arrival timestamps of admitted, not-yet-completed tasks.
        self.pending = deque()
        self.pending_high_water = 0
        self.sketch = LatencySketch()
        self.busy_time = 0          # closed in-service interval total
        self._busy_since = None     # open interval start (in_system > 0)
        self.saturated_time = 0     # closed backlogged-repository total
        self._sat_since = None      # open interval start (undispensed > 0)
        self._template = None       # per-period latencies while warp-armed
        self._root = None

    # -- engine lifecycle -------------------------------------------------

    def arm(self) -> None:
        engine = self.engine
        self._root = engine.nodes[engine.tree.root]
        self._schedule_next()

    def _schedule_next(self) -> None:
        nxt = next(self._iter, None)
        self._next = nxt
        if nxt is not None:
            env = self.engine.env
            # Events scheduled before the app's staggered arrival time
            # (multi-app lanes arm late) land at arm time instead.
            time = nxt[0]
            env.call_at(time if time >= env.now else env.now, self._fire)

    def _fire(self) -> None:
        engine = self.engine
        now = engine.env.now
        count = self._next[1]
        self.events_emitted += 1
        self.offered += count
        grant = self._policy.admit(now, count, self.admitted - self.completed)
        if not 0 <= grant <= count:
            raise ValueError(
                f"admission policy {self.admission!r} granted {grant} "
                f"of {count} at t={now}")
        if grant < count:
            self.dropped += count - grant
        if grant:
            if self.admitted == self.completed:
                self._busy_since = now
            self.admitted += grant
            engine.num_tasks += grant
            pending = self.pending
            for _ in range(grant):
                pending.append(now)
            if len(pending) > self.pending_high_water:
                self.pending_high_water = len(pending)
            root = self._root
            if root.undispensed <= 0:
                self._sat_since = now
            # Refill the repository and kick dispatch — same sequence
            # the fault layer uses when reclaiming pending losses.
            root.undispensed += grant
            engine.repository_exhausted_at = None
            root.try_start_compute()
            if root.current_transfer is None:
                root.try_send()
            elif root.interruptible:
                root._maybe_preempt()
        self._schedule_next()

    def on_completion(self, now) -> None:
        """Called by the engine for every task completion, before any
        warp hook runs (the template below depends on that order)."""
        arrived = self.pending.popleft()
        latency = now - arrived
        self.completed += 1
        self.sketch.observe(latency)
        if self._template is not None:
            self._template.append(latency)
        if self.completed == self.admitted and self._busy_since is not None:
            self.busy_time += now - self._busy_since
            self._busy_since = None

    def on_repository_exhausted(self, now) -> None:
        if self._sat_since is not None:
            self.saturated_time += now - self._sat_since
            self._sat_since = None

    @property
    def exhausted(self) -> bool:
        """True once the arrival stream has emitted its last event."""
        return self._next is None

    def finalize(self) -> ServiceStats:
        now = self.engine.env.now
        return ServiceStats.from_sketch(
            self.sketch,
            offered=self.offered, admitted=self.admitted,
            dropped=self.dropped, completed=self.completed,
            busy_time=self._closed(self.busy_time, self._busy_since, now),
            saturated_time=self._closed(
                self.saturated_time, self._sat_since, now),
            makespan=self.engine.last_completion_time,
            pending_high_water=self.pending_high_water)

    # -- warp protocol ----------------------------------------------------

    @staticmethod
    def _closed(total, since, now):
        return total if since is None else total + (now - since)

    def fingerprint_state(self, now) -> tuple:
        """Time-relative state for the warp's cycle detector.  Two
        instants with equal tuples (and equal node/calendar states)
        evolve identically given the stream's periodicity."""
        nxt = self._next
        return ("openloop",
                self._root.undispensed,
                tuple(now - t for t in self.pending),
                None if nxt is None else (nxt[0] - now, nxt[1]),
                self._policy.fingerprint_state(now),
                self._busy_since is not None,
                self._sat_since is not None)

    def next_event_delta(self, now):
        nxt = self._next
        return None if nxt is None else nxt[0] - now

    def warp_snapshot(self, now) -> tuple:
        return (self.offered, self.admitted, self.dropped, self.completed,
                self.events_emitted,
                self._closed(self.busy_time, self._busy_since, now),
                self._closed(self.saturated_time, self._sat_since, now))

    def begin_template(self) -> None:
        self._template = []

    def discard_template(self) -> None:
        self._template = None

    def warp_periods_cap(self, d_events: int) -> int:
        """Max whole periods the warp may skip, leaving one full period
        of events (plus the already-scheduled next event) to simulate
        exactly before the stream runs dry."""
        total = self.arrivals.num_events
        if total is None or d_events <= 0:
            return 0
        remaining = total - self.events_emitted - 1
        return remaining // d_events - 1

    def warp_apply(self, k: int, shift, prev: tuple, now) -> None:
        """Fast-forward ``k`` periods: scale counters by the per-period
        deltas against the armed snapshot ``prev``, replay the latency
        template with weight ``k``, and translate all timestamps by
        ``shift`` (the warp shifts the calendar timer itself)."""
        d_offered = self.offered - prev[0]
        d_admitted = self.admitted - prev[1]
        d_dropped = self.dropped - prev[2]
        d_completed = self.completed - prev[3]
        d_events = self.events_emitted - prev[4]
        self.offered += k * d_offered
        self.admitted += k * d_admitted
        self.dropped += k * d_dropped
        self.completed += k * d_completed
        self.events_emitted += k * d_events
        self.engine.num_tasks += k * d_admitted
        busy_now = self._closed(self.busy_time, self._busy_since, now)
        self.busy_time += k * (busy_now - prev[5])
        if self._busy_since is not None:
            self._busy_since += shift
        sat_now = self._closed(self.saturated_time, self._sat_since, now)
        self.saturated_time += k * (sat_now - prev[6])
        if self._sat_since is not None:
            self._sat_since += shift
        for latency in self._template or ():
            self.sketch.observe(latency, k)
        self._template = None
        if self.pending:
            self.pending = deque(t + shift for t in self.pending)
        self._policy.shift(shift)
        nxt = self._next
        if nxt is not None:
            self._next = (nxt[0] + shift, nxt[1])
            skipped = k * d_events
            skip = getattr(self._iter, "skip", None)
            if skip is not None:
                skip(skipped)
            else:
                iterator = self._iter
                for _ in range(skipped):
                    next(iterator)
