"""O(1)-memory streaming SLO folds: sojourn-latency quantiles,
utilization, and time-in-saturation.

A million-arrival day must never retain a per-task latency list, so
quantiles come from :class:`LatencySketch` — a DDSketch-style
log-spaced-bucket estimator.  A value ``v > 0`` lands in bucket
``ceil(log_gamma(v))`` with ``gamma = (1 + alpha) / (1 - alpha)``; the
bucket is reported back as its logarithmic midpoint
``2 * gamma**i / (gamma + 1)``.  Because bucket ``i`` covers
``(gamma**(i-1), gamma**i]``, the midpoint is within a factor
``gamma**(1/2)`` of every value in the bucket, giving a **guaranteed
relative error of at most ``alpha``** on every reported quantile
(default ``alpha = 0.01`` → ±1%), independent of stream length or
shape.  Memory is one dict entry per *occupied* bucket — about 700
buckets span latencies from 1 to 10**6 at 1% error — and observation is
O(1).  Sketches with equal ``alpha`` merge exactly (bucket-wise sum),
which is how multi-app runs fold per-lane stats into a platform-wide
view.

Mean and max are tracked exactly alongside (integer/Fraction
arithmetic, no float drift).  :class:`ServiceStats` is the frozen
result surface hung off ``SimulationResult.service``; its
``fingerprint_parts`` feed the same digest contract the warp
equivalence tests rely on, so "warp run == exact run" extends to the
entire latency fold, not just the summary quantiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

__all__ = ["LatencySketch", "ServiceStats"]

Scalar = Union[int, float, "Fraction"]

#: Default relative-error target for quantile estimates (±1%).
DEFAULT_ALPHA = 0.01


class LatencySketch:
    """Streaming quantile sketch with bounded relative error ``alpha``.

    ``observe(value, weight)`` is count-weighted so the warp can replay
    one period's latencies ``k`` times in O(period) instead of O(k);
    an exact run observing each value individually produces the *same*
    bucket table, which is what makes the fold warp-invariant.
    """

    __slots__ = ("alpha", "_log_gamma", "buckets", "zero_count",
                 "count", "total", "max", "min")

    def __init__(self, alpha: float = DEFAULT_ALPHA):
        if not 0 < alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {alpha!r}")
        self.alpha = alpha
        self._log_gamma = math.log((1 + alpha) / (1 - alpha))
        self.buckets = {}       # bucket index -> weight
        self.zero_count = 0     # weight of values <= 0 (reported as 0)
        self.count = 0
        self.total = 0          # exact sum (int/Fraction preserved)
        self.max = None
        self.min = None

    def observe(self, value: Scalar, weight: int = 1) -> None:
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight!r}")
        self.count += weight
        self.total += value * weight
        if self.max is None or value > self.max:
            self.max = value
        if self.min is None or value < self.min:
            self.min = value
        v = float(value)
        if v <= 0.0:
            self.zero_count += weight
        else:
            idx = math.ceil(math.log(v) / self._log_gamma)
            buckets = self.buckets
            buckets[idx] = buckets.get(idx, 0) + weight

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (0 <= q <= 1); None on an empty
        sketch.  Matches the rank convention of a sorted list indexed at
        ``floor(q * (n - 1))``, so it is directly comparable to
        ``statistics.quantiles(data, n=100, method="inclusive")``."""
        if self.count == 0:
            return None
        rank = int(q * (self.count - 1))
        if rank < self.zero_count:
            return 0.0
        cumulative = self.zero_count
        gamma = (1 + self.alpha) / (1 - self.alpha)
        for idx in sorted(self.buckets):
            cumulative += self.buckets[idx]
            if cumulative > rank:
                return 2 * gamma ** idx / (gamma + 1)
        return float(self.max)

    def merge(self, other: "LatencySketch") -> None:
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with alpha {self.alpha!r} "
                f"and {other.alpha!r}")
        buckets = self.buckets
        for idx, weight in other.buckets.items():
            buckets[idx] = buckets.get(idx, 0) + weight
        self.zero_count += other.zero_count
        self.count += other.count
        self.total += other.total
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min

    def canonical(self) -> Tuple[Tuple[int, int], ...]:
        """Deterministic bucket table for fingerprints and rebuilds."""
        return tuple(sorted(self.buckets.items()))

    @classmethod
    def from_canonical(cls, alpha: float,
                       buckets: Sequence[Tuple[int, int]],
                       zero_count: int) -> "LatencySketch":
        sketch = cls(alpha)
        sketch.buckets = dict(buckets)
        sketch.zero_count = zero_count
        sketch.count = zero_count + sum(w for _, w in buckets)
        return sketch


@dataclass(frozen=True)
class ServiceStats:
    """Frozen service-level metrics for one open-loop run (or a merged
    multi-app platform view).

    ``busy_time`` integrates intervals with at least one admitted task
    uncompleted; ``saturated_time`` integrates intervals where the root
    repository held backlog the fabric had not yet absorbed
    (``undispensed > 0``) — time the platform was the bottleneck rather
    than the arrival stream.  Quantiles carry the sketch's ±``alpha``
    relative-error bound; mean and max are exact.
    """

    offered: int
    admitted: int
    dropped: int
    completed: int
    latency_total: Scalar
    latency_max: Optional[Scalar]
    p50: Optional[float]
    p95: Optional[float]
    p99: Optional[float]
    busy_time: Scalar
    saturated_time: Scalar
    makespan: Scalar
    pending_high_water: int
    alpha: float
    latency_buckets: Tuple[Tuple[int, int], ...]
    zero_latency: int

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.offered if self.offered else 0.0

    @property
    def latency_mean(self) -> float:
        return (float(self.latency_total) / self.completed
                if self.completed else 0.0)

    @property
    def utilization(self) -> float:
        return (float(self.busy_time) / float(self.makespan)
                if self.makespan else 0.0)

    @property
    def saturation(self) -> float:
        return (float(self.saturated_time) / float(self.makespan)
                if self.makespan else 0.0)

    def fingerprint_parts(self) -> tuple:
        """Hashable parts for the result fingerprint.  Quantiles are
        derived from the bucket table, so the table itself (plus the
        exact tallies) pins the entire fold."""
        return ("service", self.offered, self.admitted, self.dropped,
                self.completed, repr(self.latency_total),
                repr(self.latency_max), repr(self.busy_time),
                repr(self.saturated_time), repr(self.makespan),
                self.alpha, self.latency_buckets, self.zero_latency)

    @classmethod
    def from_sketch(cls, sketch: LatencySketch, *, offered: int,
                    admitted: int, dropped: int, completed: int,
                    busy_time: Scalar, saturated_time: Scalar,
                    makespan: Scalar,
                    pending_high_water: int) -> "ServiceStats":
        return cls(
            offered=offered, admitted=admitted, dropped=dropped,
            completed=completed,
            latency_total=sketch.total,
            latency_max=sketch.max,
            p50=sketch.quantile(0.50),
            p95=sketch.quantile(0.95),
            p99=sketch.quantile(0.99),
            busy_time=busy_time, saturated_time=saturated_time,
            makespan=makespan, pending_high_water=pending_high_water,
            alpha=sketch.alpha,
            latency_buckets=sketch.canonical(),
            zero_latency=sketch.zero_count)

    @classmethod
    def merged(cls, parts: Sequence["ServiceStats"],
               makespan: Scalar) -> "ServiceStats":
        """Fold per-app stats into one platform-wide view.  Counts and
        bucket tables sum exactly; ``busy_time``/``saturated_time`` are
        summed app-time (they can exceed ``makespan`` when apps overlap,
        like CPU-seconds on a multicore box)."""
        if not parts:
            raise ValueError("merged() needs at least one ServiceStats")
        sketch = LatencySketch.from_canonical(
            parts[0].alpha, parts[0].latency_buckets, parts[0].zero_latency)
        sketch.total = parts[0].latency_total
        sketch.max = parts[0].latency_max
        for other in parts[1:]:
            sketch.merge(LatencySketch.from_canonical(
                other.alpha, other.latency_buckets, other.zero_latency))
            sketch.total += other.latency_total
            if other.latency_max is not None and (
                    sketch.max is None or other.latency_max > sketch.max):
                sketch.max = other.latency_max
        return cls.from_sketch(
            sketch,
            offered=sum(p.offered for p in parts),
            admitted=sum(p.admitted for p in parts),
            dropped=sum(p.dropped for p in parts),
            completed=sum(p.completed for p in parts),
            busy_time=sum(p.busy_time for p in parts),
            saturated_time=sum(p.saturated_time for p in parts),
            makespan=makespan,
            pending_high_water=max(p.pending_high_water for p in parts))
