"""Pluggable admission/drop policies for open-loop service runs.

When arrivals outpace the platform, something has to give: either the
root repository queue grows without bound, or the front door sheds load.
A policy is a frozen **spec** (deterministic repr, safe to hash into
checkpoint digests) whose :meth:`AdmissionPolicy.state` mints the
per-run mutable decision state.  The split mirrors
``ArrivalProcess``/iterator: specs are shareable and immutable, states
are cheap and disposable.

States expose three methods the open-loop driver relies on:

``admit(now, count, in_system)``
    How many of ``count`` tasks arriving at ``now`` to accept, given
    ``in_system`` tasks already admitted and not yet completed.  The
    remainder is dropped (counted, never retried).
``fingerprint_state(now)``
    A hashable, time-relative summary for the warp's cycle detector —
    two instants with equal summaries must make identical decisions
    forever after, given identical subsequent streams.
``shift(dt)``
    Translate any internal absolute timestamps forward by ``dt`` after
    a warp jump.

Token-bucket arithmetic uses :class:`fractions.Fraction` so refill at
e.g. 1/7 tokens per step is exact — float drift would eventually
desynchronize the warp's replayed periods from an exact run.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Union

__all__ = ["AdmissionPolicy", "AlwaysAdmit", "QueueDepthBound",
           "TokenBucket", "parse_admission"]


class AdmissionPolicy:
    """Base class for admission policy specs."""

    def state(self):
        """Return a fresh per-run mutable decision state."""
        raise NotImplementedError


@dataclass(frozen=True)
class AlwaysAdmit(AdmissionPolicy):
    """Admit everything; drops never happen (the default)."""

    def state(self):
        return _AlwaysState()


class _AlwaysState:
    __slots__ = ()

    def admit(self, now, count, in_system):
        return count

    def fingerprint_state(self, now):
        return ()

    def shift(self, dt):
        pass


@dataclass(frozen=True)
class QueueDepthBound(AdmissionPolicy):
    """Admit only while fewer than ``limit`` tasks are in the system.

    ``in_system`` counts admitted-but-uncompleted tasks (queued at the
    repository or in flight), so this bounds total outstanding work —
    the classic finite-buffer M/G/k drop rule.
    """

    limit: int

    def __post_init__(self):
        if self.limit <= 0:
            raise ValueError(f"queue limit must be > 0, got {self.limit!r}")

    def state(self):
        return _QueueState(self.limit)


class _QueueState:
    __slots__ = ("limit",)

    def __init__(self, limit):
        self.limit = limit

    def admit(self, now, count, in_system):
        room = self.limit - in_system
        if room <= 0:
            return 0
        return count if count <= room else room

    def fingerprint_state(self, now):
        return ()

    def shift(self, dt):
        pass


@dataclass(frozen=True)
class TokenBucket(AdmissionPolicy):
    """Token-bucket rate limiter: ``rate`` tokens per timestep, at most
    ``burst`` banked; each admitted task spends one token.

    ``rate`` may be an int, a float, or a string like ``"1/7"`` — all
    are converted to an exact :class:`~fractions.Fraction`.
    """

    rate: Union[int, float, str, Fraction]
    burst: int

    def __post_init__(self):
        rate = Fraction(self.rate)
        object.__setattr__(self, "rate", rate)
        if rate <= 0:
            raise ValueError(f"token rate must be > 0, got {self.rate!r}")
        if self.burst <= 0:
            raise ValueError(f"burst must be > 0, got {self.burst!r}")

    def state(self):
        return _TokenState(self.rate, self.burst)


class _TokenState:
    __slots__ = ("rate", "burst", "tokens", "last")

    def __init__(self, rate, burst):
        self.rate = rate
        self.burst = burst
        self.tokens = Fraction(burst)  # starts full
        self.last = 0

    def admit(self, now, count, in_system):
        if now != self.last:
            tokens = self.tokens + self.rate * (now - self.last)
            burst = self.burst
            self.tokens = Fraction(burst) if tokens > burst else tokens
            self.last = now
        grant = int(self.tokens)
        if grant > count:
            grant = count
        if grant:
            self.tokens -= grant
        return grant

    def fingerprint_state(self, now):
        tokens = self.tokens
        return (tokens.numerator, tokens.denominator, now - self.last)

    def shift(self, dt):
        self.last += dt


def parse_admission(spec: str) -> AdmissionPolicy:
    """Parse a CLI admission spec string into a policy.

    Formats::

        always
        queue:limit=64
        token:rate=0.05,burst=16      (rate also accepts p/q, e.g. 1/20)
    """
    kind, _, body = spec.partition(":")
    kind = kind.strip()
    fields = {}
    for item in body.split(","):
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep:
            raise ValueError(
                f"bad admission spec {spec!r}: expected key=value, "
                f"got {item!r}")
        fields[key.strip()] = value.strip()
    try:
        if kind == "always":
            policy = AlwaysAdmit()
        elif kind == "queue":
            policy = QueueDepthBound(limit=int(fields.pop("limit")))
        elif kind == "token":
            policy = TokenBucket(rate=Fraction(fields.pop("rate")),
                                 burst=int(fields.pop("burst")))
        else:
            raise ValueError(
                f"unknown admission kind {kind!r}; choose always/queue/token")
    except KeyError as missing:
        raise ValueError(
            f"admission spec {spec!r} needs {missing.args[0]}=") from None
    if fields:
        raise ValueError(
            f"admission spec {spec!r} has unknown keys {sorted(fields)}")
    return policy
