"""Service mode: open-loop streaming arrivals, admission control, and
latency SLOs.

The closed-bag engines answer "how fast does this platform drain N
tasks?"; this package answers the production question — "what latency
and drop rate does this platform deliver under sustained traffic?".
See ``docs/architecture.md`` (Service mode) for the design tour.
"""

from .admission import (AdmissionPolicy, AlwaysAdmit, QueueDepthBound,
                        TokenBucket, parse_admission)
from .arrivals import (ArrivalProcess, BurstArrivals, DiurnalArrivals,
                       PeriodicArrivals, PoissonArrivals, parse_arrivals)
from .driver import OpenLoopDriver
from .slo import LatencySketch, ServiceStats

__all__ = [
    "AdmissionPolicy", "AlwaysAdmit", "QueueDepthBound", "TokenBucket",
    "parse_admission",
    "ArrivalProcess", "PoissonArrivals", "BurstArrivals",
    "DiurnalArrivals", "PeriodicArrivals", "parse_arrivals",
    "OpenLoopDriver", "LatencySketch", "ServiceStats",
]
