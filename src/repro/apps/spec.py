"""Application and workload specifications for multi-application runs.

The paper schedules one bag of independent tasks; production traffic is
*many* concurrent bags contending for the same platform (Legrand &
Touati's non-cooperative bag-of-tasks game).  :class:`Application`
describes one bag — how many tasks, how big each is, when the bag
arrives, and how urgent it is — and :class:`Workload` is what the public
:func:`repro.simulate` front door accepts in place of the old positional
``num_tasks`` int: a plain int, one application, or a list of them all
coerce via :meth:`Workload.of`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Sequence, Tuple, Union

from ..errors import ProtocolError

__all__ = ["Application", "Workload", "AppResult"]


@dataclass(frozen=True)
class Application:
    """One bag of independent tasks submitted to the shared platform.

    The defaults make a single default application behave exactly like
    the legacy ``num_tasks`` int: size-1 tasks, present at t=0, neutral
    priority, sourced at the repository root.
    """

    #: Number of tasks in the bag (the finite workload).  0 is only
    #: meaningful together with ``arrivals`` (open-loop apps stream).
    tasks: int = 0
    #: Display name (defaults to ``app<i>`` at result time).
    name: str = ""
    #: Relative task size: scales both the per-task compute time and the
    #: transfer volume.  1 reproduces the paper's unit tasks.
    size: Union[int, Fraction] = 1
    #: Virtual time at which the bag arrives (its agents start
    #: requesting).  0 means present from the start.
    arrival: int = 0
    #: Priority under the ``selfish`` allocator — lower is more urgent,
    #: matching the protocol's ascending ``(c, node id)`` keys.  Ignored
    #: by ``maxmin``/``fairshare``.
    priority: int = 0
    #: Source node hosting the bag's repository.  ``None`` means the
    #: platform root; any other host makes the bag's tasks fan out from
    #: that node over shortest routes (graph platforms).
    source: Optional[int] = None
    #: Open-loop arrival process replacing the finite bag (service
    #: mode).  Mutually exclusive with a non-zero ``tasks``.
    arrivals: Optional[object] = None
    #: Admission policy for open-loop arrivals (default: admit all).
    admission: Optional[object] = None

    def __post_init__(self):
        if self.tasks < 0:
            raise ProtocolError(
                f"application tasks must be >= 0, got {self.tasks}")
        if self.size <= 0:
            raise ProtocolError(
                f"application task size must be > 0, got {self.size}")
        if self.arrival < 0:
            raise ProtocolError(
                f"application arrival must be >= 0, got {self.arrival}")
        if self.arrivals is not None and self.tasks:
            raise ProtocolError(
                "an open-loop application streams its tasks: pass "
                f"arrivals= with tasks=0, not tasks={self.tasks}")
        if self.admission is not None and self.arrivals is None:
            raise ProtocolError("admission= requires arrivals=")

    def label(self, index: int) -> str:
        """Display name, falling back to ``app<index>``."""
        return self.name or f"app{index}"

    def __repr__(self):
        # Stable repr contract: checkpoint journals digest workload
        # reprs, so fields added after the multi-app release only
        # appear when set — a closed-bag spec digests exactly as it
        # did before service mode existed.
        parts = [f"tasks={self.tasks!r}", f"name={self.name!r}",
                 f"size={self.size!r}", f"arrival={self.arrival!r}",
                 f"priority={self.priority!r}", f"source={self.source!r}"]
        if self.arrivals is not None:
            parts.append(f"arrivals={self.arrivals!r}")
        if self.admission is not None:
            parts.append(f"admission={self.admission!r}")
        return f"Application({', '.join(parts)})"


@dataclass(frozen=True)
class Workload:
    """What to run: either a plain bag of ``tasks`` unit tasks (the
    legacy degenerate case) or a tuple of :class:`Application`\\ s.

    ``Workload.of`` coerces every legacy shape, so callers can keep
    passing a plain int where a workload is expected.
    """

    #: Unit tasks of the single default application (ignored when
    #: ``apps`` is non-empty).
    tasks: int = 0
    #: Explicit applications; empty means the single default app.
    apps: Tuple[Application, ...] = ()
    #: Open-loop arrival process for the single default application
    #: (service mode).  Mutually exclusive with ``apps`` — per-app
    #: streams go on the :class:`Application` specs instead.
    arrivals: Optional[object] = None
    #: Admission policy paired with ``arrivals``.
    admission: Optional[object] = None

    def __post_init__(self):
        if not self.apps and self.tasks < 0:
            raise ProtocolError(
                f"workload tasks must be >= 0, got {self.tasks}")
        if self.arrivals is not None:
            if self.apps:
                raise ProtocolError(
                    "per-app arrival processes go on the Application "
                    "specs, not the Workload")
            if self.tasks:
                raise ProtocolError(
                    "an open-loop workload streams its tasks: pass "
                    f"arrivals= with tasks=0, not tasks={self.tasks}")
        elif self.admission is not None:
            raise ProtocolError("admission= requires arrivals=")

    def __repr__(self):
        # Same stable-repr contract as Application (checkpoint digests).
        parts = [f"tasks={self.tasks!r}", f"apps={self.apps!r}"]
        if self.arrivals is not None:
            parts.append(f"arrivals={self.arrivals!r}")
        if self.admission is not None:
            parts.append(f"admission={self.admission!r}")
        return f"Workload({', '.join(parts)})"

    @classmethod
    def of(cls, value) -> "Workload":
        """Coerce an int / Application / sequence / Workload."""
        if isinstance(value, Workload):
            return value
        if isinstance(value, int):
            return cls(tasks=value)
        if isinstance(value, Application):
            return cls(apps=(value,))
        try:
            apps = tuple(value)
        except TypeError:
            raise ProtocolError(
                f"cannot build a Workload from {value!r}") from None
        if not all(isinstance(a, Application) for a in apps):
            raise ProtocolError(
                "a workload sequence must contain only Applications")
        if not apps:
            raise ProtocolError("a workload needs at least one application")
        return cls(apps=apps)

    @property
    def applications(self) -> Tuple[Application, ...]:
        """The applications to run — synthesizing the single default app
        from ``tasks`` when none were given explicitly."""
        if self.apps:
            return self.apps
        return (Application(tasks=self.tasks, arrivals=self.arrivals,
                            admission=self.admission),)

    @property
    def is_multi(self) -> bool:
        """True when applications were specified explicitly (even one:
        it may carry a non-default size/arrival/priority)."""
        return bool(self.apps)

    @property
    def total_tasks(self) -> int:
        return sum(app.tasks for app in self.applications)


@dataclass(frozen=True)
class AppResult:
    """Per-application slice of a multi-application run."""

    #: The spec this result belongs to.
    app: Application
    #: Position in the workload's application tuple.
    index: int
    #: Completion times of this app's tasks (absolute sim time).
    completion_times: Tuple[int, ...]
    #: Tasks of this app computed by each overlay node.
    per_node_computed: Tuple[int, ...]
    #: Absolute sim time of the app's last completion (0 if no tasks).
    makespan: int
    #: Steady-state rate over the middle window of the app's run
    #: (tasks per timestep, exact; 0 for trivial runs).
    steady_rate: Fraction
    #: Preemptions / transfers attributable to this app's agents.
    preemptions: int = 0
    transfers: int = 0
    #: Per-app telemetry snapshot (``None`` unless telemetry was on).
    #: Excluded from :meth:`fingerprint_parts` like the run-level one.
    telemetry: Optional[object] = None
    #: Per-app service stats (``None`` unless the app is open-loop).
    service: Optional[object] = None

    @property
    def name(self) -> str:
        return self.app.label(self.index)

    @property
    def duration(self) -> int:
        """Makespan relative to the app's arrival."""
        if self.makespan == 0 and not self.completion_times:
            return 0
        return self.makespan - self.app.arrival

    def fingerprint_parts(self) -> tuple:
        """Deterministic parts folded into the run fingerprint (N > 1
        only — see :meth:`SimulationResult.fingerprint`)."""
        parts = (self.name, self.index, self.app.tasks, self.app.size,
                 self.app.arrival, self.app.priority,
                 self.completion_times, self.per_node_computed,
                 self.makespan, self.steady_rate,
                 self.preemptions, self.transfers)
        # Post-multi-app fields fold in only when set, so pre-service
        # fingerprints are preserved bit-for-bit.
        if self.app.source is not None:
            parts += ("source", self.app.source)
        if self.service is not None:
            parts += self.service.fingerprint_parts()
        return parts
