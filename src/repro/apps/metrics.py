"""Fairness and efficiency metrics over per-application rates.

Small and dependency-free on purpose: the :class:`~repro.protocols.result.
SimulationResult` properties delegate here, and the multi-app ablation
aggregates these across seeds.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Sequence, Tuple

__all__ = ["jain_index", "price_of_anarchy", "steady_window_rate",
           "fault_fairness"]


def jain_index(rates: Sequence) -> float:
    """Jain's fairness index ``(Σx)² / (n·Σx²)`` over per-app rates.

    1.0 when every application gets the same rate, ``1/n`` when a single
    app takes everything.  All-zero rates (nobody ran) count as perfectly
    fair.  Exact arithmetic until the final float conversion.
    """
    if not rates:
        return 1.0
    total = sum(Fraction(r) for r in rates)
    squares = sum(Fraction(r) * Fraction(r) for r in rates)
    if squares == 0:
        return 1.0
    return float(total * total / (len(rates) * squares))


def price_of_anarchy(rates: Sequence, cooperative_rate) -> Optional[float]:
    """Cooperative optimal aggregate rate / achieved aggregate rate.

    ≥ 1 when the selfish split wastes throughput; ``None`` when nothing
    was achieved (the ratio would be infinite).
    """
    achieved = sum(Fraction(r) for r in rates)
    if achieved <= 0:
        return None
    return float(Fraction(cooperative_rate) / achieved)


def steady_window_rate(completion_times: Sequence[int],
                       num_tasks: int = 0, arrival: int = 0,
                       makespan: int = 0) -> Fraction:
    """Steady-state rate estimated over the middle third of completions.

    Start-up ramp and wind-down tail are discarded the same way the
    figure-4 threshold metrics do; with fewer than 3 recorded completions
    (or a degenerate window) falls back to the mean rate
    ``num_tasks / (makespan - arrival)``, and to 0 for trivial runs.
    """
    n = len(completion_times)
    if n >= 3:
        lo, hi = n // 3, (2 * n) // 3
        span = completion_times[hi] - completion_times[lo]
        if span > 0:
            return Fraction(hi - lo, span)
    span = makespan - arrival
    if num_tasks > 0 and span > 0:
        return Fraction(num_tasks, span)
    return Fraction(0)


def _window_rate(completion_times: Sequence, lo, hi) -> Fraction:
    """Mean completion rate of one app inside the window ``[lo, hi)``."""
    if hi <= lo:
        return Fraction(0)
    done = sum(1 for t in completion_times if lo <= t < hi)
    return Fraction(done, hi - lo)


def fault_fairness(app_completion_times: Sequence[Sequence],
                   crash_times: Sequence,
                   reclaim_times: Sequence,
                   makespan) -> Tuple[Optional[float], Optional[float]]:
    """Jain fairness of per-app rates before the first fault and after
    the last recovery.

    The pre window is ``[0, first crash)``; the post window is
    ``[last reclaim, makespan)`` — i.e. after every lost task has been
    folded back into the repository, when the protocol should have
    re-converged.  Returns ``(pre, post)``; either is ``None`` when its
    window is empty (no faults, or the run ended mid-recovery).
    """
    if not crash_times:
        return (None, None)
    first_crash = min(crash_times)
    pre = None
    if first_crash > 0:
        pre = jain_index([_window_rate(ct, 0, first_crash)
                          for ct in app_completion_times])
    post = None
    recovered_at = max(reclaim_times) if reclaim_times else max(crash_times)
    if makespan > recovered_at:
        post = jain_index([_window_rate(ct, recovered_at, makespan)
                           for ct in app_completion_times])
    return (pre, post)
