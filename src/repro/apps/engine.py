"""Multi-application protocol engine: N bandwidth-centric agent sets
sharing one platform.

Each application gets a full, independent set of protocol agents over
the *same* overlay tree (so every physical node runs N autonomous
bandwidth-centric schedulers, one per app — Legrand & Touati's
non-cooperative regime), and all their transfers are fluid flows through
**one shared** :class:`~repro.platform.contention.LinkContention`
manager over the physical links.  The per-app bandwidth split is the
manager's allocator policy:

* ``selfish`` — strict-priority filling by ``(app priority, app
  index)``: each app grabs bandwidth greedily in priority order, the
  literal multi-app reading of bandwidth-centric autonomy;
* ``maxmin`` / ``fairshare`` — the PR 6 cooperative allocators, applied
  across all apps' flows at once.

Every lane is a :class:`~repro.protocols.graph_engine.GraphProtocolEngine`
that (a) shares the coordinator's calendar via ``_make_env`` and (b)
shares the coordinator's contention manager, so cross-app rate changes
reschedule exactly the timers they must — on one lane (N=1) nothing is
shared with anyone, no behaviour changes, and the run is bit-identical
by fingerprint to the single-app engine (the property-test anchor, same
pattern as the tree-vs-graph equivalence suite).
"""

from __future__ import annotations

import dataclasses
import sys
from fractions import Fraction
from typing import List, Optional, Sequence, Union

from ..errors import ProtocolError
from ..platform.contention import LinkContention
from ..platform.faults import FaultSchedule
from ..platform.graph import Overlay, PlatformGraph
from ..platform.tree import PlatformTree
from ..protocols.config import PriorityRule, ProtocolConfig
from ..protocols.engine import _MIN_RECURSION_LIMIT
from ..protocols.agents import Transfer
from ..protocols.graph_engine import (GraphFaultDriver, GraphNodeAgent,
                                      GraphProtocolEngine)
from ..protocols.result import SimulationResult
from ..protocols.trace import Tracer
from ..sim import Environment
from ..sim.warp import REASON_MULTI_APP, WarpSummary
from ..steady_state import solve_tree
from .metrics import steady_window_rate
from .spec import Application, AppResult, Workload

__all__ = ["MultiAppEngine"]


class _AppLaneAgent(GraphNodeAgent):
    """Graph agent whose transfer volume is the lane's task size."""

    __slots__ = ()

    def _new_transfer(self, child):
        # Size 1 (an int) makes this byte-for-byte the graph agent's
        # ``Transfer(child, 1)`` — the N=1 bit-identity lever.
        return Transfer(child, self.engine._task_size)


class _AppLane(GraphProtocolEngine):
    """One application's agent set, on the coordinator's shared calendar
    and contention manager."""

    _agent_class = _AppLaneAgent
    _warp_stand_down = REASON_MULTI_APP

    def __init__(self, owner: "MultiAppEngine", app: Application,
                 index: int):
        self._shared_env = owner.env
        self._task_size = app.size
        if owner.allocator == "selfish":
            self._flow_priority = (app.priority, index)
        self.app = app
        self.app_index = index
        super().__init__(
            owner.graph, owner.config, app.tasks,
            overlay=owner.lane_overlay(app),
            record_buffer_timeline=owner.record_buffer_timeline,
            record_completion_times=owner.record_completion_times,
            contention=owner.contention,
            check_invariants=owner.check_invariants,
            fault_driver=owner.fault_driver,
            arrivals=app.arrivals, admission=app.admission)
        # Links are shared *dynamically* through the contention manager;
        # CPUs are shared *statically* — every physical CPU time-shares
        # equally among the task-bearing apps, so each lane sees its
        # compute weights scaled by that count (times the app's task
        # size).  This keeps aggregate compute capacity at the physical
        # 1/w, which is what makes price-of-anarchy ≥ 1 meaningful.
        scale = app.size * owner.cpu_share
        if scale != 1:
            # Transfer volume scales with size alone (agent class);
            # refreshing the cached priority keys only matters under
            # compute-centric ordering.
            for agent in self.nodes:
                agent.w = agent.w * scale
                agent._refresh_prio_key()
            for agent in self.nodes:
                agent.resort_children()

    def _make_env(self) -> Environment:
        return self._shared_env


class MultiAppEngine:
    """One simulation of N concurrent applications on a shared platform.

    Accepts a :class:`PlatformTree` or :class:`PlatformGraph` plus a
    :class:`Workload` (or anything :meth:`Workload.of` coerces).  Runs
    every application's agents on one calendar, collects a per-app
    :class:`AppResult` slice, and merges them into a single
    :class:`SimulationResult` whose ``apps``/``cooperative_rate`` fields
    feed the Jain-index and price-of-anarchy properties.

    A ``faults`` schedule is consumed by one shared
    :class:`~repro.protocols.graph_engine.GraphFaultDriver`: a physical
    fault (link, switch or host) hits every application at once, and each
    lane's agents recover independently — per-app lanes reclaim their own
    losses and re-route on the same healed fabric.  Platform mutations and
    churn remain single-app tree-engine features.
    """

    def __init__(self, platform: Union[PlatformGraph, PlatformTree],
                 workload, config: ProtocolConfig, *,
                 allocator: Optional[str] = None,
                 overlay: Optional[Overlay] = None,
                 record_buffer_timeline: bool = False,
                 record_completion_times: bool = True,
                 faults: Optional[FaultSchedule] = None,
                 check_invariants: bool = False):
        workload = Workload.of(workload)
        self.workload = workload
        self.apps = workload.applications
        self.config = config
        self.record_buffer_timeline = record_buffer_timeline
        self.record_completion_times = record_completion_times
        self.check_invariants = check_invariants
        if isinstance(platform, PlatformTree):
            platform = PlatformGraph.from_tree(platform)
        if faults:
            if config.priority_rule is PriorityRule.FIFO:
                raise ProtocolError(
                    "faults with FIFO ordering are unsupported (reconciling "
                    "a failed node's queued requests is ill-defined)")
            # One private copy, mutated by the shared driver, seen by all
            # lanes.
            platform = platform.copy()
        self.graph = platform
        if overlay is None:
            from ..protocols.topologies import topology_overlay
            overlay = topology_overlay(platform)
        self.overlay = overlay
        self.allocator = allocator if allocator is not None \
            else platform.contention
        if faults and any(a.source is not None and a.source != platform.root
                          for a in self.apps):
            # The shared GraphFaultDriver maps fabric events through ONE
            # overlay; a lane re-rooted at a different source would see
            # fault effects through the wrong host mapping.
            raise ProtocolError(
                "faults with non-root application sources are unsupported")
        #: How many ways each physical CPU is time-shared (apps with no
        #: tasks never compute, so they claim no CPU slice — but an
        #: open-loop app computes even though its initial bag is empty).
        self.cpu_share = sum(1 for a in self.apps
                             if a.tasks > 0 or a.arrivals is not None) or 1
        #: Relay overlays re-rooted at non-default source nodes, shared
        #: by same-source lanes (host set identical to the canonical
        #: overlay's, so per-node rows remap positionally at collect).
        self._source_overlays = {}
        self.env = Environment()
        self.contention = LinkContention(platform.link_capacities(),
                                         self.allocator)
        self.fault_driver: Optional[GraphFaultDriver] = None
        if faults:
            faults.validate_graph(platform, self.overlay)
            self.fault_driver = GraphFaultDriver(
                platform, self.overlay, faults, self.contention,
                check_invariants=check_invariants)
        self.lanes: List[_AppLane] = [
            _AppLane(self, app, i) for i, app in enumerate(self.apps)]
        canon_index = {h: i for i, h in enumerate(self.overlay.hosts)}
        for lane in self.lanes:
            #: Position of each lane row in canonical-overlay host order
            #: (``None`` = identity, the all-apps-source-at-root case).
            lane.host_remap = (
                None if lane.overlay is self.overlay
                else [canon_index[h] for h in lane.overlay.hosts])
        self._finished = False

    def lane_overlay(self, app: Application) -> Overlay:
        """The overlay an application's lane runs on: the canonical one,
        or a relay overlay re-rooted at the app's source node."""
        source = app.source
        if source is None or source == self.graph.root:
            return self.overlay
        cached = self._source_overlays.get(source)
        if cached is None:
            cached = self._source_overlays[source] = (
                self.graph.overlay(root=source))
        return cached

    @property
    def num_tasks(self) -> int:
        return self.workload.total_tasks

    def attach_tracers(self) -> List[Tracer]:
        """Give every lane its own protocol tracer (per-app Perfetto
        lanes); returns them in application order."""
        tracers = []
        for lane in self.lanes:
            tracer = Tracer()
            lane.tracer = tracer
            tracers.append(tracer)
        return tracers

    # ----------------------------------------------------------------- run
    def run(self) -> SimulationResult:
        if self._finished:
            raise ProtocolError("engine already ran; build a new one")
        self._finished = True
        for lane in self.lanes:
            lane._finished = True
            lane._resolve_warp()

        limit = sys.getrecursionlimit()
        if limit < _MIN_RECURSION_LIMIT:
            sys.setrecursionlimit(_MIN_RECURSION_LIMIT)
        try:
            if self.fault_driver is not None:
                # Arm here rather than in the first lane's ``_arm``:
                # staggered arrivals must not delay fault delivery (the
                # fabric can fail before a late app even starts).
                self.fault_driver.arm(self.env)
            for lane in self.lanes:
                if lane.app.arrival == 0:
                    lane._arm()
                else:
                    self.env.call_at(lane.app.arrival, lane._arm)
            self.env.run()
        finally:
            sys.setrecursionlimit(limit)
        return self._collect()

    # ------------------------------------------------------------- results
    def _collect(self) -> SimulationResult:
        lane_results = [lane._collect() for lane in self.lanes]
        cooperative = solve_tree(self.overlay.tree).rate
        app_results = tuple(
            self._app_result(lane, result)
            for lane, result in zip(self.lanes, lane_results))

        if len(self.lanes) == 1:
            # The degenerate case IS the single-app run: reuse its result
            # record verbatim (apps of length 1 stay out of the
            # fingerprint, so bit-identity is preserved by construction).
            return dataclasses.replace(
                lane_results[0], apps=app_results,
                cooperative_rate=cooperative)

        merged_completions = sorted(
            t for result in lane_results for t in result.completion_times)
        sampler_fires = sum(lane.probe.sampler_fires for lane in self.lanes
                            if lane.probe is not None)
        exhausted = [r.repository_exhausted_at for r in lane_results]
        warp = None
        if self.config.warp:
            warp = WarpSummary(applied=False, reason=REASON_MULTI_APP)
        last_completion = max(
            (r.last_completion_time for r in lane_results), default=0)
        services = [r.service for r in lane_results if r.service is not None]
        merged_service = None
        if services:
            from ..service.slo import ServiceStats
            merged_service = ServiceStats.merged(services,
                                                 makespan=last_completion)
        # Lanes re-rooted at a distinct source index their per-node rows
        # in their own overlay's host order; remap into canonical order
        # before summing (identity when every app sources at the root).
        rows = [
            [_remap_row(r.per_node_computed, lane.host_remap)
             for lane, r in zip(self.lanes, lane_results)],
            [_remap_row(r.per_node_max_buffers, lane.host_remap)
             for lane, r in zip(self.lanes, lane_results)],
            [_remap_row(r.per_node_max_held, lane.host_remap)
             for lane, r in zip(self.lanes, lane_results)],
        ]
        return SimulationResult(
            tree=self.overlay.tree,
            config=self.config,
            num_tasks=self.num_tasks,
            completion_times=tuple(merged_completions),
            per_node_computed=_sum_rows(rows[0]),
            per_node_max_buffers=_sum_rows(rows[1]),
            per_node_max_held=_sum_rows(rows[2]),
            buffer_high_water_at_completion=(),
            held_high_water_at_completion=(),
            departed_node_ids=(),
            buffers_decayed=sum(r.buffers_decayed for r in lane_results),
            preemptions=sum(r.preemptions for r in lane_results),
            transfers=sum(r.transfers for r in lane_results),
            events_processed=self.env.processed_count - sampler_fires,
            repository_exhausted_at=(max(exhausted)
                                     if all(t is not None for t in exhausted)
                                     else None),
            last_completion_time=max(
                (r.last_completion_time for r in lane_results), default=0),
            warp=warp,
            telemetry=None,
            service=merged_service,
            # Physical faults are shared: every lane books the same crash
            # list at the same instants, so take lane 0's copy; the
            # recovery work (re-executions, wasted transfers, reclaim
            # instants) is per-lane and sums/merges.  Fault-free runs
            # keep the empty defaults and an unchanged fingerprint.
            crashed_node_ids=lane_results[0].crashed_node_ids,
            crash_times=lane_results[0].crash_times,
            tasks_reexecuted=sum(r.tasks_reexecuted for r in lane_results),
            transfers_wasted=sum(r.transfers_wasted for r in lane_results),
            reclaim_times=tuple(sorted(
                t for r in lane_results for t in r.reclaim_times)),
            apps=app_results,
            cooperative_rate=cooperative,
        )

    def _app_result(self, lane: _AppLane,
                    result: SimulationResult) -> AppResult:
        app = lane.app
        driver = lane.service_driver
        return AppResult(
            app=app,
            index=lane.app_index,
            completion_times=result.completion_times,
            per_node_computed=result.per_node_computed,
            makespan=result.makespan,
            steady_rate=steady_window_rate(
                result.completion_times,
                # Open-loop lanes stream their bag; the realized task
                # count is whatever admission let through.
                num_tasks=(app.tasks if driver is None
                           else driver.admitted),
                arrival=app.arrival, makespan=result.makespan),
            preemptions=result.preemptions,
            transfers=result.transfers,
            telemetry=result.telemetry,
            service=result.service,
        )


def _sum_rows(rows: Sequence[Sequence[int]]) -> tuple:
    """Elementwise sum of equal-length per-node tuples."""
    return tuple(sum(col) for col in zip(*rows))


def _remap_row(row: Sequence[int], remap) -> Sequence[int]:
    """Reorder a lane row so entry ``i`` lands at canonical position
    ``remap[i]``; identity when ``remap`` is None."""
    if remap is None or not row:
        return row
    out = [0] * len(row)
    for value, pos in zip(row, remap):
        out[pos] = value
    return tuple(out)
