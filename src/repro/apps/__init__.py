"""Multi-application scheduling: specs, fairness metrics, and the
shared-platform engine.

See :mod:`repro.apps.engine` for the execution model and
``docs/architecture.md`` ("Multi-application scheduling") for the
design rationale.
"""

from .engine import MultiAppEngine
from .metrics import (fault_fairness, jain_index, price_of_anarchy,
                      steady_window_rate)
from .spec import Application, AppResult, Workload

__all__ = [
    "Application", "AppResult", "Workload", "MultiAppEngine",
    "jain_index", "price_of_anarchy", "steady_window_rate",
    "fault_fairness",
]
