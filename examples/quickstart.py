#!/usr/bin/env python3
"""Quickstart: optimal steady-state analysis + autonomous scheduling.

Builds a small heterogeneous platform tree, computes the provably optimal
steady-state task rate (Theorem 1, bottom-up), then runs the paper's
headline protocol — interruptible communication with 3 buffers per node —
and shows that the measured steady-state throughput matches the optimum.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro.metrics import detect_onset, window_rate
from repro.platform import PlatformTree
from repro import simulate
from repro.protocols import ProtocolConfig
from repro.steady_state import allocate, solve_tree


def main() -> None:
    # A platform: the repository node 0 plus two sites.  Node weights are
    # seconds-per-task; edge weights are seconds to ship one task's
    # data+results across that link.
    tree = PlatformTree(
        w=[5, 3, 8, 4, 6],
        edges=[
            (0, 1, 1),   # fast LAN link to a medium machine
            (0, 2, 4),   # slower WAN link to a big machine
            (1, 3, 2),   # behind node 1: a fast desktop
            (1, 4, 3),   # ... and a slower one
        ],
    )

    # ---- Theory: what is the best sustainable rate? --------------------
    solution = solve_tree(tree)
    allocation = allocate(tree, solution)
    print(f"optimal steady-state rate : {solution.rate} "
          f"(~{float(solution.rate):.4f} tasks/step)")
    print(f"optimal per-node rates    : "
          f"{[str(r) for r in allocation.compute_rates]}")
    print(f"theoretically used nodes  : {allocation.used_nodes}")

    # ---- Practice: the autonomous protocol ------------------------------
    num_tasks = 5000
    config = ProtocolConfig.interruptible(buffers=3)
    result = simulate(tree, num_tasks, config)

    mid_window = num_tasks // 3
    measured = window_rate(result.completion_times, mid_window)
    print(f"\nran {num_tasks} tasks with {config.label}")
    print(f"makespan                  : {result.makespan} steps")
    print(f"steady-window rate        : {measured} "
          f"(~{float(measured):.4f} tasks/step)")
    print(f"normalized to optimal     : {float(measured / solution.rate):.4f}")
    print(f"tasks per node            : {result.per_node_computed}")
    print(f"preemptions               : {result.preemptions}")

    onset = detect_onset(result.completion_times, solution.rate)
    print(f"onset of optimal steady state at window: {onset}")

    assert onset is not None, "IC/FB=3 should reach the optimal rate here"
    assert abs(float(measured / solution.rate) - 1) < 0.02


if __name__ == "__main__":
    main()
