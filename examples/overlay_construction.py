#!/usr/bin/env python3
"""Choosing the tree overlay for a physical network (§6 future work).

The scheduling model needs a *tree*, but a real grid is a general graph of
hosts and links.  The paper leaves "which tree?" open; this example answers
it empirically for a two-site topology with redundant links: build several
candidate overlays (BFS / shortest-path / MST / random), rank them by the
optimal steady-state rate Theorem 1 assigns them, then confirm the ranking
by actually running the IC/FB=3 protocol on the best and worst overlays.

Run:  python examples/overlay_construction.py
"""

from repro.metrics import window_rate
from repro.platform.overlay import PhysicalTopology, compare_overlays
from repro import simulate
from repro.protocols import ProtocolConfig
from repro.steady_state import solve_tree

NUM_TASKS = 3000


def build_topology() -> PhysicalTopology:
    """A cluster behind one fast gateway, plus slow direct WAN links.

    Every worker is directly reachable from the repository over a 30-step
    WAN link, but the cluster's internal mesh is fast (1–2 steps) and one
    gateway link (host 1) is fast too.  A hop-minimal (BFS) overlay builds
    a star over the WAN links and chokes on the repository's send port; a
    cost-aware overlay routes everything through the gateway and nearly
    doubles the optimal rate.
    """
    w = [3] * 10  # ten identical 3-steps-per-task hosts; host 0 = repository
    links = [(0, 1, 1)] + [(0, i, 30) for i in range(2, 10)]  # WAN star
    links += [  # the cluster's internal mesh
        (1, 2, 1), (2, 3, 1), (1, 4, 2), (4, 5, 1),
        (1, 6, 2), (6, 7, 1), (4, 8, 2), (6, 9, 2),
    ]
    return PhysicalTopology(w, links)


def measured_rate(tree) -> float:
    result = simulate(tree, NUM_TASKS, ProtocolConfig.interruptible(3))
    x = NUM_TASKS // 3
    return float(window_rate(result.completion_times, x))


def main() -> None:
    topology = build_topology()
    rows = compare_overlays(topology, seed=7)

    print("overlay ranking by optimal steady-state rate (Theorem 1):")
    for row in rows:
        print(f"  {row.strategy:<14} rate {row.rate:.4f}  "
              f"depth {row.tree.max_depth}")

    best, worst = rows[0], rows[-1]
    best_measured = measured_rate(best.tree)
    worst_measured = measured_rate(worst.tree)
    print(f"\nprotocol throughput on '{best.strategy}' overlay : "
          f"{best_measured:.4f} tasks/step")
    print(f"protocol throughput on '{worst.strategy}' overlay: "
          f"{worst_measured:.4f} tasks/step")
    gain = best_measured / worst_measured
    print(f"picking the right overlay is worth {gain:.2f}x here")

    assert gain > 1.5, "the overlay choice should matter on this topology"
    assert best_measured >= worst_measured - 1e-9
    # The theory ranking must agree with what the protocol actually achieves.
    assert abs(best_measured - float(solve_tree(best.tree).rate)) \
        / float(solve_tree(best.tree).rate) < 0.03


if __name__ == "__main__":
    main()
