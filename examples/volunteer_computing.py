#!/usr/bin/env python3
"""SETI@home-style volunteer computing over a deep peer-to-peer overlay.

The paper motivates bandwidth-centric scheduling with Internet-computing
projects: one repository, thousands of heterogeneous volunteer PCs, and no
possibility of central coordination.  This example builds a random
peer-to-peer overlay tree (the paper's generator), compares the two
autonomous protocols on it, and shows why the interruptible protocol with
3 buffers is the one you would deploy:

* it reaches the provably optimal steady-state rate, and
* it needs constant memory per node, while the growing non-interruptible
  protocol both falls short of optimal and balloons its buffer pools.

Run:  python examples/volunteer_computing.py [seed]
"""

import sys
from fractions import Fraction

from repro.metrics import detect_onset, reached_optimal, window_rate
from repro.platform import generate_tree
from repro import simulate
from repro.protocols import ProtocolConfig
from repro.steady_state import solve_tree

NUM_TASKS = 4000


def evaluate(tree, config, optimal):
    result = simulate(tree, NUM_TASKS, config)
    x = NUM_TASKS // 3
    steady = window_rate(result.completion_times, x)
    onset = detect_onset(result.completion_times, optimal)
    return {
        "label": config.label,
        "steady": float(steady / optimal),
        "onset": onset,
        "max_pool": result.max_buffers,
        "max_held": result.max_held,
        "used": result.num_used_nodes,
        "makespan": result.makespan,
        "preemptions": result.preemptions,
    }


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 11
    tree = generate_tree(seed=seed)  # the paper's default distribution
    optimal = solve_tree(tree).rate
    print(f"volunteer overlay: {tree.num_nodes} peers, depth {tree.max_depth}, "
          f"optimal rate {float(optimal):.5f} tasks/step")
    print(f"workunits: {NUM_TASKS}\n")

    rows = [
        evaluate(tree, ProtocolConfig.interruptible(3), optimal),
        evaluate(tree, ProtocolConfig.interruptible(1), optimal),
        evaluate(tree, ProtocolConfig.non_interruptible(), optimal),
    ]
    header = (f"{'protocol':<16} {'steady/opt':>10} {'onset':>7} "
              f"{'pool':>6} {'held':>6} {'peers used':>10} {'makespan':>10}")
    print(header)
    print("-" * len(header))
    for row in rows:
        onset = row["onset"] if row["onset"] is not None else "never"
        print(f"{row['label']:<16} {row['steady']:>10.4f} {onset!s:>7} "
              f"{row['max_pool']:>6} {row['max_held']:>6} "
              f"{row['used']:>10} {row['makespan']:>10}")

    best = rows[0]
    assert best["steady"] > 0.97, "IC/FB=3 should sustain ~optimal throughput"
    assert best["max_pool"] == 3, "IC/FB=3 must use constant memory"
    print("\nIC/FB=3 sustains the optimal rate with 3 buffers per peer —")
    print("the property that makes the protocol deployable at internet scale.")


if __name__ == "__main__":
    main()
