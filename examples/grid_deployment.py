#!/usr/bin/env python3
"""Multi-site grid deployment with mid-run resource changes.

Recreates the paper's motivating scenario (Figure 1 + §4.2.3): a
three-site grid runs a 1 000-task parameter sweep; partway through, the
network to the best worker degrades (communication contention), and in a
second run that worker instead gets faster (processor contention ends).
The autonomous protocol adapts in both cases without any global
coordination — each node only reacts to its own request traffic.

Run:  python examples/grid_deployment.py
"""

from fractions import Fraction

from repro.platform import Mutation, MutationSchedule, figure1_tree
from repro import simulate
from repro.protocols import ProtocolConfig
from repro.steady_state import solve_tree

NUM_TASKS = 1000
CHANGE_AT = 200
CONFIG = ProtocolConfig.non_interruptible(2, buffer_growth=False)


def phase_rates(result, change_at):
    """Measured rates before the change and over the final stretch."""
    times = result.completion_times
    before = Fraction(change_at, times[change_at - 1])
    tail_start = 2 * change_at
    tail = Fraction(len(times) - tail_start, times[-1] - times[tail_start - 1])
    return before, tail


def report(name, mutation):
    tree = figure1_tree()
    optimal_before = solve_tree(tree).rate
    schedule = MutationSchedule([mutation] if mutation else [])
    mutated = schedule.phases(tree)[-1][1]
    optimal_after = solve_tree(mutated).rate

    result = simulate(tree, NUM_TASKS, CONFIG, mutations=schedule)
    before, after = phase_rates(result, CHANGE_AT)

    print(f"\n=== {name} ===")
    print(f"optimal rate  : {float(optimal_before):.4f} -> {float(optimal_after):.4f}")
    print(f"measured rate : {float(before):.4f} -> {float(after):.4f}")
    print(f"makespan      : {result.makespan} steps")
    print(f"worker P1 computed {result.per_node_computed[1]} tasks; "
          f"site 3 computed "
          f"{sum(result.per_node_computed[i] for i in (5, 6, 7))}")
    gap = abs(float(after / optimal_after) - 1)
    print(f"post-change tracking error: {100 * gap:.2f}%")
    return gap


def main() -> None:
    print("Three-site grid (Figure 1), 1000 independent tasks,",
          f"protocol {CONFIG.label}")
    gaps = [
        report("steady platform", None),
        report("network contention: c1 1 -> 3 after 200 tasks",
               Mutation(node=1, attribute="c", value=3, after_tasks=CHANGE_AT)),
        report("processor relief: w1 3 -> 1 after 200 tasks",
               Mutation(node=1, attribute="w", value=1, after_tasks=CHANGE_AT)),
    ]
    assert all(gap < 0.05 for gap in gaps), "protocol failed to adapt"
    print("\nAll scenarios tracked the (new) optimal rate within 5%.")


if __name__ == "__main__":
    main()
