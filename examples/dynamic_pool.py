#!/usr/bin/env python3
"""A volatile resource pool: workers join and leave mid-run (§6 future work).

The paper argues autonomous scheduling is "inherently scalable and
adaptable" because subtrees can attach below any node with zero global
coordination.  This example stress-tests that claim: during a 3000-task
run on the Figure 1 grid, a fast 3-node cluster joins at t=300, the
original best worker departs at t=800, and a single laptop joins deep in
the tree at t=1500.  After every change, the measured slope re-converges
to the *current* platform's optimal rate.

Run:  python examples/dynamic_pool.py
"""

from fractions import Fraction

from repro.platform import (
    ChurnSchedule,
    JoinEvent,
    LeaveEvent,
    PlatformTree,
    figure1_tree,
)
from repro import simulate
from repro.protocols import ProtocolConfig
from repro.steady_state import solve_tree

NUM_TASKS = 3000
CONFIG = ProtocolConfig.interruptible(3)


def main() -> None:
    base = figure1_tree()
    cluster = PlatformTree([3, 2, 2], [(0, 1, 1), (0, 2, 1)])  # 3 fast nodes
    laptop = PlatformTree.single_node(4)

    events = ChurnSchedule([
        JoinEvent(at_time=300, parent=0, subtree=cluster, attach_cost=1),
        LeaveEvent(at_time=800, node=1),            # the c1=1 workhorse quits
        JoinEvent(at_time=1500, parent=5, subtree=laptop, attach_cost=2),
    ])

    # Track what the optimal rate is in each phase.
    phase1 = base.copy()
    phase2 = phase1.copy()
    phase2.attach_subtree(0, cluster, cost=1)
    phase3 = phase2.pruned(1)
    print("optimal rate per phase:")
    print(f"  start              : {float(solve_tree(phase1).rate):.4f}")
    print(f"  + cluster  (t=300) : {float(solve_tree(phase2).rate):.4f}")
    print(f"  - worker 1 (t=800) : {float(solve_tree(phase3).rate):.4f}")

    result = simulate(base, NUM_TASKS, CONFIG, churn=events)
    times = result.completion_times

    def slope(t_lo, t_hi):
        done_lo = sum(1 for t in times if t <= t_lo)
        done_hi = sum(1 for t in times if t <= t_hi)
        return (done_hi - done_lo) / (t_hi - t_lo)

    print("\nmeasured completion slopes:")
    print(f"  t in [100, 300)    : {slope(100, 300):.4f}")
    print(f"  t in [400, 800)    : {slope(400, 800):.4f}   (cluster joined)")
    print(f"  t in [1000, 1500)  : {slope(1000, 1500):.4f}   (worker 1 left)")

    print(f"\nfinal platform size : {result.tree.num_nodes} nodes "
          f"(8 original + 4 joined)")
    print(f"departed            : {result.departed_node_ids}")
    print(f"tasks computed      : {sum(result.per_node_computed)} "
          f"(nothing lost)")
    joined_work = sum(result.per_node_computed[i] for i in (8, 9, 10, 11))
    print(f"work by joiners     : {joined_work} tasks")

    assert sum(result.per_node_computed) == NUM_TASKS
    assert joined_work > 0
    mid_slope = slope(400, 800)
    assert abs(mid_slope / float(solve_tree(phase2).rate) - 1) < 0.08


if __name__ == "__main__":
    main()
