#!/usr/bin/env python
"""CI gate: multi-app engine (N=1) vs single-app engine fingerprints.

Runs every cell twice — once through the single-application engine
(tree engine on trees, graph engine on graph platforms) and once through
:class:`~repro.apps.MultiAppEngine` with one default application — and
demands bit-identical ``SimulationResult.fingerprint()``.  This is the
contract that lets the multi-application coordinator exist at all: with
one lane nothing is shared with anyone, and the run *is* the single-app
run, event for event.

Exit status 0 iff every cell matches.  Usage::

    PYTHONPATH=src python scripts/multiapp_equivalence.py
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401 — probe only
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps import MultiAppEngine
from repro.platform.faults import chaos_schedule
from repro.platform.generator import generate_tree
from repro.platform.graph import generate_platform
from repro.protocols import ProtocolConfig, simulate, simulate_graph

SEEDS = (1, 7, 42)
SCALES = (200, 500)  # tasks
SHAPES = ("star", "chain", "leafspine")
CONFIGS = (
    ProtocolConfig.interruptible(3),
    ProtocolConfig.non_interruptible(),
    ProtocolConfig.non_interruptible(buffer_decay=True),
)


def _check(label: str, want: str, got: str) -> bool:
    ok = got == want
    print(f"{label} {'ok' if ok else 'MISMATCH'}")
    if not ok:
        print(f"  single   : {want}\n  multi N=1: {got}")
    return ok


def main() -> int:
    failures = 0
    cells = 0
    for seed in SEEDS:
        tree = generate_tree(seed=seed)
        for tasks in SCALES:
            for config in CONFIGS:
                cells += 1
                want = simulate(tree, config, tasks).fingerprint()
                got = MultiAppEngine(tree, tasks, config).run().fingerprint()
                failures += not _check(
                    f"tree      seed={seed:<3} tasks={tasks:<5} "
                    f"{config.label:<28}", want, got)
    for shape in SHAPES:
        graph = generate_platform(shape, seed=7)
        for config in CONFIGS:
            cells += 1
            want = simulate_graph(graph, config, 300).fingerprint()
            got = MultiAppEngine(graph, 300, config).run().fingerprint()
            failures += not _check(
                f"{shape:<9} seed=7   tasks=300   {config.label:<28}",
                want, got)
    # The identity must survive fault injection: one lane under the
    # shared GraphFaultDriver is the single-app fault run, event for
    # event (the chaos schedule is regenerated per engine — the driver
    # mutates its private graph copy, never the schedule).
    config = ProtocolConfig.interruptible(3)
    for shape in SHAPES:
        graph = generate_platform(shape, seed=7)
        cells += 1
        want = simulate_graph(
            graph, config, 300, faults=chaos_schedule(graph, seed=11),
            check_invariants=True).fingerprint()
        got = MultiAppEngine(
            graph, 300, config, faults=chaos_schedule(graph, seed=11),
            check_invariants=True).run().fingerprint()
        failures += not _check(
            f"{shape:<9} seed=7   tasks=300   chaos(seed=11) N=1      ",
            want, got)
    print(f"\n{cells - failures}/{cells} cells bit-identical")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
