#!/usr/bin/env python
"""Profile the contention kernel under a contended leaf-spine run.

Runs the graph protocol engine on the seed-7 leaf-spine fabric under
cProfile and prints the top 25 functions by cumulative time, plus the
solver's own statistics ledger — the first stop when the contention
kernel shows up hot or a change needs a before/after flame check.

``--reference`` profiles the ``incremental=False`` from-scratch twin
instead (same fingerprint, the pre-incremental cost model), and
``--churn`` profiles the calendar-free churn microbenchmark from the
bench suite, which isolates the solver from event dispatch entirely.

Usage::

    PYTHONPATH=src python scripts/profile_contention.py [--tasks N]
        [--reference] [--churn] [--top N]
"""

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

try:
    import repro  # noqa: F401 — probe only
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.platform.contention import LinkContention
from repro.platform.graph import generate_platform
from repro.protocols import GraphProtocolEngine, ProtocolConfig
from repro.protocols.topologies import topology_overlay


def profile_engine(tasks: int, incremental: bool, top: int) -> None:
    graph = generate_platform("leafspine", seed=7)
    manager = LinkContention(graph.link_capacities(), graph.contention,
                             incremental=incremental)
    engine = GraphProtocolEngine(
        graph, ProtocolConfig.interruptible(3), tasks,
        overlay=topology_overlay(graph), contention=manager)
    profiler = cProfile.Profile()
    profiler.enable()
    result = engine.run()
    profiler.disable()
    pstats.Stats(profiler).sort_stats("cumulative").print_stats(top)
    print(f"events processed: {result.events_processed}")
    _print_stats(manager)


def profile_churn(ops: int, incremental: bool, top: int) -> None:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent
                           / "benchmarks"))
    from workloads import _contention_churn

    profiler = cProfile.Profile()
    profiler.enable()
    _contention_churn(ops, incremental=incremental)
    profiler.disable()
    pstats.Stats(profiler).sort_stats("cumulative").print_stats(top)


def _print_stats(manager: LinkContention) -> None:
    print("contention solver stats:")
    for name, value in manager.stats().items():
        print(f"  {name:<22} {value:>10}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="profile_contention.py",
        description="cProfile the contention kernel on a contended "
                    "leaf-spine run")
    parser.add_argument("--tasks", type=int, default=2000,
                        help="tasks for the engine run (default: 2000)")
    parser.add_argument("--reference", action="store_true",
                        help="profile the from-scratch incremental=False "
                             "twin instead")
    parser.add_argument("--churn", action="store_true",
                        help="profile the calendar-free churn "
                             "microbenchmark (--tasks becomes ops)")
    parser.add_argument("--top", type=int, default=25,
                        help="functions to print (default: 25)")
    args = parser.parse_args(argv)
    if args.churn:
        profile_churn(args.tasks, not args.reference, args.top)
    else:
        profile_engine(args.tasks, not args.reference, args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
