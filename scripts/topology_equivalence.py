#!/usr/bin/env python
"""CI gate: tree engine vs graph engine fingerprint equivalence matrix.

Runs every (seed, scale, protocol) cell twice — once through the tree
engine, once through the graph engine with the tree embedded as a
degenerate :class:`PlatformGraph` — and demands bit-identical
``SimulationResult.fingerprint()``.  This is the contract that lets the
graph engine exist at all: on a platform with no shared links it *is*
the tree engine, event for event.

Exit status 0 iff every cell matches.  Usage::

    PYTHONPATH=src python scripts/topology_equivalence.py
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401 — probe only
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.platform.generator import generate_tree
from repro.protocols import ProtocolConfig, simulate, simulate_graph

SEEDS = (1, 7, 42)
SCALES = (200, 500, 1000)  # tasks
CONFIGS = (
    ProtocolConfig.interruptible(3),
    ProtocolConfig.non_interruptible(),
    ProtocolConfig.non_interruptible(buffer_decay=True),
)


def main() -> int:
    failures = 0
    cells = 0
    for seed in SEEDS:
        tree = generate_tree(seed=seed)
        for tasks in SCALES:
            for config in CONFIGS:
                cells += 1
                want = simulate(tree, config, tasks).fingerprint()
                got = simulate_graph(tree, config, tasks).fingerprint()
                ok = got == want
                failures += not ok
                status = "ok" if ok else "MISMATCH"
                print(f"seed={seed:<3} tasks={tasks:<5} "
                      f"{config.label:<28} {status}")
                if not ok:
                    print(f"  tree : {want}\n  graph: {got}")
    print(f"\n{cells - failures}/{cells} cells bit-identical")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
