#!/usr/bin/env python
"""CI gate: tree engine vs graph engine fingerprint equivalence matrix.

Runs every (seed, scale, protocol) cell twice — once through the tree
engine, once through the graph engine with the tree embedded as a
degenerate :class:`PlatformGraph` — and demands bit-identical
``SimulationResult.fingerprint()``.  This is the contract that lets the
graph engine exist at all: on a platform with no shared links it *is*
the tree engine, event for event.

Exit status 0 iff every cell matches.  Usage::

    PYTHONPATH=src python scripts/topology_equivalence.py
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401 — probe only
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.platform.generator import generate_tree
from repro.platform.graph import generate_platform
from repro.protocols import (ProtocolConfig, ProtocolEngine, simulate,
                             simulate_graph)

SEEDS = (1, 7, 42)
SCALES = (200, 500, 1000)  # tasks
CONFIGS = (
    ProtocolConfig.interruptible(3),
    ProtocolConfig.non_interruptible(),
    ProtocolConfig.non_interruptible(buffer_decay=True),
)

#: Pinned fault-free fingerprints (seed=7, 300 tasks) on every topology.
#: The fault subsystem added in PR-8 must leave fault-free runs
#: bit-identical — any drift here means the graph fault plumbing leaked
#: into the clean path.
GOLDEN_FAULT_FREE = {
    ("tree", "ic3"):
        "cebd219dfd3aab8e44cff6fad99c9ba156e2660e986724d24e255f054e66f4b0",
    ("star", "ic3"):
        "20af3da9be2af79b49e80b89a729128dd95df6d43a408f5a054a88a7a210097e",
    ("chain", "ic3"):
        "14e8bf63cb2d3d7a6c19eb3ac2c08dd34fb18a53593a517c530148eb568d0443",
    ("leafspine", "ic3"):
        "658f24b9f8e8da7b5d4ac0c8bf5138746979106890661483ecffaf9407a981bc",
    ("tree", "nonic"):
        "85f1b181f1c4c745ca98dfe33f7c5fb5f4712596a4fc3a79bd60adca57e2ca13",
    ("star", "nonic"):
        "a564a9ca672dbd51089b1c5a997893a2a58ac4c3f1add369d4a9bb903d5af556",
    ("chain", "nonic"):
        "a0610bb55c411ed3ee8f77d86e76d5cf67d5b836584e1114cf2a88ec3a694651",
    ("leafspine", "nonic"):
        "c2760dff1b08fe3d03f30b2eee601a9e87061f2305d4663be0e61824fe69c486",
}
_GOLDEN_CONFIGS = {"ic3": ProtocolConfig.interruptible(3),
                   "nonic": ProtocolConfig.non_interruptible()}


def check_golden() -> int:
    """Fault-free runs must reproduce the pinned fingerprints exactly."""
    failures = 0
    for (topology, preset), want in sorted(GOLDEN_FAULT_FREE.items()):
        config = _GOLDEN_CONFIGS[preset]
        if topology == "tree":
            got = ProtocolEngine(generate_tree(seed=7), config,
                                 300).run().fingerprint()
        else:
            got = simulate_graph(generate_platform(topology, seed=7),
                                 config, 300).fingerprint()
        ok = got == want
        failures += not ok
        print(f"golden {topology:<9} {preset:<6} "
              f"{'ok' if ok else 'DRIFTED'}")
        if not ok:
            print(f"  pinned: {want}\n  got   : {got}")
    return failures


def main() -> int:
    failures = 0
    cells = 0
    for seed in SEEDS:
        tree = generate_tree(seed=seed)
        for tasks in SCALES:
            for config in CONFIGS:
                cells += 1
                want = simulate(tree, config, tasks).fingerprint()
                got = simulate_graph(tree, config, tasks).fingerprint()
                ok = got == want
                failures += not ok
                status = "ok" if ok else "MISMATCH"
                print(f"seed={seed:<3} tasks={tasks:<5} "
                      f"{config.label:<28} {status}")
                if not ok:
                    print(f"  tree : {want}\n  graph: {got}")
    print()
    golden_failures = check_golden()
    failures += golden_failures
    cells += len(GOLDEN_FAULT_FREE)
    print(f"\n{cells - failures}/{cells} cells bit-identical")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
