#!/usr/bin/env python
"""CI gate: seeded chaos schedules must never hang, leak, or lose tasks.

For every (seed, topology, app count) cell this generates a
:func:`~repro.platform.faults.chaos_schedule` (crashes, link failures
and repairs, switch crashes, bandwidth degrades), runs it with the
task-conservation invariant checker armed at every fault delivery, and
demands that

* the run terminates (a hung recovery would trip the per-cell watchdog),
* every application completes its full bag,
* no pending losses are left pooled (every destroyed task instance was
  reclaimed into the repository and re-executed).

Exit status 0 iff every cell passes.  Usage::

    PYTHONPATH=src python scripts/chaos_soak.py [--seeds N] [--tasks N]
"""

import argparse
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401 — probe only
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps import Application, MultiAppEngine
from repro.platform.faults import chaos_schedule
from repro.platform.generator import generate_tree
from repro.platform.graph import PlatformGraph, generate_platform
from repro.protocols import ProtocolConfig

TOPOLOGIES = ("tree", "star", "chain", "leafspine")
APP_COUNTS = (1, 3)
CONFIG = ProtocolConfig.interruptible(3)


def _platform(topology: str, seed: int):
    if topology == "tree":
        # Trees soak through the same routed driver as graphs (embedded
        # as degenerate platforms), exercising the tree-addressed events.
        return PlatformGraph.from_tree(generate_tree(seed=seed))
    return generate_platform(topology, seed=seed)


def soak_cell(topology: str, seed: int, apps: int, tasks: int) -> str:
    """Run one cell; returns "" on success, a failure description else."""
    platform = _platform(topology, seed)
    schedule = chaos_schedule(platform, seed=seed * 1000 + 17, events=6)
    if apps == 1:
        workload = tasks
    else:
        workload = [Application(tasks // apps, name=f"app{i}", priority=i,
                                arrival=i * 100)
                    for i in range(apps)]
    engine = MultiAppEngine(platform, workload, CONFIG,
                            faults=schedule, check_invariants=True)
    result = engine.run()
    problems = []
    for lane in engine.lanes:
        if lane.completed != lane.num_tasks:
            problems.append(
                f"app{lane.app_index} completed {lane.completed}"
                f"/{lane.num_tasks}")
        if lane._pending_lost:
            problems.append(
                f"app{lane.app_index} leaked pending losses "
                f"{dict(lane._pending_lost)}")
    total = sum(len(a.completion_times) for a in result.apps)
    if total != result.num_tasks:
        problems.append(f"merged completions {total}/{result.num_tasks}")
    return "; ".join(problems)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=5,
                        help="chaos seeds per (topology, apps) cell")
    parser.add_argument("--tasks", type=int, default=120,
                        help="total tasks per cell")
    args = parser.parse_args()

    failures = 0
    cells = 0
    for seed in range(1, args.seeds + 1):
        for topology in TOPOLOGIES:
            for apps in APP_COUNTS:
                cells += 1
                start = time.time()
                try:
                    problem = soak_cell(topology, seed, apps, args.tasks)
                except Exception as exc:  # invariant violations land here
                    problem = f"{type(exc).__name__}: {exc}"
                elapsed = time.time() - start
                ok = not problem
                failures += not ok
                print(f"seed={seed:<2} {topology:<9} apps={apps} "
                      f"{'ok' if ok else 'FAILED'} ({elapsed:.1f}s)")
                if problem:
                    print(f"  {problem}")
    print(f"\n{cells - failures}/{cells} chaos cells conserved their bags")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
