#!/usr/bin/env bash
# Kill-and-resume smoke: SIGKILL a checkpointed sweep mid-run, resume it,
# and require the resumed report to be byte-identical (timing lines aside)
# to an uninterrupted single-worker run.  Exercises the crash-safety
# guarantee end to end: journal atomicity, torn-line replay, and the
# workers=1 == workers=N == fresh == resumed determinism contract.
#
# Usage: scripts/kill_resume_smoke.sh [workdir]
set -euo pipefail

WORKDIR="${1:-$(mktemp -d)}"
mkdir -p "$WORKDIR"
CKPT="$WORKDIR/ckpt"
ARGS=(fig4 --scale smoke --trees 12)
KILL_AFTER="${KILL_AFTER:-2}"

export PYTHONPATH="${PYTHONPATH:-src}"

echo "== reference run (workers=1, no checkpointing)"
python -m repro "${ARGS[@]}" --workers 1 --out "$WORKDIR/reference.txt"

echo "== checkpointed run (workers=4), SIGKILL after ${KILL_AFTER}s"
python -m repro "${ARGS[@]}" --workers 4 --checkpoint-dir "$CKPT" \
    --out "$WORKDIR/killed.txt" >/dev/null 2>&1 &
VICTIM=$!
sleep "$KILL_AFTER"
if kill -KILL "$VICTIM" 2>/dev/null; then
    echo "   killed pid $VICTIM mid-run"
else
    echo "   run finished before the kill landed (resume is a pure replay)"
fi
wait "$VICTIM" 2>/dev/null || true

echo "== resumed run (workers=4, --resume)"
python -m repro "${ARGS[@]}" --workers 4 --checkpoint-dir "$CKPT" \
    --resume --out "$WORKDIR/resumed.txt"

# The reports embed wall-clock timing lines; strip them before diffing.
strip_timing() { sed -E 's/completed in [0-9.]+s/completed/' "$1"; }

if diff <(strip_timing "$WORKDIR/reference.txt") \
        <(strip_timing "$WORKDIR/resumed.txt"); then
    echo "PASS: resumed run is identical to the uninterrupted run"
else
    echo "FAIL: resumed run diverged from the uninterrupted run" >&2
    exit 1
fi
