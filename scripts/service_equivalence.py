#!/usr/bin/env python
"""Service-mode equivalence gates (CI job).

Three independent guarantees, in increasing order of novelty:

1. **Closed-bag preservation** — with no arrival process, every engine
   (tree, graph, multi-app) produces fingerprints bit-identical to the
   pre-service-mode goldens pinned below.  This is the "arrivals=None
   matrix": service mode must be invisible unless asked for.

2. **Warp/exact identity under periodic arrivals** — an open-loop run
   with exactly-periodic arrivals and warp enabled must produce the
   same fingerprint (latency fold included) as the exact run, and —
   gated — at least MIN_SPEEDUP× fewer processed events.

3. **Bounded memory at 1M+ arrivals** — a ≥1M-arrival day completes
   with no per-task list retention: the pending deque's high-water mark
   stays at queue scale, not stream scale, and the run reports
   p50/p95/p99 + drop rate.

Run: PYTHONPATH=src python scripts/service_equivalence.py
"""

import sys
import time

from repro import simulate
from repro.apps import Application, Workload
from repro.platform import figure1_tree, generate_platform
from repro.platform.generator import TreeGeneratorParams, generate_tree
from repro.protocols.config import ProtocolConfig
from repro.service import PeriodicArrivals, PoissonArrivals, TokenBucket

MIN_SPEEDUP = 5.0

# Fingerprints recorded from the pre-service-mode tree (commit 091e9d9)
# for the closed-bag matrix below.  If an intentional engine change
# shifts these, regenerate with --regen and justify in the PR.
GOLDENS = {
    "tree_interruptible": "b4c5ccdac0f1f99cdab29fe62e0edb2b863f541908d46fb4d747be3a19c2f93f",
    "tree_interruptible_2apps": "9654941792b828ef9f19b4a070628e136554223e67a79ee6a198cc25f1106422",
    "tree_noninterruptible": "d5846a61738ccc456c3415745d7d648af13fc14d1ed21ad55f0c2541dd2f7585",
    "tree_noninterruptible_2apps": "9d6ee61a0ad128e5cd7aedab9718d02dd1b21edb56e89c91eb83642b7532ab95",
    "gen_tree_interruptible": "b45668956081db41a1b6b4c3f51b8502646056c1355ba415643db35fde51cf44",
    "gen_tree_interruptible_2apps": "2d2d2f4c3562411a875904337a41c2cf4e52d230370d68eb95030e82a0ef380b",
    "star_interruptible": "41a3474d49c3fa39abc5e16b67a2dc06bec0b9bd648bbe1f1cb3c570ffb61cf1",
    "star_interruptible_2apps": "1bc28583cfed27581d8f36de277772b8fca545729b558b2835bed2f08a776588",
    "leafspine_interruptible": "348f0db55b26814784444fa3db2043ab1f2fefc25cdfc9ecc387a4221db2f709",
    "leafspine_interruptible_2apps": "ed15815008b958a768ebdc62c15c811b243da440e54e23a490d07ec7d4df403a",
}


def _matrix():
    cases = []
    cfg_i = ProtocolConfig.interruptible(3)
    cfg_n = ProtocolConfig.non_interruptible(1)
    tree = figure1_tree()
    cases.append(("tree_interruptible", tree, 60, cfg_i))
    cases.append(("tree_noninterruptible", tree, 60, cfg_n))
    gen = generate_tree(TreeGeneratorParams(min_nodes=12, max_nodes=12),
                        seed=7)
    cases.append(("gen_tree_interruptible", gen, 80, cfg_i))
    star = generate_platform("star", seed=3)
    cases.append(("star_interruptible", star, 50, cfg_i))
    leaf = generate_platform("leafspine", seed=5)
    cases.append(("leafspine_interruptible", leaf, 50, cfg_i))
    return cases


def check_closed_bag(regen):
    failures = []
    lines = []
    for name, platform, tasks, config in _matrix():
        fp = simulate(platform, tasks, config).fingerprint()
        apps_fp = simulate(
            platform,
            Workload(apps=(Application(tasks // 2), Application(tasks // 2))),
            config).fingerprint()
        for key, got in ((name, fp), (name + "_2apps", apps_fp)):
            lines.append(f'    "{key}": "{got}",')
            want = GOLDENS.get(key)
            if regen:
                continue
            if want is None:
                failures.append(f"{key}: no golden recorded")
            elif got != want:
                failures.append(f"{key}: {got} != golden {want}")
    if regen:
        print("GOLDENS = {")
        print("\n".join(lines))
        print("}")
        return []
    return failures


def check_warp_identity():
    failures = []
    params = TreeGeneratorParams(min_nodes=30, max_nodes=30, max_comm=8,
                                 max_comp=16, comp_divisor=16)
    tree = generate_tree(params, seed=1)
    arrivals = PeriodicArrivals(interval=40, horizon=400_000, batch=2)
    workload = Workload(arrivals=arrivals)
    exact = simulate(tree, workload,
                     ProtocolConfig.interruptible(3, warp=False))
    t0 = time.perf_counter()
    warped = simulate(tree, workload,
                      ProtocolConfig.interruptible(3, warp=True))
    warp_wall = time.perf_counter() - t0
    if warped.warp is None or not warped.warp.applied:
        failures.append(
            "warp did not engage under periodic arrivals: "
            f"{warped.warp!r}")
        return failures
    if exact.fingerprint() != warped.fingerprint():
        failures.append("warp fingerprint != exact fingerprint")
    if exact.service != warped.service:
        failures.append(
            f"latency folds differ:\n  exact {exact.service}\n"
            f"  warp  {warped.service}")
    # events_processed is replicated to match the exact run (fingerprint
    # contract); the events actually dispatched are what was not skipped.
    dispatched = warped.events_processed - warped.warp.events_skipped
    ratio = exact.events_processed / max(dispatched, 1)
    print(f"  warp identity ok: {exact.events_processed} events exact, "
          f"{dispatched} dispatched warped ({ratio:.1f}x fewer, "
          f"wall {warp_wall:.2f}s)")
    if ratio < MIN_SPEEDUP:
        failures.append(
            f"warp skipped only {ratio:.1f}x events (< {MIN_SPEEDUP}x)")
    return failures


def check_bounded_memory():
    failures = []
    params = TreeGeneratorParams(min_nodes=30, max_nodes=30, max_comm=8,
                                 max_comp=16, comp_divisor=16)
    tree = generate_tree(params, seed=1)
    arrivals = PeriodicArrivals(interval=4, horizon=4_200_000, batch=1)
    assert arrivals.num_events >= 1_000_000
    workload = Workload(arrivals=arrivals,
                        admission=TokenBucket(rate="1/5", burst=64))
    t0 = time.perf_counter()
    result = simulate(tree, workload,
                      ProtocolConfig.interruptible(3, warp=True),
                      record_completion_times=False)
    wall = time.perf_counter() - t0
    stats = result.service
    print(f"  1M-arrival day: offered={stats.offered} "
          f"admitted={stats.admitted} dropped={stats.dropped} "
          f"drop_rate={stats.drop_rate:.3f}")
    print(f"    p50={stats.p50:.1f} p95={stats.p95:.1f} "
          f"p99={stats.p99:.1f} mean={stats.latency_mean:.1f} "
          f"util={stats.utilization:.3f} wall={wall:.2f}s")
    if stats.offered < 1_000_000:
        failures.append(f"only {stats.offered} arrivals offered (< 1M)")
    if stats.completed != stats.admitted:
        failures.append("admitted tasks were lost")
    if result.completion_times:
        failures.append("per-task completion list was retained")
    if stats.pending_high_water > 100_000:
        failures.append(
            f"pending deque high water {stats.pending_high_water} — "
            "per-task retention is not bounded by the queue")
    if None in (stats.p50, stats.p95, stats.p99):
        failures.append("missing latency quantiles")
    return failures


def main():
    regen = "--regen" in sys.argv
    failures = check_closed_bag(regen)
    if regen:
        return 0
    print("closed-bag matrix ok" if not failures
          else f"closed-bag matrix FAILED ({len(failures)})")
    failures += check_warp_identity()
    failures += check_bounded_memory()
    if failures:
        print("service equivalence FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("service equivalence ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
