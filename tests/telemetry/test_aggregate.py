"""Tests for ensemble aggregation of telemetry snapshots."""

import random

import pytest

from repro.errors import ReproError
from repro.telemetry import aggregate_snapshots
from repro.telemetry.aggregate import (
    format_telemetry_summary,
    percentile,
    summarize,
)
from repro.telemetry.probes import TelemetrySnapshot


def make_snapshot(makespan, completed, busy):
    nodes = len(busy)
    return TelemetrySnapshot(
        num_nodes=nodes,
        makespan=makespan,
        sample_dt=50,
        effective_dt=50,
        samples=makespan // 50,
        counters={"completed": completed, "preemptions": completed // 10},
        per_node={
            "compute_busy_time": tuple(float(b) for b in busy),
            "starve_sampled_time": tuple(0.0 for _ in busy),
            "max_buffers": tuple(2.0 for _ in busy),
        },
        series={"buffer_occupancy": ((50, 100), (3.0, 5.0))},
    )


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ReproError):
            percentile([], 50)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ReproError):
            percentile([1.0], 101)

    def test_single_value(self):
        assert percentile([7.0], 0) == 7.0
        assert percentile([7.0], 100) == 7.0

    def test_linear_interpolation(self):
        values = [0.0, 10.0]
        assert percentile(values, 50) == 5.0
        assert percentile(values, 95) == 9.5
        assert percentile(list(range(5)), 25) == 1.0

    def test_order_invariant(self):
        values = [5.0, 1.0, 9.0, 3.0]
        assert percentile(values, 50) == percentile(sorted(values), 50)


class TestSummarize:
    def test_stats(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats["mean"] == 2.5
        assert stats["p50"] == 2.5
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0


class TestAggregate:
    def test_empty_raises(self):
        with pytest.raises(ReproError):
            aggregate_snapshots([])

    def test_rows_and_counts(self):
        snaps = [make_snapshot(1000, 500, [400, 300]),
                 make_snapshot(2000, 500, [900, 800])]
        agg = aggregate_snapshots(snaps)
        assert agg["makespan"]["mean"] == 1500.0
        assert agg["makespan"]["n"] == 2.0
        assert agg["completed"]["min"] == 500.0
        assert agg["buffer_occupancy_peak"]["max"] == 5.0
        # utilization_mean folds per-node busy over makespan
        assert agg["utilization_mean"]["mean"] == pytest.approx(
            (((400 + 300) / 2 / 1000) + ((900 + 800) / 2 / 2000)) / 2)

    def test_order_independent(self):
        """Resumed sweeps deliver snapshots in a different order; the fold
        must not care."""
        snaps = [make_snapshot(1000 + i * 37, 500, [i * 10.0, 400.0])
                 for i in range(12)]
        shuffled = snaps[:]
        random.Random(3).shuffle(shuffled)
        assert aggregate_snapshots(snaps) == aggregate_snapshots(shuffled)

    def test_partial_metrics_counted(self):
        full = make_snapshot(1000, 500, [400.0])
        sparse = TelemetrySnapshot(num_nodes=1, makespan=800, sample_dt=50,
                                   effective_dt=50, samples=16)
        agg = aggregate_snapshots([full, sparse])
        assert agg["makespan"]["n"] == 2.0
        assert agg["completed"]["n"] == 1.0


class TestFormat:
    def test_table_shape(self):
        agg = aggregate_snapshots([make_snapshot(1000, 500, [400.0])])
        text = format_telemetry_summary(agg)
        lines = text.split("\n")
        assert lines[0].split() == ["metric", "mean", "p50", "p95",
                                    "min", "max", "n"]
        assert len(lines) == 2 + len(agg)
        assert any(line.startswith("makespan") for line in lines)
