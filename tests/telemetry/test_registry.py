"""Tests for the metrics registry and its instruments."""

import pytest

from repro.errors import ReproError
from repro.telemetry import MetricsRegistry, NullRegistry
from repro.telemetry.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    TimeSeries,
)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_last_write_wins(self):
        gauge = Gauge()
        gauge.set(3)
        gauge.set(-1.5)
        assert gauge.value == -1.5

    def test_histogram_bucketing(self):
        hist = Histogram((1, 5, 10))
        for value in (0, 1, 2, 5, 7, 10, 11, 1000):
            hist.observe(value)
        # Buckets: <=1, <=5, <=10, overflow.
        assert hist.counts == [2, 2, 2, 2]
        assert hist.total == 8

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ReproError):
            Histogram(())
        with pytest.raises(ReproError):
            Histogram((5, 1))


class TestTimeSeries:
    def test_append_and_iterate(self):
        series = TimeSeries()
        series.append(0, 1.0)
        series.append(10, 2.0)
        assert list(series) == [(0, 1.0), (10, 2.0)]
        assert series.as_tuples() == ((0, 10), (1.0, 2.0))

    def test_decimation_halves_and_keeps_newest(self):
        series = TimeSeries(max_samples=4)
        for t in range(5):
            series.append(t, float(t))
        # Exceeding the budget keeps every other sample, newest included.
        assert series.decimations == 1
        assert series.times == [0, 2, 4]
        assert series.values == [0.0, 2.0, 4.0]

    def test_decimated_series_spans_full_run(self):
        series = TimeSeries(max_samples=8)
        for t in range(100):
            series.append(t, float(t))
        assert len(series) <= 8
        assert series.times[-1] == 99
        assert series.decimations >= 1
        # times stay sorted through decimation
        assert series.times == sorted(series.times)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x", node=1) is not reg.counter("x")

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ReproError):
            reg.gauge("x")

    def test_items_deterministic_order(self):
        reg = MetricsRegistry()
        reg.counter("b", node=2)
        reg.counter("b")
        reg.counter("a", node=0)
        keys = [key for key, _ in reg.items()]
        assert keys == [("a", 0), ("b", None), ("b", 2)]

    def test_counters_and_series_data_views(self):
        reg = MetricsRegistry()
        reg.counter("events").inc(7)
        reg.series("depth", node=3).append(5, 2.0)
        assert reg.counters() == {("events", None): 7}
        assert reg.series_data() == {("depth", 3): ((5,), (2.0,))}

    def test_contains_accepts_bare_name(self):
        reg = MetricsRegistry()
        reg.counter("x")
        assert "x" in reg
        assert ("x", None) in reg
        assert "y" not in reg


class TestNullRegistry:
    def test_all_accessors_are_noops(self):
        reg = NullRegistry()
        assert reg.enabled is False
        reg.counter("a").inc()
        reg.gauge("b").set(5)
        reg.histogram("c", (1, 2)).observe(9)
        reg.series("d").append(0, 1.0)
        assert len(reg) == 0
        assert reg.counters() == {}
        assert reg.series_data() == {}
        assert "a" not in reg

    def test_shared_singleton(self):
        assert NULL_REGISTRY.counter("x") is NULL_REGISTRY.series("y")
