"""Behaviour-neutrality and correctness of the telemetry probes."""

from dataclasses import replace

import numpy as np
import pytest

from repro.metrics.usage import node_utilization
from repro.platform import figure2a_tree
from repro.platform.generator import TreeGeneratorParams, generate_tree
from repro.protocols import ProtocolConfig, ProtocolEngine
from repro.telemetry import TelemetryConfig


def run(tree, config, tasks=300):
    return ProtocolEngine(tree, config, tasks).run()


@pytest.fixture(scope="module")
def tree():
    return generate_tree(TreeGeneratorParams(min_nodes=20, max_nodes=20),
                         seed=11)


class TestBehaviourNeutrality:
    def test_sampling_preserves_fingerprint(self, tree):
        base = ProtocolConfig.interruptible(3)
        plain = run(tree, base)
        sampled = run(tree, replace(base, telemetry=TelemetryConfig(
            sample_dt=5)))
        assert sampled.fingerprint() == plain.fingerprint()
        assert sampled.events_processed == plain.events_processed

    def test_tracing_preset_preserves_fingerprint(self, tree):
        base = ProtocolConfig.non_interruptible(2)
        plain = run(tree, base)
        traced = run(tree, replace(base,
                                   telemetry=TelemetryConfig.tracing()))
        assert traced.fingerprint() == plain.fingerprint()

    def test_telemetry_off_result_has_no_snapshot(self, tree):
        result = run(tree, ProtocolConfig.interruptible(2))
        assert result.telemetry is None

    def test_warp_stands_down_under_telemetry(self):
        config = replace(ProtocolConfig.interruptible(3, warp=True),
                         telemetry=TelemetryConfig())
        result = run(figure2a_tree(), config, tasks=2000)
        assert result.warp is not None
        assert not result.warp.applied
        assert "telemetry" in result.warp.reason
        # The probe still covered the whole (unwarped) run.
        assert result.telemetry is not None
        assert result.telemetry.samples > 0


class TestSnapshotContents:
    def test_scalar_counters(self, tree):
        config = replace(ProtocolConfig.interruptible(3),
                         telemetry=TelemetryConfig(sample_dt=10))
        result = run(tree, config)
        snap = result.telemetry
        assert snap.counters["completed"] == 300
        assert snap.counters["samples"] == snap.samples
        assert snap.counters["preemptions"] == result.preemptions
        assert snap.num_nodes == tree.num_nodes
        assert snap.makespan == result.makespan

    def test_series_monotone_and_bounded(self, tree):
        config = replace(ProtocolConfig.interruptible(3),
                         telemetry=TelemetryConfig(sample_dt=3,
                                                   max_samples=64))
        snap = run(tree, config).telemetry
        for name, (times, values) in snap.series.items():
            assert len(times) == len(values)
            assert len(times) <= 64, name
            assert list(times) == sorted(times), name
        completed = snap.series["completed"][1]
        assert list(completed) == sorted(completed)
        assert completed[-1] <= 300

    def test_utilization_matches_metrics_sampling_mode(self, tree):
        config = replace(ProtocolConfig.interruptible(3),
                         telemetry=TelemetryConfig(sample_dt=10))
        result = run(tree, config)
        np.testing.assert_allclose(result.telemetry.utilization(),
                                   node_utilization(result))

    def test_utilization_matches_metrics_tap_mode(self, tree):
        config = replace(ProtocolConfig.interruptible(3),
                         telemetry=TelemetryConfig.tracing(sample_dt=10))
        result = run(tree, config)
        np.testing.assert_allclose(result.telemetry.utilization(),
                                   node_utilization(result))

    def test_tap_mode_final_cpu_util_track(self, tree):
        """The Perfetto counter track ends on node_utilization's value."""
        config = replace(ProtocolConfig.interruptible(3),
                         telemetry=TelemetryConfig.tracing(sample_dt=10))
        result = run(tree, config)
        snap = result.telemetry
        util = node_utilization(result)
        track = snap.node_series["cpu_util"]
        for node, (times, values) in track.items():
            assert times[-1] == snap.makespan
            assert values[-1] == pytest.approx(util[node])

    def test_per_node_series_off_by_default(self, tree):
        config = replace(ProtocolConfig.interruptible(3),
                         telemetry=TelemetryConfig(sample_dt=10))
        snap = run(tree, config).telemetry
        assert snap.node_series == {}
        config = replace(config,
                         telemetry=TelemetryConfig(sample_dt=10,
                                                   per_node_series=True))
        snap = run(tree, config).telemetry
        assert "buffer_occupancy" in snap.node_series
        assert "queue_depth" in snap.node_series

    def test_decimation_doubles_effective_dt(self, tree):
        config = replace(ProtocolConfig.interruptible(3),
                         telemetry=TelemetryConfig(sample_dt=1,
                                                   max_samples=16))
        snap = run(tree, config).telemetry
        assert snap.effective_dt > snap.sample_dt
        assert len(snap.series["completed"][0]) <= 16

    def test_coexists_with_user_tracer(self, tree):
        """A user Tracer and the event tap both see the run."""
        from repro.protocols import Tracer
        from repro.protocols import trace as tr

        config = replace(ProtocolConfig.interruptible(3),
                         telemetry=TelemetryConfig.tracing(sample_dt=10))
        engine = ProtocolEngine(tree, config, 300)
        tracer = Tracer()
        engine.tracer = tracer
        result = engine.run()
        assert tracer.count(tr.COMPUTE_DONE) == 300
        assert result.telemetry.counters["events.compute-done"] == 300


class TestConfigValidation:
    def test_bad_sample_dt(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            TelemetryConfig(sample_dt=0)

    def test_bad_max_samples(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            TelemetryConfig(max_samples=1)

    def test_tracing_preset(self):
        cfg = TelemetryConfig.tracing()
        assert cfg.per_node_series and cfg.trace_events
        assert cfg.sample_dt == 50
