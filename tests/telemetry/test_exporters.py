"""Tests for the JSONL / CSV / Chrome-trace telemetry exporters."""

import json
from collections import defaultdict
from dataclasses import replace

import pytest

from repro.errors import ReproError
from repro.platform.generator import TreeGeneratorParams, generate_tree
from repro.protocols import ProtocolConfig, ProtocolEngine, Tracer
from repro.telemetry import TelemetryConfig, chrome_trace, dump_jsonl, load_jsonl
from repro.telemetry.export import dump_csv, export_auto, write_chrome_trace


@pytest.fixture(scope="module")
def traced_run():
    tree = generate_tree(TreeGeneratorParams(min_nodes=20, max_nodes=20),
                         seed=11)
    # FB=1 forces preemptions, so the trace carries "i" instant markers.
    config = replace(ProtocolConfig.interruptible(1),
                     telemetry=TelemetryConfig.tracing(sample_dt=10))
    engine = ProtocolEngine(tree, config, 300)
    tracer = Tracer()
    engine.tracer = tracer
    result = engine.run()
    return result, tracer


@pytest.fixture(scope="module")
def snapshot(traced_run):
    return traced_run[0].telemetry


class TestJsonl:
    def test_round_trip_by_value(self, snapshot, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        assert dump_jsonl(snapshot, path) == 1
        assert dump_jsonl([snapshot, snapshot], path) == 2  # appends
        loaded = load_jsonl(path)
        assert len(loaded) == 3
        for other in loaded:
            assert other == snapshot

    def test_rejects_foreign_records(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "something-else"}\n')
        with pytest.raises(ReproError):
            load_jsonl(str(path))


class TestCsv:
    def test_header_and_rows(self, snapshot, tmp_path):
        path = tmp_path / "series.csv"
        rows = dump_csv(snapshot, str(path))
        lines = path.read_text().strip().split("\n")
        header = lines[0].split(",")
        assert header[0] == "time"
        assert sorted(header[1:]) == sorted(snapshot.series)
        assert len(lines) == rows + 1
        assert rows == len(snapshot.series["completed"][0])
        # Each row parses back to the series values.
        first = lines[1].split(",")
        assert int(first[0]) == snapshot.series[header[1]][0][0]


class TestChromeTrace:
    def test_requires_some_input(self):
        with pytest.raises(ReproError):
            chrome_trace()

    def test_valid_json_with_expected_phases(self, traced_run, tmp_path):
        result, tracer = traced_run
        path = tmp_path / "run.trace.json"
        count = write_chrome_trace(str(path), result.telemetry, tracer=tracer)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert len(events) == count
        phases = {e["ph"] for e in events}
        assert {"M", "X", "i", "C"} <= phases
        assert doc["otherData"]["num_nodes"] == result.telemetry.num_nodes

    def test_slices_monotone_per_lane(self, traced_run):
        result, tracer = traced_run
        doc = chrome_trace(result.telemetry, tracer=tracer)
        lanes = defaultdict(list)
        for event in doc["traceEvents"]:
            if event["ph"] in ("X", "C"):
                key = (event["pid"], event.get("tid"), event["name"])
                lanes[key].append(event["ts"])
        for key, stamps in lanes.items():
            assert stamps == sorted(stamps), key

    def test_counter_tracks_match_series(self, snapshot):
        doc = chrome_trace(snapshot)
        by_name = defaultdict(list)
        for event in doc["traceEvents"]:
            if event["ph"] == "C":
                by_name[event["name"]].append(event["args"]["value"])
        for name, (_, values) in snapshot.series.items():
            assert by_name[name] == list(values)
        # Per-node tracks are exported under name/nodeN.
        for name, per_node in snapshot.node_series.items():
            for node, (_, values) in per_node.items():
                assert by_name[f"{name}/node{node}"] == list(values)

    def test_slices_cover_compute_intervals(self, traced_run):
        _result, tracer = traced_run
        doc = chrome_trace(tracer=tracer)
        slices = [e for e in doc["traceEvents"]
                  if e["ph"] == "X" and e["name"] == "compute"]
        expected = sum(len(tracer.compute_intervals(node))
                       for node in range(20))
        assert len(slices) == expected


class TestExportAuto:
    def test_dispatch_by_extension(self, snapshot, tmp_path):
        jsonl = str(tmp_path / "out.jsonl")
        csv = str(tmp_path / "out.csv")
        trace = str(tmp_path / "out.trace.json")
        assert export_auto(jsonl, [snapshot, snapshot]) == 2
        assert load_jsonl(jsonl)[0] == snapshot
        assert export_auto(csv, snapshot) > 0
        assert export_auto(trace, snapshot) > 0
        json.loads((tmp_path / "out.trace.json").read_text())

    def test_csv_rejects_ensembles(self, snapshot, tmp_path):
        with pytest.raises(ReproError):
            export_auto(str(tmp_path / "out.csv"), [snapshot, snapshot])

    def test_nothing_to_export(self, tmp_path):
        with pytest.raises(ReproError):
            export_auto(str(tmp_path / "out.trace.json"), [])


class TestMultiAppTrace:
    """One Perfetto process group per application."""

    @pytest.fixture(scope="class")
    def two_app_traced(self):
        from repro import simulate
        from repro.apps import Application

        tree = generate_tree(TreeGeneratorParams(min_nodes=12, max_nodes=18),
                             seed=11)
        config = replace(ProtocolConfig.interruptible(3),
                         telemetry=TelemetryConfig.tracing(sample_dt=10))
        tracers = [Tracer(), Tracer()]
        result = simulate(
            tree, [Application(40, name="alpha"), Application(40, name="beta")],
            config, allocator="selfish", tracer=tracers)
        return result, tracers

    def test_one_pid_per_app(self, two_app_traced):
        from repro.telemetry.export import multi_app_trace

        result, tracers = two_app_traced
        entries = [(a.name, a.telemetry, t)
                   for a, t in zip(result.apps, tracers)]
        doc = multi_app_trace(entries)
        names = {e["pid"]: e["args"]["name"]
                 for e in doc["traceEvents"] if e["name"] == "process_name"}
        assert names == {0: "alpha", 1: "beta"}
        by_pid = defaultdict(set)
        for event in doc["traceEvents"]:
            by_pid[event["pid"]].add(event["ph"])
        # Both apps carry activity slices and counter tracks.
        assert {"X", "C"} <= by_pid[0] and {"X", "C"} <= by_pid[1]

    def test_write_multi_app_trace(self, two_app_traced, tmp_path):
        from repro.telemetry.export import write_multi_app_trace

        result, tracers = two_app_traced
        entries = [(a.name, a.telemetry, t)
                   for a, t in zip(result.apps, tracers)]
        path = tmp_path / "apps.trace.json"
        count = write_multi_app_trace(str(path), entries)
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == count

    def test_rejects_empty_and_bare_entries(self):
        from repro.telemetry.export import multi_app_trace

        with pytest.raises(ReproError):
            multi_app_trace([])
        with pytest.raises(ReproError):
            multi_app_trace([("ghost", None, None)])

    def test_single_app_trace_unchanged(self, traced_run):
        """The single-app exporter still emits pid 0 / "simulation"."""
        result, tracer = traced_run
        doc = chrome_trace(result.telemetry, tracer=tracer)
        meta = [e for e in doc["traceEvents"] if e["name"] == "process_name"]
        assert meta == [{"name": "process_name", "ph": "M", "pid": 0,
                         "args": {"name": "simulation"}}]
