"""Tests for the JSONL / CSV / Chrome-trace telemetry exporters."""

import json
from collections import defaultdict
from dataclasses import replace

import pytest

from repro.errors import ReproError
from repro.platform.generator import TreeGeneratorParams, generate_tree
from repro.protocols import ProtocolConfig, ProtocolEngine, Tracer
from repro.telemetry import TelemetryConfig, chrome_trace, dump_jsonl, load_jsonl
from repro.telemetry.export import dump_csv, export_auto, write_chrome_trace


@pytest.fixture(scope="module")
def traced_run():
    tree = generate_tree(TreeGeneratorParams(min_nodes=20, max_nodes=20),
                         seed=11)
    # FB=1 forces preemptions, so the trace carries "i" instant markers.
    config = replace(ProtocolConfig.interruptible(1),
                     telemetry=TelemetryConfig.tracing(sample_dt=10))
    engine = ProtocolEngine(tree, config, 300)
    tracer = Tracer()
    engine.tracer = tracer
    result = engine.run()
    return result, tracer


@pytest.fixture(scope="module")
def snapshot(traced_run):
    return traced_run[0].telemetry


class TestJsonl:
    def test_round_trip_by_value(self, snapshot, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        assert dump_jsonl(snapshot, path) == 1
        assert dump_jsonl([snapshot, snapshot], path) == 2  # appends
        loaded = load_jsonl(path)
        assert len(loaded) == 3
        for other in loaded:
            assert other == snapshot

    def test_rejects_foreign_records(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "something-else"}\n')
        with pytest.raises(ReproError):
            load_jsonl(str(path))


class TestCsv:
    def test_header_and_rows(self, snapshot, tmp_path):
        path = tmp_path / "series.csv"
        rows = dump_csv(snapshot, str(path))
        lines = path.read_text().strip().split("\n")
        header = lines[0].split(",")
        assert header[0] == "time"
        assert sorted(header[1:]) == sorted(snapshot.series)
        assert len(lines) == rows + 1
        assert rows == len(snapshot.series["completed"][0])
        # Each row parses back to the series values.
        first = lines[1].split(",")
        assert int(first[0]) == snapshot.series[header[1]][0][0]


class TestChromeTrace:
    def test_requires_some_input(self):
        with pytest.raises(ReproError):
            chrome_trace()

    def test_valid_json_with_expected_phases(self, traced_run, tmp_path):
        result, tracer = traced_run
        path = tmp_path / "run.trace.json"
        count = write_chrome_trace(str(path), result.telemetry, tracer=tracer)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert len(events) == count
        phases = {e["ph"] for e in events}
        assert {"M", "X", "i", "C"} <= phases
        assert doc["otherData"]["num_nodes"] == result.telemetry.num_nodes

    def test_slices_monotone_per_lane(self, traced_run):
        result, tracer = traced_run
        doc = chrome_trace(result.telemetry, tracer=tracer)
        lanes = defaultdict(list)
        for event in doc["traceEvents"]:
            if event["ph"] in ("X", "C"):
                key = (event["pid"], event.get("tid"), event["name"])
                lanes[key].append(event["ts"])
        for key, stamps in lanes.items():
            assert stamps == sorted(stamps), key

    def test_counter_tracks_match_series(self, snapshot):
        doc = chrome_trace(snapshot)
        by_name = defaultdict(list)
        for event in doc["traceEvents"]:
            if event["ph"] == "C":
                by_name[event["name"]].append(event["args"]["value"])
        for name, (_, values) in snapshot.series.items():
            assert by_name[name] == list(values)
        # Per-node tracks are exported under name/nodeN.
        for name, per_node in snapshot.node_series.items():
            for node, (_, values) in per_node.items():
                assert by_name[f"{name}/node{node}"] == list(values)

    def test_slices_cover_compute_intervals(self, traced_run):
        _result, tracer = traced_run
        doc = chrome_trace(tracer=tracer)
        slices = [e for e in doc["traceEvents"]
                  if e["ph"] == "X" and e["name"] == "compute"]
        expected = sum(len(tracer.compute_intervals(node))
                       for node in range(20))
        assert len(slices) == expected


class TestExportAuto:
    def test_dispatch_by_extension(self, snapshot, tmp_path):
        jsonl = str(tmp_path / "out.jsonl")
        csv = str(tmp_path / "out.csv")
        trace = str(tmp_path / "out.trace.json")
        assert export_auto(jsonl, [snapshot, snapshot]) == 2
        assert load_jsonl(jsonl)[0] == snapshot
        assert export_auto(csv, snapshot) > 0
        assert export_auto(trace, snapshot) > 0
        json.loads((tmp_path / "out.trace.json").read_text())

    def test_csv_rejects_ensembles(self, snapshot, tmp_path):
        with pytest.raises(ReproError):
            export_auto(str(tmp_path / "out.csv"), [snapshot, snapshot])

    def test_nothing_to_export(self, tmp_path):
        with pytest.raises(ReproError):
            export_auto(str(tmp_path / "out.trace.json"), [])
