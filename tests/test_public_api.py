"""Tests for the top-level package surface and assorted uncovered paths."""

import subprocess
import sys

import pytest

import repro


class TestLazyExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_platform_exports(self):
        assert repro.PlatformTree is not None
        assert repro.TreeNode is not None
        tree = repro.generate_tree(repro.TreeGeneratorParams(
            min_nodes=3, max_nodes=5), seed=1)
        assert 3 <= tree.num_nodes <= 5

    def test_solver_exports(self):
        tree = repro.PlatformTree.single_node(4)
        assert repro.solve_tree(tree).rate == repro.solve_fork(4, []).rate
        assert repro.SteadyStateSolution is not None
        assert repro.ForkSolution is not None

    def test_protocol_exports(self):
        result = repro.simulate(repro.PlatformTree.single_node(2), 5,
                                repro.ProtocolConfig.interruptible(3))
        assert isinstance(result, repro.SimulationResult)

    def test_harness_exports(self):
        assert repro.HarnessConfig is not None
        assert repro.RetryPolicy is not None
        assert repro.RunCoverage is not None
        assert repro.SeedFailure is not None
        assert repro.CheckpointStore is not None
        config = repro.HarnessConfig(max_retries=1)
        assert config.policy().max_retries == 1

    def test_simulation_result_fingerprint(self):
        tree = repro.PlatformTree.single_node(2)
        config = repro.ProtocolConfig.interruptible(3)
        a = repro.simulate(tree, 5, config).fingerprint()
        b = repro.simulate(tree, 5, config).fingerprint()
        c = repro.simulate(tree, 6, config).fingerprint()
        assert a == b  # deterministic reruns match exactly
        assert a != c
        assert len(a) == 64  # sha256 hex

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing

    def test_error_hierarchy(self):
        for exc in (repro.SimulationError, repro.PlatformError,
                    repro.SolverError, repro.ProtocolError,
                    repro.ExperimentError):
            assert issubclass(exc, repro.ReproError)


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fig7"],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0
        assert "Figure 7" in proc.stdout

    def test_help_lists_experiments(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0
        for name in ("fig4", "table2", "analyze", "simulate"):
            assert name in proc.stdout


class TestReporting:
    def test_format_table_alignment(self):
        from repro.experiments.reporting import format_table

        text = format_table(["name", "value"],
                            [["a", 1], ["long-name", 22]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "="
        # numeric column right-aligned
        assert lines[3].endswith("value") or lines[3].rstrip().endswith("-")
        assert lines[-1].endswith("22")

    def test_fmt_helpers(self):
        from repro.experiments.reporting import fmt_num, fmt_opt, fmt_pct

        assert fmt_pct(12.345) == "12.3%"
        assert fmt_num(1.23456, 2) == "1.23"
        assert fmt_opt(None) == "-"
        assert fmt_opt(7) == "7"


class TestConditionEdgeCases:
    def test_condition_over_already_failed_processed_child(self):
        from repro.sim import AllOf, Environment

        env = Environment()
        bad = env.event()
        bad.fail(RuntimeError("early"))
        bad.defused = True
        env.run()  # bad is now processed
        cond = AllOf(env, [bad, env.timeout(1)])
        with pytest.raises(RuntimeError, match="early"):
            env.run(until=cond)

    def test_run_until_already_processed_event(self):
        from repro.sim import Environment

        env = Environment()
        ev = env.event()
        ev.succeed("done")
        env.run()
        assert env.run(until=ev) == "done"  # returns immediately
