"""Edge cases: float weights, extreme shapes, deep chains, wide forks."""

from fractions import Fraction

import pytest

from repro.platform import PlatformTree
from repro.protocols import ProtocolConfig, simulate
from repro.steady_state import solve_tree

IC3 = ProtocolConfig.interruptible(3)


class TestFloatWeights:
    """Integer timesteps are the default, but nothing in the engine or the
    solver requires them; sub-unit float weights must work end to end."""

    def test_float_chain(self):
        tree = PlatformTree.linear_chain([0.5, 0.25], [0.125])
        result = simulate(tree, IC3, 400)
        assert len(result.completion_times) == 400
        assert result.makespan == pytest.approx(
            result.completion_times[-1])

    def test_float_rate_matches_solver(self):
        tree = PlatformTree.fork(2.5, [(0.5, 1.25), (1.5, 3.75)])
        optimal = float(solve_tree(tree).rate)
        result = simulate(tree, IC3, 3000)
        times = result.completion_times
        x = 1000
        rate = x / (times[2 * x - 1] - times[x - 1])
        assert rate == pytest.approx(optimal, rel=0.02)

    def test_mixed_int_float(self):
        tree = PlatformTree([3, 1.5], [(0, 1, 2)])
        result = simulate(tree, IC3, 100)
        assert sum(result.per_node_computed) == 100


class TestExtremeShapes:
    def test_deep_chain_does_not_blow_recursion(self):
        """Synchronous request cascades climb the whole ancestry; a
        600-node chain exceeds Python's default 1000-frame limit several
        times over and must still run (the engine raises the limit)."""
        n = 600
        tree = PlatformTree.linear_chain([5] * n, [1] * (n - 1))
        result = simulate(tree, IC3, 300)
        assert sum(result.per_node_computed) == 300

    def test_star_with_many_children(self):
        n = 400
        tree = PlatformTree([10**6] + [7] * (n - 1),
                            [(0, i, 1 + (i % 5)) for i in range(1, n)])
        result = simulate(tree, IC3, 500)
        assert sum(result.per_node_computed) == 500
        # Bandwidth-centric: the c=1 children do (almost) all the work.
        cheap = [i for i in range(1, n) if tree.c[i] == 1]
        cheap_work = sum(result.per_node_computed[i] for i in cheap)
        assert cheap_work > 400

    def test_single_task(self):
        result = simulate(PlatformTree.linear_chain([5, 1], [1]), IC3, 1)
        assert sum(result.per_node_computed) == 1

    def test_tasks_fewer_than_nodes(self):
        tree = PlatformTree([4] + [2] * 6, [(0, i, 1) for i in range(1, 7)])
        result = simulate(tree, IC3, 3)
        assert sum(result.per_node_computed) == 3

    def test_identical_edge_costs_tie_break_by_id(self):
        """Equal c: the lower-id child is served first (deterministic)."""
        tree = PlatformTree.fork(10**6, [(3, 5), (3, 5)])
        result = simulate(tree, ProtocolConfig.interruptible(1), 2)
        # Both tasks go through node 1 first (one computed each eventually,
        # but the first dispatch targets node 1).
        assert result.per_node_computed[1] >= result.per_node_computed[2]

    def test_huge_weight_disparity(self):
        tree = PlatformTree.fork(10**9, [(1, 1), (10**6, 10**6)])
        result = simulate(tree, IC3, 50)
        assert result.per_node_computed[1] >= 48


class TestWindDown:
    def test_last_tasks_at_slow_nodes_still_complete(self):
        # Root computes nothing useful; slow child holds stragglers.
        tree = PlatformTree.fork(10**9, [(1, 3), (2, 10**4)])
        result = simulate(tree, IC3, 60)
        assert sum(result.per_node_computed) == 60
        assert result.makespan >= 10**4  # the straggler really ran

    def test_makespan_includes_root_cpu(self):
        """The root's own (slow) CPU takes a task at t=0 and holds the
        makespan — the wind-down semantics the model implies."""
        tree = PlatformTree.linear_chain([10**6, 1], [1])
        result = simulate(tree, IC3, 10)
        assert result.makespan == 10**6
        assert result.per_node_computed[0] == 1
