"""Tests for buffer-growth semantics: damping, held high-water, literal mode."""

import pytest

from repro.platform import PlatformTree, figure2a_tree, generate_tree
from repro.platform.generator import TreeGeneratorParams
from repro.protocols import ProtocolConfig, simulate

GROWING = ProtocolConfig.non_interruptible()


class TestHeldHighWater:
    def test_held_never_exceeds_pool(self):
        result = simulate(figure2a_tree(), GROWING, 400)
        for held, pool in zip(result.per_node_max_held,
                              result.per_node_max_buffers):
            assert held <= pool

    def test_root_holds_nothing(self):
        """The repository is not buffered: the root's held count stays 0."""
        result = simulate(figure2a_tree(), GROWING, 200)
        assert result.per_node_max_held[0] == 0

    def test_fed_child_holds_at_least_one(self):
        result = simulate(figure2a_tree(), GROWING, 200)
        assert result.per_node_max_held[1] >= 1

    def test_max_held_property(self):
        result = simulate(figure2a_tree(), GROWING, 200)
        assert result.max_held == max(result.per_node_max_held)

    def test_fixed_ic_held_bounded_by_fb(self):
        result = simulate(figure2a_tree(), ProtocolConfig.interruptible(3), 400)
        assert result.max_held <= 3

    def test_held_timeline_recorded(self):
        result = simulate(figure2a_tree(), GROWING, 200,
                          record_buffer_timeline=True)
        timeline = result.held_high_water_at_completion
        assert len(timeline) == 200
        assert all(a <= b for a, b in zip(timeline, timeline[1:]))
        assert timeline[-1] == result.max_held


class TestGrowthDamping:
    def test_damped_growth_bounded_by_arrivals(self):
        """With the per-arrival cooldown, a node grows at most once per task
        it receives (plus its initial buffer)."""
        tree = generate_tree(
            TreeGeneratorParams(min_nodes=8, max_nodes=25), seed=5)
        result = simulate(tree, GROWING, 200)
        # Arrivals at node i == tasks its subtree consumed.
        subtree_tasks = [0] * tree.num_nodes
        for node_id in tree.postorder():
            subtree_tasks[node_id] = result.per_node_computed[node_id] + sum(
                subtree_tasks[cid] for cid in tree.children[node_id])
        for node_id in range(tree.num_nodes):
            if node_id != tree.root:
                assert (result.per_node_max_buffers[node_id]
                        <= subtree_tasks[node_id] + 1)

    def test_literal_mode_grows_more(self):
        """growth_cooldown=False is the undamped literal reading — it must
        over-grow relative to the damped default on a forwarding platform."""
        tree = generate_tree(
            TreeGeneratorParams(min_nodes=30, max_nodes=60, max_comp=500),
            seed=3)
        damped = simulate(tree, GROWING, 500)
        literal = simulate(
            tree, ProtocolConfig.non_interruptible(growth_cooldown=False), 500)
        assert literal.max_buffers > damped.max_buffers

    def test_damping_still_reaches_figure2a_need(self):
        """Damping must not prevent growing the 3 buffers Figure 2(a) needs."""
        result = simulate(figure2a_tree(), GROWING, 500)
        assert result.per_node_max_buffers[1] >= 3

    def test_growth_disabled_never_grows(self):
        cfg = ProtocolConfig.non_interruptible(2, buffer_growth=False)
        result = simulate(figure2a_tree(), cfg, 300)
        assert result.max_buffers == 2
