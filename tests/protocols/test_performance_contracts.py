"""Performance contracts: the engine must stay fast enough for ensembles.

Not micro-benchmarks (those live in ``benchmarks/``) but hard ceilings on
algorithmic behaviour — event counts and memory shape — that would
silently blow up ensemble experiments if a change made them quadratic.
"""

import pytest

from repro.platform import PlatformTree, generate_tree
from repro.protocols import ProtocolConfig, simulate

IC3 = ProtocolConfig.interruptible(3)


class TestEventComplexity:
    def test_events_linear_in_tasks(self):
        """Calendar entries per task must be bounded (no re-queueing storms)."""
        tree = generate_tree(seed=3)
        small = simulate(tree, IC3, 500)
        large = simulate(tree, IC3, 2000)
        per_task_small = small.events_processed / 500
        per_task_large = large.events_processed / 2000
        # Amortized entries per task must not grow with the task count.
        assert per_task_large <= per_task_small * 1.5 + 2
        # And stay modest in absolute terms (compute + a few transfer hops).
        assert per_task_large < 60

    def test_events_bounded_on_star(self):
        """A 300-child star must not devolve into per-request rescans that
        multiply events: entries stay linear in tasks."""
        n = 300
        tree = PlatformTree([10**6] + [5] * (n - 1),
                            [(0, i, 1 + i % 7) for i in range(1, n)])
        result = simulate(tree, IC3, 600)
        assert result.events_processed < 600 * 30

    def test_preemptions_bounded_per_task(self):
        """Each delivered task can trigger at most a handful of preemptions
        (one per strictly-better child appearing mid-transfer)."""
        tree = generate_tree(seed=11)
        result = simulate(tree, IC3, 1500)
        assert result.preemptions < 6 * 1500


class TestMemoryShape:
    def test_result_size_independent_of_makespan(self):
        """Only per-node arrays and one entry per completion are retained —
        a long virtual run must not retain per-event state."""
        tree = PlatformTree.fork(10**6, [(1, 10**4), (2, 10**4)])
        result = simulate(tree, IC3, 50)  # huge makespan, tiny run
        assert len(result.completion_times) == 50
        assert len(result.per_node_computed) == 3
        assert result.buffer_high_water_at_completion == ()

    def test_ic_shelf_bounded_by_children(self):
        from repro.protocols import ProtocolEngine

        tree = generate_tree(seed=7)
        engine = ProtocolEngine(tree, IC3, 400)
        max_shelf = [0]

        def watch(time, item):
            for node in engine.nodes:
                if len(node.shelf) > max_shelf[0]:
                    max_shelf[0] = len(node.shelf)
                assert len(node.shelf) <= len(node.children)

        engine.env.trace_hook = watch
        engine.run()
        assert max_shelf[0] >= 1  # shelving actually happened
