"""Cross-validation of the protocols against the steady-state theory.

The central claims of the paper, checked on exact instances:

* IC with 3 buffers sustains the provably optimal steady-state rate;
* non-IC with too few fixed buffers falls short on the Figure 2 platforms;
* the buffer counts at which non-IC recovers match the analytic bounds.
"""

from fractions import Fraction

import pytest

from repro.platform import figure1_tree, figure2a_tree, figure2b_tree
from repro.platform.generator import TreeGeneratorParams, generate_tree
from repro.protocols import ProtocolConfig, simulate
from repro.steady_state import min_buffers_nonic_fork, solve_tree


def steady_window_rate(result, fraction=3):
    """Average rate over the window [N/f, 2N/f] of completions (exact)."""
    times = result.completion_times
    x = len(times) // fraction
    return Fraction(x, times[2 * x - 1] - times[x - 1])


def normalized_steady_rate(tree, config, num_tasks=3000):
    optimal = solve_tree(tree).rate
    result = simulate(tree, config, num_tasks)
    return steady_window_rate(result) / optimal


class TestHeadlineResult:
    """IC/FB=3 reaches optimal steady state (the paper's 99.5% claim)."""

    @pytest.mark.parametrize("seed", [3, 11, 42, 100, 7, 23, 55])
    def test_ic3_reaches_optimal_on_random_trees(self, seed):
        tree = generate_tree(seed=seed)
        norm = normalized_steady_rate(tree, ProtocolConfig.interruptible(3),
                                      num_tasks=3000)
        assert norm > Fraction(97, 100)

    def test_ic3_reaches_optimal_on_figure1(self):
        norm = normalized_steady_rate(figure1_tree(),
                                      ProtocolConfig.interruptible(3))
        assert norm > Fraction(99, 100)

    def test_steady_rate_never_beats_optimal_by_much(self):
        """Windowed rates wiggle around optimal but cannot exceed it
        systematically (here: by more than 2%)."""
        for seed in (3, 11, 42):
            tree = generate_tree(seed=seed)
            norm = normalized_steady_rate(tree, ProtocolConfig.interruptible(3))
            assert norm < Fraction(102, 100)


class TestFigure2a:
    """One buffer does not suffice under non-IC (paper §3.1, case 1)."""

    def test_one_fixed_buffer_falls_short(self):
        norm = normalized_steady_rate(
            figure2a_tree(), ProtocolConfig.non_interruptible(1, buffer_growth=False))
        assert norm < Fraction(3, 4)

    def test_two_fixed_buffers_still_short(self):
        norm = normalized_steady_rate(
            figure2a_tree(), ProtocolConfig.non_interruptible(2, buffer_growth=False))
        assert norm < Fraction(99, 100)

    def test_three_fixed_buffers_suffice(self):
        """min_buffers_nonic_fork(5, 2) == 3, and indeed 3 buffers work."""
        assert min_buffers_nonic_fork(5, 2) == 3
        norm = normalized_steady_rate(
            figure2a_tree(), ProtocolConfig.non_interruptible(3, buffer_growth=False))
        assert norm > Fraction(99, 100)

    def test_ic_needs_only_one_buffer_here(self):
        """Interruptible sends mean B never waits on C: FB=1 already works."""
        norm = normalized_steady_rate(
            figure2a_tree(), ProtocolConfig.interruptible(1))
        assert norm > Fraction(99, 100)

    def test_buffer_growth_recovers_optimal(self):
        norm = normalized_steady_rate(
            figure2a_tree(), ProtocolConfig.non_interruptible(1))
        assert norm > Fraction(99, 100)


class TestFigure2b:
    """For every k there is a tree needing more than k buffers (§3.1 case 2)."""

    @pytest.mark.parametrize("k", [3, 4, 6])
    def test_k_buffers_insufficient_k_plus_one_sufficient(self, k):
        tree = figure2b_tree(k, x=4)
        with_k = normalized_steady_rate(
            tree, ProtocolConfig.non_interruptible(k, buffer_growth=False))
        with_k1 = normalized_steady_rate(
            tree, ProtocolConfig.non_interruptible(k + 1, buffer_growth=False))
        assert with_k < Fraction(999, 1000)
        assert with_k1 > Fraction(999, 1000)

    @pytest.mark.parametrize("k", [3, 6])
    def test_ic3_handles_any_k(self, k):
        norm = normalized_steady_rate(figure2b_tree(k, x=4),
                                      ProtocolConfig.interruptible(3))
        assert norm > Fraction(999, 1000)


class TestFlawedProtocolGuard:
    """§3.1 case 4: unlimited buffers may over-request and rob siblings; the
    growth rules must keep the damage bounded enough to still reach optimal
    on the canonical examples."""

    def test_growth_does_not_prevent_optimal_on_figure1(self):
        norm = normalized_steady_rate(figure1_tree(),
                                      ProtocolConfig.non_interruptible())
        assert norm > Fraction(98, 100)

    def test_growth_overgrows_buffers(self):
        """The flip side the paper reports (Table 2): rampant growth."""
        result = simulate(figure2a_tree(), ProtocolConfig.non_interruptible(),
                          3000)
        assert result.max_buffers > 50
