"""Tests for dynamic node churn: live joins and graceful departures."""

from fractions import Fraction

import pytest

from repro.errors import PlatformError, ProtocolError
from repro.platform import (
    ChurnSchedule,
    JoinEvent,
    LeaveEvent,
    PlatformTree,
    figure1_tree,
)
from repro.protocols import PriorityRule, ProtocolConfig, ProtocolEngine, simulate
from repro.steady_state import solve_tree

IC3 = ProtocolConfig.interruptible(3)


def fast_worker(w=2):
    """A single-node subtree: one fast worker."""
    return PlatformTree.single_node(w)


def tail_rate(result, skip):
    times = result.completion_times
    return Fraction(len(times) - skip, times[-1] - times[skip - 1])


class TestEventValidation:
    def test_join_validation(self):
        with pytest.raises(PlatformError):
            JoinEvent(at_time=-1, parent=0, subtree=fast_worker(), attach_cost=1)
        with pytest.raises(PlatformError):
            JoinEvent(at_time=0, parent=-1, subtree=fast_worker(), attach_cost=1)
        with pytest.raises(PlatformError):
            JoinEvent(at_time=0, parent=0, subtree="nope", attach_cost=1)
        with pytest.raises(PlatformError):
            JoinEvent(at_time=0, parent=0, subtree=fast_worker(), attach_cost=0)

    def test_leave_validation(self):
        with pytest.raises(PlatformError):
            LeaveEvent(at_time=-1, node=1)
        with pytest.raises(PlatformError):
            LeaveEvent(at_time=0, node=-1)

    def test_schedule_rejects_root_leave(self):
        sched = ChurnSchedule([LeaveEvent(at_time=5, node=0)])
        with pytest.raises(PlatformError):
            sched.validate(figure1_tree())

    def test_schedule_rejects_impossible_leave_target(self):
        sched = ChurnSchedule([LeaveEvent(at_time=5, node=99)])
        with pytest.raises(PlatformError):
            sched.validate(figure1_tree())

    def test_schedule_allows_leave_of_joined_node(self):
        sched = ChurnSchedule([
            JoinEvent(at_time=5, parent=0, subtree=fast_worker(), attach_cost=1),
            LeaveEvent(at_time=50, node=8),  # the node joined above
        ])
        sched.validate(figure1_tree())

    def test_events_sorted_by_time(self):
        sched = ChurnSchedule([
            LeaveEvent(at_time=50, node=1),
            JoinEvent(at_time=5, parent=0, subtree=fast_worker(), attach_cost=1),
        ])
        assert [e.at_time for e in sched] == [5, 50]

    def test_fifo_with_churn_rejected(self):
        cfg = ProtocolConfig.non_interruptible(priority_rule=PriorityRule.FIFO)
        sched = ChurnSchedule([LeaveEvent(at_time=5, node=1)])
        with pytest.raises(ProtocolError):
            ProtocolEngine(figure1_tree(), cfg, 10, churn=sched)


class TestJoin:
    def test_joined_worker_computes(self):
        sched = ChurnSchedule([
            JoinEvent(at_time=50, parent=0, subtree=fast_worker(2),
                      attach_cost=1)])
        result = simulate(figure1_tree(), IC3, 1000, churn=sched)
        assert result.tree.num_nodes == 9
        assert result.per_node_computed[8] > 0
        assert sum(result.per_node_computed) == 1000

    def test_throughput_rises_toward_new_optimal(self):
        base_tree = figure1_tree()
        grown_tree = base_tree.copy()
        grown_tree.attach_subtree(0, fast_worker(2), cost=1)
        new_optimal = solve_tree(grown_tree).rate
        assert new_optimal > solve_tree(base_tree).rate

        sched = ChurnSchedule([
            JoinEvent(at_time=50, parent=0, subtree=fast_worker(2),
                      attach_cost=1)])
        result = simulate(base_tree, IC3, 2000, churn=sched)
        rate = tail_rate(result, skip=600)
        assert abs(float(rate / new_optimal) - 1) < 0.05

    def test_join_whole_subtree(self):
        subtree = PlatformTree([4, 2, 3], [(0, 1, 1), (0, 2, 2)])
        sched = ChurnSchedule([
            JoinEvent(at_time=30, parent=1, subtree=subtree, attach_cost=2)])
        result = simulate(figure1_tree(), IC3, 800, churn=sched)
        assert result.tree.num_nodes == 11
        assert result.tree.parent[8] == 1
        assert result.tree.parent[9] == 8 and result.tree.parent[10] == 8
        assert sum(result.per_node_computed) == 800

    def test_join_under_joined_node(self):
        sched = ChurnSchedule([
            JoinEvent(at_time=30, parent=0, subtree=fast_worker(3),
                      attach_cost=1),
            JoinEvent(at_time=60, parent=8, subtree=fast_worker(2),
                      attach_cost=1),
        ])
        result = simulate(figure1_tree(), IC3, 1000, churn=sched)
        assert result.tree.num_nodes == 10
        assert result.tree.parent[9] == 8
        assert sum(result.per_node_computed) == 1000

    def test_join_under_unknown_node_fails(self):
        sched = ChurnSchedule([
            JoinEvent(at_time=30, parent=42, subtree=fast_worker(),
                      attach_cost=1)])
        with pytest.raises(ProtocolError):
            simulate(figure1_tree(), IC3, 500, churn=sched)


class TestLeave:
    def test_no_work_lost_on_departure(self):
        sched = ChurnSchedule([LeaveEvent(at_time=100, node=1)])
        result = simulate(figure1_tree(), IC3, 1000, churn=sched)
        assert sum(result.per_node_computed) == 1000
        assert result.departed_node_ids == (1,)

    def test_subtree_departs_together(self):
        sched = ChurnSchedule([LeaveEvent(at_time=100, node=5)])
        result = simulate(figure1_tree(), IC3, 1000, churn=sched)
        assert set(result.departed_node_ids) == {5, 6, 7}

    def test_throughput_drops_toward_reduced_optimal(self):
        base_tree = figure1_tree()
        reduced_optimal = solve_tree(base_tree.pruned(1)).rate
        assert reduced_optimal < solve_tree(base_tree).rate

        sched = ChurnSchedule([LeaveEvent(at_time=100, node=1)])
        result = simulate(base_tree, IC3, 2000, churn=sched)
        rate = tail_rate(result, skip=800)
        assert abs(float(rate / reduced_optimal) - 1) < 0.05

    def test_departed_node_computes_nothing_after_drain(self):
        """The departed node's compute count freezes once it drains."""
        sched = ChurnSchedule([LeaveEvent(at_time=100, node=1)])
        engine = ProtocolEngine(figure1_tree(), IC3, 1500, churn=sched)
        result = engine.run()
        node = engine.nodes[1]
        assert node.tasks_held == 0 and node.incoming == 0
        assert node.requested == 0
        # It computed some tasks early, far fewer than the ~2/3 share it
        # takes in the steady optimal schedule.
        assert 0 < result.per_node_computed[1] < 300

    def test_leave_before_its_join_rejected_statically(self):
        # The leave fires before the join that would create node 8, so the
        # schedule validator rejects it outright.
        sched = ChurnSchedule([
            JoinEvent(at_time=10, parent=0, subtree=fast_worker(),
                      attach_cost=1),
            LeaveEvent(at_time=5, node=8),  # fires before the join!
        ])
        with pytest.raises(PlatformError):
            simulate(figure1_tree(), IC3, 500, churn=sched)

    def test_join_under_departed_node_fails(self):
        sched = ChurnSchedule([
            LeaveEvent(at_time=10, node=5),
            JoinEvent(at_time=20, parent=5, subtree=fast_worker(),
                      attach_cost=1),
        ])
        with pytest.raises(ProtocolError):
            simulate(figure1_tree(), IC3, 500, churn=sched)


class TestChurnStorm:
    def test_many_events_conserve_tasks(self):
        """A volatile pool: joins and leaves interleaved, nothing lost."""
        events = []
        next_id = 8
        for i in range(6):
            events.append(JoinEvent(at_time=40 * (i + 1), parent=0,
                                    subtree=fast_worker(2 + i),
                                    attach_cost=1 + i % 3))
            next_id += 1
        events.append(LeaveEvent(at_time=100, node=2))
        events.append(LeaveEvent(at_time=150, node=8))
        events.append(LeaveEvent(at_time=260, node=10))
        result = simulate(figure1_tree(), IC3, 2000,
                          churn=ChurnSchedule(events))
        assert sum(result.per_node_computed) == 2000
        assert set(result.departed_node_ids) == {2, 3, 4, 8, 10}

    def test_invariants_hold_under_churn(self):
        events = [
            JoinEvent(at_time=50, parent=0, subtree=fast_worker(2),
                      attach_cost=1),
            LeaveEvent(at_time=120, node=1),
            JoinEvent(at_time=200, parent=5, subtree=fast_worker(4),
                      attach_cost=2),
        ]
        engine = ProtocolEngine(figure1_tree(), IC3, 1200,
                                churn=ChurnSchedule(events))

        def check(time, item):
            for node in engine.nodes:
                if not node.is_root:
                    assert node.buffers_total == (
                        node.tasks_held + node.requested + node.incoming)
                assert node.child_requests == sum(
                    ch.requested for ch in node.children)

        engine.env.trace_hook = check
        result = engine.run()
        assert sum(result.per_node_computed) == 1200
