"""Fault tolerance on graph platforms: routed events, recovery, chaos.

The tree fault model ("a node" or "a node's parent link") generalizes on
:class:`PlatformGraph` runs to *routed* faults — an edge-addressed link
failure degrades every flow crossing it, a switch crash takes its whole
incident link set down, a degrade window squeezes bandwidth without
changing routes.  These tests pin the deterministic total order of
same-instant graph events (mirroring the tree ``_EVENT_RANK`` tests),
the static validation of graph schedules, partition detection and
overlay re-election, the recovery bookkeeping (wasted transfers,
re-executions, reclaims), and the seeded chaos generator the soak gate
is built on.
"""

from fractions import Fraction

import pytest

from repro.errors import PlatformError, ProtocolError
from repro.platform import (
    CrashEvent,
    DegradeEvent,
    EdgeFailureEvent,
    EdgeRepairEvent,
    FaultSchedule,
    LinkFailureEvent,
    LinkRepairEvent,
    Mutation,
    SwitchCrashEvent,
    chaos_schedule,
    generate_platform,
)
from repro.platform.generator import generate_tree
from repro.protocols import (
    PriorityRule,
    ProtocolConfig,
    reassign_orphans,
    simulate_graph,
    topology_overlay,
)

CONFIG = ProtocolConfig.interruptible(3)


def _leafspine():
    return generate_platform("leafspine", seed=7)


def _head_and_mates(graph):
    """First overlay rack head that actually has rack-mates."""
    overlay = topology_overlay(graph)
    parent = overlay.tree.parent
    for oid in range(1, len(overlay.hosts)):
        if parent[oid] != 0:
            continue
        head = overlay.hosts[oid]
        mates = [overlay.hosts[o] for o in range(1, len(overlay.hosts))
                 if parent[o] == oid]
        if mates:
            return head, mates
    raise AssertionError("no rack head with mates in this fabric")


class TestSameTimeOrdering:
    """Graph kinds extend the tree rank: tree events < edge failure <
    edge repair < switch crash < degrade, then id breaks ties."""

    def test_kind_rank_at_equal_time(self):
        schedule = FaultSchedule([
            DegradeEvent(at_time=10, link=1, factor=Fraction(1, 2),
                         duration=50),
            SwitchCrashEvent(at_time=10, node=4),
            EdgeRepairEvent(at_time=10, link=0),
            CrashEvent(at_time=10, node=2),
            EdgeFailureEvent(at_time=10, link=2),
            LinkFailureEvent(at_time=10, node=3),
        ])
        assert [type(e) for e in schedule] == [
            LinkFailureEvent, CrashEvent, EdgeFailureEvent,
            EdgeRepairEvent, SwitchCrashEvent, DegradeEvent]

    def test_link_id_breaks_remaining_ties(self):
        schedule = FaultSchedule([
            EdgeFailureEvent(at_time=10, link=9),
            EdgeFailureEvent(at_time=10, link=4),
        ])
        assert [e.link for e in schedule] == [4, 9]

    def test_tree_events_sort_before_graph_events(self):
        # Tree-addressed kinds keep their exact historical positions, so
        # pre-existing tree schedules are byte-stable under the new ranks.
        schedule = FaultSchedule([
            EdgeFailureEvent(at_time=10, link=0),
            LinkRepairEvent(at_time=10, node=99),
            LinkFailureEvent(at_time=10, node=99),
        ])
        assert [type(e) for e in schedule] == [
            LinkFailureEvent, LinkRepairEvent, EdgeFailureEvent]

    def test_order_independent_of_construction(self):
        events = [
            SwitchCrashEvent(at_time=10, node=4),
            EdgeFailureEvent(at_time=10, link=2),
            EdgeRepairEvent(at_time=10, link=2),
            DegradeEvent(at_time=5, link=0, factor=Fraction(1, 3),
                         duration=20),
        ]
        reference = FaultSchedule(events).events
        assert FaultSchedule(reversed(events)).events == reference
        assert FaultSchedule(events[::2] + events[1::2]).events == reference


class TestValidateGraph:
    def test_unknown_link_rejected(self):
        graph = generate_platform("star", seed=7)
        schedule = FaultSchedule([EdgeFailureEvent(at_time=1, link=9999)])
        with pytest.raises(PlatformError, match="unknown link"):
            schedule.validate_graph(graph)

    def test_root_fault_rejected(self):
        graph = generate_platform("star", seed=7)
        schedule = FaultSchedule([CrashEvent(at_time=1, node=graph.root)])
        with pytest.raises(PlatformError, match="repository root"):
            schedule.validate_graph(graph)

    def test_double_edge_failure_rejected(self):
        graph = generate_platform("star", seed=7)
        schedule = FaultSchedule([
            EdgeFailureEvent(at_time=1, link=0),
            EdgeFailureEvent(at_time=5, link=0),
        ])
        with pytest.raises(PlatformError, match="already down"):
            schedule.validate_graph(graph)

    def test_repair_without_failure_rejected(self):
        graph = generate_platform("star", seed=7)
        schedule = FaultSchedule([EdgeRepairEvent(at_time=1, link=0)])
        with pytest.raises(PlatformError, match="never down"):
            schedule.validate_graph(graph)

    def test_switch_crash_on_host_rejected(self):
        graph = _leafspine()
        host = next(h for h in graph.hosts if h != graph.root)
        schedule = FaultSchedule([SwitchCrashEvent(at_time=1, node=host)])
        with pytest.raises(PlatformError, match="is a host"):
            schedule.validate_graph(graph)

    def test_host_crash_on_switch_rejected(self):
        graph = _leafspine()
        schedule = FaultSchedule(
            [CrashEvent(at_time=1, node=graph.switches[0])])
        with pytest.raises(PlatformError, match="is a switch"):
            schedule.validate_graph(graph)

    def test_events_on_crash_killed_link_rejected(self):
        graph = _leafspine()
        switch = graph.switches[0]
        incident = next(l for l, u, v, _c in graph.links()
                        if switch in (u, v))
        schedule = FaultSchedule([
            SwitchCrashEvent(at_time=10, node=switch),
            EdgeFailureEvent(at_time=20, link=incident),
        ])
        with pytest.raises(PlatformError, match="never repairs"):
            schedule.validate_graph(graph)

    def test_post_crash_node_events_rejected(self):
        graph = _leafspine()
        host = next(h for h in graph.hosts if h != graph.root)
        schedule = FaultSchedule([
            CrashEvent(at_time=10, node=host),
            CrashEvent(at_time=20, node=host),
        ])
        with pytest.raises(PlatformError, match="already crashed"):
            schedule.validate_graph(graph)

    def test_overlapping_degrade_windows_rejected(self):
        graph = generate_platform("star", seed=7)
        schedule = FaultSchedule([
            DegradeEvent(at_time=10, link=0, factor=Fraction(1, 2),
                         duration=100),
            DegradeEvent(at_time=50, link=0, factor=Fraction(1, 4),
                         duration=10),
        ])
        with pytest.raises(PlatformError, match="still open"):
            schedule.validate_graph(graph)

    def test_multihop_tree_link_event_rejected(self):
        # On a leaf-spine fabric every overlay route crosses the fabric;
        # "host X's parent link" is ambiguous there, so the tree-addressed
        # special case refuses and points at the edge-addressed events.
        graph = _leafspine()
        head, _mates = _head_and_mates(graph)
        schedule = FaultSchedule([LinkFailureEvent(at_time=10, node=head)])
        with pytest.raises(PlatformError, match="multi-hop"):
            schedule.validate_graph(graph, topology_overlay(graph))

    def test_degrade_factor_must_be_exact(self):
        with pytest.raises(PlatformError, match="exact Fraction"):
            DegradeEvent(at_time=1, link=0, factor=0.5, duration=10)
        with pytest.raises(PlatformError, match=r"in \(0, 1\)"):
            DegradeEvent(at_time=1, link=0, factor=Fraction(3, 2),
                         duration=10)


class TestPartitionDetection:
    def test_unreachable_host_has_no_route(self):
        graph = generate_platform("chain", seed=7).copy()
        graph.fail_link(1)  # severs hosts 2.. from the repository
        assert graph.route_or_none(graph.root, 2) is None
        assert graph.route_or_none(graph.root, 1) is not None
        graph.repair_link(1)
        assert graph.route_or_none(graph.root, 2) is not None

    def test_partition_parks_then_heals(self):
        # Failing the chain's first link cuts every worker off; the root
        # computes alone until the repair readmits them, and the bag
        # still completes with the in-flight loss reclaimed.
        graph = generate_platform("chain", seed=7)
        schedule = FaultSchedule([
            EdgeFailureEvent(at_time=5, link=0),
            EdgeRepairEvent(at_time=155, link=0),
        ])
        result = simulate_graph(graph, CONFIG, 120, faults=schedule,
                                check_invariants=True)
        assert len(result.completion_times) == 120
        assert result.transfers_wasted >= 1
        assert result.tasks_reexecuted >= 1
        assert result.reclaim_times

    def test_permanent_partition_still_completes(self):
        # A switch crash never repairs: the severed rack parks forever
        # and the surviving hosts absorb its share of the bag.
        graph = _leafspine()
        schedule = FaultSchedule(
            [SwitchCrashEvent(at_time=40, node=graph.switches[0])])
        result = simulate_graph(graph, CONFIG, 150, faults=schedule,
                                check_invariants=True)
        assert len(result.completion_times) == 150
        assert result.crashed_node_ids == ()  # no *host* died

    def test_permanent_partition_deterministic(self):
        graph = _leafspine()

        def run():
            schedule = FaultSchedule(
                [SwitchCrashEvent(at_time=40, node=graph.switches[0])])
            return simulate_graph(graph, CONFIG, 150,
                                  faults=schedule).fingerprint()

        assert run() == run()


class TestOverlayReelection:
    def test_leafspine_reelection_is_lowest_orphan(self):
        graph = _leafspine()
        head, mates = _head_and_mates(graph)
        mapping = reassign_orphans(graph, head, mates, graph.root)
        new_head = min(mates)
        want = {m: new_head for m in mates}
        want[new_head] = graph.root
        assert mapping == want

    def test_non_leafspine_orphans_go_to_grandparent(self):
        graph = generate_platform("star", seed=7)
        assert reassign_orphans(graph, 3, [4, 5], graph.root) == {
            4: graph.root, 5: graph.root}

    def test_no_orphans_no_mapping(self):
        graph = _leafspine()
        assert reassign_orphans(graph, 1, [], graph.root) == {}

    def test_head_crash_end_to_end(self):
        graph = _leafspine()
        head, _mates = _head_and_mates(graph)
        schedule = FaultSchedule([CrashEvent(at_time=40, node=head)])
        result = simulate_graph(graph, CONFIG, 150, faults=schedule,
                                check_invariants=True)
        assert result.crashed_node_ids == (head,)
        assert result.crash_times == (40,)
        assert len(result.completion_times) == 150


class TestRecovery:
    def test_mid_transfer_kill_wastes_and_reexecutes(self):
        graph = generate_platform("chain", seed=7)
        schedule = FaultSchedule([
            EdgeFailureEvent(at_time=10, link=0),
            EdgeRepairEvent(at_time=160, link=0),
        ])
        result = simulate_graph(graph, CONFIG, 120, faults=schedule,
                                check_invariants=True)
        assert result.transfers_wasted == 1
        assert result.tasks_reexecuted == 1
        assert len(result.completion_times) == 120

    def test_degrade_changes_the_run(self):
        graph = _leafspine()
        schedule = FaultSchedule([
            DegradeEvent(at_time=20, link=0, factor=Fraction(1, 4),
                         duration=200)])
        degraded = simulate_graph(graph, CONFIG, 120, faults=schedule,
                                  check_invariants=True)
        clean = simulate_graph(graph, CONFIG, 120)
        assert len(degraded.completion_times) == 120
        assert degraded.fingerprint() != clean.fingerprint()

    def test_empty_schedule_is_fault_free(self):
        graph = generate_platform("star", seed=7)
        want = simulate_graph(graph, CONFIG, 120).fingerprint()
        got = simulate_graph(graph, CONFIG, 120,
                             faults=FaultSchedule()).fingerprint()
        assert got == want

    def test_chaos_run_repeatable(self):
        graph = generate_platform("star", seed=7)

        def run():
            return simulate_graph(
                graph, CONFIG, 120,
                faults=chaos_schedule(graph, seed=11),
                check_invariants=True).fingerprint()

        assert run() == run()

    def test_warp_stands_down_under_graph_faults(self):
        graph = generate_platform("star", seed=7)
        warp_config = ProtocolConfig.interruptible(3, warp=True)

        def schedule():
            return FaultSchedule([
                EdgeFailureEvent(at_time=10, link=0),
                EdgeRepairEvent(at_time=60, link=0),
            ])

        warped = simulate_graph(graph, warp_config, 120, faults=schedule())
        assert warped.warp.applied is False
        assert "fault schedule" in warped.warp.reason
        exact = simulate_graph(graph, CONFIG, 120, faults=schedule())
        assert warped.fingerprint() == exact.fingerprint()


class TestChaosSchedule:
    @pytest.mark.parametrize("shape", ["star", "chain", "leafspine"])
    def test_same_seed_same_schedule(self, shape):
        graph = generate_platform(shape, seed=7)
        a = chaos_schedule(graph, seed=5)
        b = chaos_schedule(graph, seed=5)
        assert a.events == b.events

    def test_tree_chaos_validates(self):
        tree = generate_tree(seed=3)
        schedule = chaos_schedule(tree, seed=5)
        schedule.validate(tree)  # must not raise
        assert not schedule.has_graph_events()

    @pytest.mark.parametrize("shape", ["star", "chain", "leafspine"])
    def test_graph_chaos_validates_with_overlay(self, shape):
        graph = generate_platform(shape, seed=7)
        schedule = chaos_schedule(graph, seed=5)
        schedule.validate_graph(graph, topology_overlay(graph))

    @pytest.mark.parametrize("shape", ["star", "chain", "leafspine"])
    def test_chaos_conserves_the_bag(self, shape):
        graph = generate_platform(shape, seed=7)
        result = simulate_graph(graph, CONFIG, 100,
                                faults=chaos_schedule(graph, seed=23),
                                check_invariants=True)
        assert len(result.completion_times) == 100


class TestAPIGuards:
    """The front-door rejections stay pinned to their exact messages."""

    def test_graph_mutations_rejected(self):
        from repro import simulate

        graph = generate_platform("star", seed=7)
        mutation = Mutation(node=1, attribute="w", value=graph.w[1],
                            at_time=50)
        with pytest.raises(ProtocolError,
                           match="graph platforms do not support them"):
            simulate(graph, 50, CONFIG, mutations=[mutation])

    def test_fifo_with_faults_rejected(self):
        graph = generate_platform("star", seed=7)
        fifo = ProtocolConfig.non_interruptible(
            priority_rule=PriorityRule.FIFO)
        schedule = FaultSchedule([EdgeFailureEvent(at_time=10, link=0),
                                  EdgeRepairEvent(at_time=60, link=0)])
        with pytest.raises(ProtocolError,
                           match="FIFO ordering are unsupported"):
            simulate_graph(graph, fifo, 50, faults=schedule)
