"""Ablation tests: bandwidth-centric priorities vs FIFO / compute-centric."""

from fractions import Fraction

import pytest

from repro.platform import PlatformTree
from repro.protocols import PriorityRule, ProtocolConfig, simulate
from repro.steady_state import solve_tree

#: A platform where the rules disagree hard: child A has the cheap edge but
#: a slow CPU, child B has a fast CPU behind an expensive edge.  The root
#: computes essentially nothing.  Optimal: saturate A (share 2/2 = 1).
CONTRAST = PlatformTree.fork(10**9, [(2, 2), (3, 1)])


def steady_rate(result, fraction=3):
    times = result.completion_times
    x = len(times) // fraction
    return Fraction(x, times[2 * x - 1] - times[x - 1])


class TestComputeCentric:
    def test_bandwidth_centric_beats_compute_centric(self):
        optimal = solve_tree(CONTRAST).rate
        bw = simulate(CONTRAST, ProtocolConfig.non_interruptible(
            3, buffer_growth=False), 2000)
        cc = simulate(CONTRAST, ProtocolConfig.non_interruptible(
            3, buffer_growth=False,
            priority_rule=PriorityRule.COMPUTE_CENTRIC), 2000)
        bw_norm = steady_rate(bw) / optimal
        cc_norm = steady_rate(cc) / optimal
        assert bw_norm > Fraction(99, 100)
        # Compute-centric funnels tasks to B at one per c=3 → rate 1/3
        # instead of 1/2: at best ~2/3 of optimal.
        assert cc_norm < Fraction(3, 4)

    def test_compute_centric_prefers_fast_cpu(self):
        cc = simulate(CONTRAST, ProtocolConfig.non_interruptible(
            3, buffer_growth=False,
            priority_rule=PriorityRule.COMPUTE_CENTRIC), 500)
        assert cc.per_node_computed[2] > cc.per_node_computed[1]

    def test_bandwidth_centric_prefers_cheap_edge(self):
        bw = simulate(CONTRAST, ProtocolConfig.non_interruptible(
            3, buffer_growth=False), 500)
        assert bw.per_node_computed[1] > bw.per_node_computed[2]


class TestFifo:
    def test_fifo_conserves_tasks(self):
        cfg = ProtocolConfig.non_interruptible(
            2, buffer_growth=False, priority_rule=PriorityRule.FIFO)
        result = simulate(CONTRAST, cfg, 600)
        assert sum(result.per_node_computed) == 600

    def test_fifo_splits_by_demand_not_priority(self):
        """FIFO serves requests in arrival order, so the slow-edge child
        still gets a large share — unlike bandwidth-centric."""
        cfg = ProtocolConfig.non_interruptible(
            2, buffer_growth=False, priority_rule=PriorityRule.FIFO)
        result = simulate(CONTRAST, cfg, 600)
        assert result.per_node_computed[2] > 100

    def test_fifo_at_most_bandwidth_centric(self):
        optimal = solve_tree(CONTRAST).rate
        cfg = ProtocolConfig.non_interruptible(
            2, buffer_growth=False, priority_rule=PriorityRule.FIFO)
        result = simulate(CONTRAST, cfg, 2000)
        assert steady_rate(result) <= optimal

    def test_fifo_deterministic(self):
        cfg = ProtocolConfig.non_interruptible(
            2, buffer_growth=False, priority_rule=PriorityRule.FIFO)
        a = simulate(CONTRAST, cfg, 400)
        b = simulate(CONTRAST, cfg, 400)
        assert a.completion_times == b.completion_times
