"""Tests for protocol configuration."""

import pytest

from repro.errors import ProtocolError
from repro.protocols import PriorityRule, ProtocolConfig, ProtocolVariant


class TestFactories:
    def test_interruptible_defaults(self):
        cfg = ProtocolConfig.interruptible()
        assert cfg.variant is ProtocolVariant.INTERRUPTIBLE
        assert cfg.initial_buffers == 3
        assert not cfg.buffer_growth
        assert cfg.max_buffers is None
        assert cfg.priority_rule is PriorityRule.BANDWIDTH_CENTRIC

    def test_interruptible_buffers(self):
        assert ProtocolConfig.interruptible(1).initial_buffers == 1

    def test_non_interruptible_defaults(self):
        cfg = ProtocolConfig.non_interruptible()
        assert cfg.variant is ProtocolVariant.NON_INTERRUPTIBLE
        assert cfg.initial_buffers == 1
        assert cfg.buffer_growth

    def test_non_interruptible_fixed(self):
        cfg = ProtocolConfig.non_interruptible(2, buffer_growth=False)
        assert cfg.initial_buffers == 2 and not cfg.buffer_growth


class TestValidation:
    def test_initial_buffers_at_least_one(self):
        with pytest.raises(ProtocolError):
            ProtocolConfig.interruptible(0)

    def test_max_buffers_consistency(self):
        with pytest.raises(ProtocolError):
            ProtocolConfig.non_interruptible(5, max_buffers=3)
        cfg = ProtocolConfig.non_interruptible(1, max_buffers=10)
        assert cfg.max_buffers == 10

    def test_fifo_cannot_be_interruptible(self):
        with pytest.raises(ProtocolError):
            ProtocolConfig.interruptible(3, priority_rule=PriorityRule.FIFO)
        ProtocolConfig.non_interruptible(priority_rule=PriorityRule.FIFO)


class TestLabels:
    def test_paper_legend_labels(self):
        assert ProtocolConfig.interruptible(3).label == "IC, FB=3"
        assert ProtocolConfig.non_interruptible().label == "non-IC, IB=1"
        assert ProtocolConfig.non_interruptible(
            2, buffer_growth=False).label == "non-IC, FB=2"

    def test_baseline_labels_flag_the_rule(self):
        cfg = ProtocolConfig.non_interruptible(
            priority_rule=PriorityRule.COMPUTE_CENTRIC)
        assert "compute-centric" in cfg.label
