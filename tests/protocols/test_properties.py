"""Property-based tests of the protocol engine on random platforms."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.platform.generator import TreeGeneratorParams, generate_tree
from repro.protocols import ProtocolConfig, simulate
from repro.steady_state import solve_tree

SMALL = TreeGeneratorParams(min_nodes=2, max_nodes=20, max_comm=10, max_comp=60)

config_strategy = st.sampled_from([
    ProtocolConfig.interruptible(1),
    ProtocolConfig.interruptible(2),
    ProtocolConfig.interruptible(3),
    ProtocolConfig.non_interruptible(),
    ProtocolConfig.non_interruptible(3, buffer_growth=False),
])


@given(seed=st.integers(0, 10_000), config=config_strategy,
       num_tasks=st.integers(1, 120))
@settings(max_examples=60, deadline=None)
def test_conservation_and_ordering(seed, config, num_tasks):
    tree = generate_tree(SMALL, seed=seed)
    result = simulate(tree, config, num_tasks)
    assert sum(result.per_node_computed) == num_tasks
    times = result.completion_times
    assert len(times) == num_tasks
    assert all(a <= b for a, b in zip(times, times[1:]))
    assert all(t > 0 for t in times)


@given(seed=st.integers(0, 10_000), config=config_strategy)
@settings(max_examples=40, deadline=None)
def test_makespan_lower_bound(seed, config):
    """No protocol can finish N tasks faster than the steady-state optimum
    allows: makespan >= N * w_tree (up to the very first task's pipeline
    fill, which only increases the makespan)."""
    tree = generate_tree(SMALL, seed=seed)
    num_tasks = 60
    result = simulate(tree, config, num_tasks)
    w_tree = solve_tree(tree).w_tree
    assert result.makespan >= num_tasks * w_tree - w_tree  # first-task slack


@given(seed=st.integers(0, 10_000), buffers=st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_fixed_buffer_configs_never_grow(seed, buffers):
    """Fixed-buffer protocols must never allocate extra buffers, and only
    interruptible runs may preempt.  (Note the paper's own caveat: *more*
    fixed buffers can lengthen startup and wind-down, so makespan is not
    monotone in the buffer count — we assert the ledger, not speed.)"""
    tree = generate_tree(SMALL, seed=seed)
    ic = simulate(tree, ProtocolConfig.interruptible(buffers), 150)
    assert all(b == buffers for b in ic.per_node_max_buffers)
    non_ic = simulate(
        tree, ProtocolConfig.non_interruptible(buffers, buffer_growth=False), 150)
    assert all(b == buffers for b in non_ic.per_node_max_buffers)
    assert non_ic.preemptions == 0


@given(seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_used_nodes_form_connected_region(seed):
    """Used nodes + forwarding ancestors reach the root: a task can only be
    computed where a chain of transfers delivered it."""
    tree = generate_tree(SMALL, seed=seed)
    result = simulate(tree, ProtocolConfig.interruptible(3), 100)
    for node_id in result.used_node_ids:
        path = tree.path_to_root(node_id)
        assert path[-1] == tree.root


@given(seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_non_ic_buffer_count_bounded_by_tasks(seed):
    """Growth is event-driven: a node cannot grow more buffers than there
    were triggering events (completions + transfers)."""
    tree = generate_tree(SMALL, seed=seed)
    num_tasks = 80
    result = simulate(tree, ProtocolConfig.non_interruptible(), num_tasks)
    assert result.max_buffers <= num_tasks + result.transfers + 1
