"""Tests for dynamic platform changes during a run (§4.2.3 adaptability)."""

from fractions import Fraction

import pytest

from repro.platform import Mutation, MutationSchedule, figure1_tree
from repro.protocols import ProtocolConfig, simulate
from repro.steady_state import solve_tree

NONIC_FB2 = ProtocolConfig.non_interruptible(2, buffer_growth=False)


def tail_rate(result, skip):
    """Exact rate over completions after the first ``skip``."""
    times = result.completion_times
    count = len(times) - skip
    return Fraction(count, times[-1] - times[skip - 1])


class TestTaskTriggered:
    def test_result_tree_reflects_mutation(self):
        sched = MutationSchedule([
            Mutation(node=1, attribute="c", value=3, after_tasks=200)])
        result = simulate(figure1_tree(), NONIC_FB2, 1000, mutations=sched)
        assert result.tree.c[1] == 3

    def test_contention_slows_throughput(self):
        """Paper Fig. 7: raising c1 from 1 to 3 after 200 tasks lowers the
        achieved rate to approximately the new optimum."""
        mutated_tree = figure1_tree()
        mutated_tree.set_edge_cost(1, 3)
        new_optimal = solve_tree(mutated_tree).rate

        sched = MutationSchedule([
            Mutation(node=1, attribute="c", value=3, after_tasks=200)])
        result = simulate(figure1_tree(), NONIC_FB2, 1000, mutations=sched)
        rate = tail_rate(result, skip=400)  # well past the change
        assert abs(rate - new_optimal) / new_optimal < Fraction(3, 100)

    def test_relief_speeds_throughput(self):
        """Paper Fig. 7: dropping w1 from 3 to 1 raises the rate."""
        mutated_tree = figure1_tree()
        mutated_tree.set_compute_weight(1, 1)
        new_optimal = solve_tree(mutated_tree).rate
        base_optimal = solve_tree(figure1_tree()).rate
        assert new_optimal > base_optimal

        sched = MutationSchedule([
            Mutation(node=1, attribute="w", value=1, after_tasks=200)])
        result = simulate(figure1_tree(), NONIC_FB2, 1000, mutations=sched)
        rate = tail_rate(result, skip=400)
        assert rate > base_optimal  # clearly faster than the old optimum
        assert abs(rate - new_optimal) / new_optimal < Fraction(3, 100)

    def test_multiple_mutations_apply_in_order(self):
        sched = MutationSchedule([
            Mutation(node=1, attribute="c", value=3, after_tasks=100),
            Mutation(node=1, attribute="c", value=2, after_tasks=300),
        ])
        result = simulate(figure1_tree(), NONIC_FB2, 600, mutations=sched)
        assert result.tree.c[1] == 2

    def test_ic_adapts_too(self):
        sched = MutationSchedule([
            Mutation(node=1, attribute="c", value=3, after_tasks=200)])
        mutated_tree = figure1_tree()
        mutated_tree.set_edge_cost(1, 3)
        new_optimal = solve_tree(mutated_tree).rate
        result = simulate(figure1_tree(), ProtocolConfig.interruptible(3),
                          1000, mutations=sched)
        rate = tail_rate(result, skip=400)
        assert abs(rate - new_optimal) / new_optimal < Fraction(3, 100)


class TestTimeTriggered:
    def test_applied_at_virtual_time(self):
        sched = MutationSchedule([
            Mutation(node=1, attribute="w", value=9, at_time=50)])
        result = simulate(figure1_tree(), NONIC_FB2, 400, mutations=sched)
        assert result.tree.w[1] == 9

    def test_priorities_reorder_after_c_change(self):
        """Making P1's edge the most expensive must redirect tasks to other
        children (P1 was the root's favourite before)."""
        sched = MutationSchedule([
            Mutation(node=1, attribute="c", value=50, after_tasks=100)])
        base = simulate(figure1_tree(), NONIC_FB2, 1000)
        changed = simulate(figure1_tree(), NONIC_FB2, 1000, mutations=sched)
        assert changed.per_node_computed[1] < base.per_node_computed[1]
        # The freed bandwidth flows to site 3 (P5's subtree).
        site3_base = sum(base.per_node_computed[i] for i in (5, 6, 7))
        site3_changed = sum(changed.per_node_computed[i] for i in (5, 6, 7))
        assert site3_changed > site3_base
