"""Golden-trace regression tests: exact event sequences on tiny platforms.

These lock the protocol's micro-behaviour.  The Figure 2(a) fork under
interruptible communication is hand-verified below; any change to the
scheduling rules, priority order, preemption timing or request bookkeeping
will shift these events and fail loudly.
"""

import pytest

from repro.platform import PlatformTree, figure2a_tree
from repro.protocols import ProtocolConfig, ProtocolEngine, Tracer
from repro.protocols import trace as tr


def traced(tree, config, num_tasks):
    engine = ProtocolEngine(tree, config, num_tasks)
    tracer = Tracer(limit=None)
    engine.tracer = tracer
    result = engine.run()
    return result, tracer


class TestFigure2aInterruptibleGolden:
    """A (root, w=10) with B (c=1, w=2) and C (c=5, w=8); IC, FB=1.

    Hand-trace: A computes from t=0 and pipelines tasks to B every time B's
    buffer frees; the 5-unit send to C starts at t=2 and is preempted by
    B's request every 2 steps (t=3,5,7,9), resuming in between, finally
    completing at t=11 after 5 units of sliced service.
    """

    @pytest.fixture(scope="class")
    def trace(self):
        _result, tracer = traced(figure2a_tree(parent_w=10),
                                 ProtocolConfig.interruptible(1), 12)
        return tracer

    def test_opening_event_sequence(self, trace):
        expected = [
            (0, tr.COMPUTE_START, 0, None),   # A's CPU takes task 1
            (0, tr.SEND_START, 0, 1),         # A starts feeding B
            (1, tr.SEND_DONE, 0, 1),
            (1, tr.SEND_START, 0, 1),         # B consumed instantly; next one
            (1, tr.COMPUTE_START, 1, None),
            (2, tr.SEND_DONE, 0, 1),
            (2, tr.SEND_START, 0, 2),         # port free: the 5-unit C send
            (3, tr.COMPUTE_DONE, 1, None),
            (3, tr.PREEMPT, 0, 2),            # B's request interrupts C
            (3, tr.SEND_START, 0, 1),
            (3, tr.COMPUTE_START, 1, None),
            (4, tr.SEND_DONE, 0, 1),
            (4, tr.SEND_RESUME, 0, 2),        # C resumes with 4 units left
        ]
        got = [(e.time, e.kind, e.node, e.peer) for e in trace.events]
        assert got[:len(expected)] == expected

    def test_preemption_rhythm(self, trace):
        """C's send is preempted exactly at t=3,5,7,9 (B's period of 2)."""
        preempts = [e.time for e in trace.events if e.kind == tr.PREEMPT]
        assert preempts[:4] == [3, 5, 7, 9]

    def test_c_transfer_completes_after_sliced_service(self, trace):
        done = [e.time for e in trace.events
                if e.kind == tr.SEND_DONE and e.peer == 2]
        assert done[0] == 11  # 5 units of service between t=2 and t=11

    def test_b_never_idles_once_warm(self, trace):
        """From t=1 on, B's compute intervals abut seamlessly (the IC
        headline: the fastest-communicating child never waits)."""
        intervals = trace.compute_intervals(1)
        warm = [iv for iv in intervals if iv[0] <= 21]
        for (s1, e1), (s2, e2) in zip(warm, warm[1:]):
            assert s2 == e1  # back-to-back

    def test_a_cpu_cadence(self, trace):
        starts = [e.time for e in trace.events
                  if e.kind == tr.COMPUTE_START and e.node == 0]
        assert starts[:2] == [0, 10]  # w=10, always busy


class TestFigure2aNonInterruptibleGolden:
    """Same platform, non-IC with one fixed buffer: once the C send starts
    at t=2 it pins the port for 5 full units and B starves."""

    @pytest.fixture(scope="class")
    def trace(self):
        cfg = ProtocolConfig.non_interruptible(1, buffer_growth=False)
        _result, tracer = traced(figure2a_tree(parent_w=10), cfg, 12)
        return tracer

    def test_no_preemptions(self, trace):
        assert trace.count(tr.PREEMPT) == 0

    def test_c_send_blocks_port_for_five_units(self, trace):
        c_sends = [(e.time, e.kind) for e in trace.events
                   if e.peer == 2 and e.kind in (tr.SEND_START, tr.SEND_DONE)]
        start_t, done_t = c_sends[0][0], c_sends[1][0]
        assert done_t - start_t == 5  # uninterrupted

    def test_b_starves_during_c_send(self, trace):
        """B (FB=1) runs dry while the port serves C: its compute intervals
        have a gap in the first C-send window."""
        intervals = trace.compute_intervals(1)
        gaps = [(s2 - e1) for (s1, e1), (s2, e2) in zip(intervals, intervals[1:])]
        assert any(g > 0 for g in gaps[:4])


class TestChainGolden:
    """Root (w=2) → child (c=1, w=2), IC/FB=1: strict alternation."""

    def test_exact_completion_interleaving(self):
        tree = PlatformTree.linear_chain([2, 2], [1])
        result, trace = traced(tree, ProtocolConfig.interruptible(1), 6)
        assert result.completion_times == (2, 3, 4, 5, 6, 7)
        by_node = [e.node for e in trace.events
                   if e.kind == tr.COMPUTE_DONE]
        assert by_node == [0, 1, 0, 1, 0, 1]
