"""Tests for buffer decay (§2.2's "optimally, buffer decay" — implemented).

Decay sheds buffers a node grew but no longer needs: after a configurable
streak of completions/forwards during which the node was never starved, the
next freed buffer is destroyed instead of re-requested.
"""

from fractions import Fraction

import pytest

from repro.errors import ProtocolError
from repro.platform import Mutation, MutationSchedule, figure2a_tree, generate_tree
from repro.platform.generator import TreeGeneratorParams
from repro.protocols import ProtocolConfig, ProtocolEngine, simulate
from repro.steady_state import solve_tree

DECAYING = ProtocolConfig.non_interruptible(buffer_decay=True)


class TestConfig:
    def test_decay_requires_growth(self):
        with pytest.raises(ProtocolError):
            ProtocolConfig.non_interruptible(buffer_growth=False,
                                             buffer_decay=True)

    def test_threshold_validated(self):
        with pytest.raises(ProtocolError):
            ProtocolConfig.non_interruptible(buffer_decay=True,
                                             decay_threshold=0)

    def test_default_off(self):
        result = simulate(figure2a_tree(), ProtocolConfig.non_interruptible(), 200)
        assert result.buffers_decayed == 0


class TestDecayBehaviour:
    def test_decay_sheds_buffers(self):
        base = simulate(figure2a_tree(), ProtocolConfig.non_interruptible(), 2000)
        decayed = simulate(figure2a_tree(), DECAYING, 2000)
        assert decayed.buffers_decayed > 0
        assert decayed.max_buffers <= base.max_buffers

    def test_pool_never_below_initial(self):
        engine = ProtocolEngine(figure2a_tree(), DECAYING, 1000)
        result = engine.run()
        for node in engine.nodes:
            if not node.is_root:
                assert node.buffers_total >= 1

    def test_ledger_invariant_with_decay(self):
        engine = ProtocolEngine(figure2a_tree(), DECAYING, 500)

        def check(time, item):
            for node in engine.nodes:
                if not node.is_root:
                    assert node.buffers_total == (
                        node.tasks_held + node.requested + node.incoming)

        engine.env.trace_hook = check
        engine.run()

    def test_rate_preserved_under_decay(self):
        """Decay must not cost steady-state throughput on Figure 2(a)."""
        tree = figure2a_tree()
        optimal = solve_tree(tree).rate
        result = simulate(tree, DECAYING, 3000)
        times = result.completion_times
        x = 1000
        rate = Fraction(x, times[2 * x - 1] - times[x - 1])
        assert rate / optimal > Fraction(99, 100)

    def test_decay_on_random_trees_conserves_tasks(self):
        params = TreeGeneratorParams(min_nodes=10, max_nodes=40)
        for seed in (1, 5, 9):
            tree = generate_tree(params, seed=seed)
            result = simulate(tree, DECAYING, 300)
            assert sum(result.per_node_computed) == 300

    def test_higher_threshold_decays_less(self):
        eager = simulate(figure2a_tree(),
                         ProtocolConfig.non_interruptible(
                             buffer_decay=True, decay_threshold=2), 2000)
        lazy = simulate(figure2a_tree(),
                        ProtocolConfig.non_interruptible(
                            buffer_decay=True, decay_threshold=50), 2000)
        assert eager.buffers_decayed >= lazy.buffers_decayed


class TestDecayAfterContentionPasses:
    def test_pool_shrinks_when_slow_phase_ends(self):
        """Grow during a slow-link phase, shed once the link recovers.

        Child C's edge starts expensive (forcing B to stockpile), then
        becomes cheap at task 500: B's surplus buffers should decay.
        """
        tree = figure2a_tree()
        tree.set_edge_cost(2, 40)  # long C sends → B needs a deep stock
        schedule = MutationSchedule([
            Mutation(node=2, attribute="c", value=2, after_tasks=500)])
        engine = ProtocolEngine(tree, DECAYING, 4000, mutations=schedule)
        result = engine.run()
        node_b = engine.nodes[1]
        assert result.per_node_max_buffers[1] > 3  # grew during contention
        assert node_b.buffers_decayed > 0          # shed afterwards
        assert node_b.buffers_total < result.per_node_max_buffers[1]
