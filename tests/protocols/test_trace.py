"""Tests for the protocol tracer and the ASCII Gantt renderer."""

import pytest

from repro.errors import ProtocolError
from repro.platform import (
    Mutation,
    MutationSchedule,
    PlatformTree,
    figure2a_tree,
)
from repro.protocols import ProtocolConfig, ProtocolEngine, Tracer, ascii_gantt
from repro.protocols import trace as tr


def traced_run(tree, config, num_tasks, tracer=None, mutations=None):
    engine = ProtocolEngine(tree, config, num_tasks, mutations=mutations)
    tracer = tracer if tracer is not None else Tracer()
    engine.tracer = tracer
    result = engine.run()
    return result, tracer


class TestTracerBasics:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError):
            Tracer(kinds=["bogus"])

    def test_requests_filtered_by_default(self):
        _result, tracer = traced_run(figure2a_tree(), ProtocolConfig.interruptible(2), 50)
        assert tracer.count(tr.REQUEST) == 0
        assert tracer.count(tr.COMPUTE_DONE) > 0

    def test_requests_recorded_when_asked(self):
        tracer = Tracer(kinds=[tr.REQUEST])
        _result, tracer = traced_run(figure2a_tree(),
                                     ProtocolConfig.interruptible(2), 50,
                                     tracer=tracer)
        assert tracer.count(tr.REQUEST) > 0
        assert tracer.count(tr.COMPUTE_DONE) == 0

    def test_compute_count_matches_result(self):
        result, tracer = traced_run(figure2a_tree(),
                                    ProtocolConfig.interruptible(2), 80)
        assert tracer.count(tr.COMPUTE_DONE) == 80
        for node in range(3):
            assert len(tracer.compute_intervals(node)) == \
                result.per_node_computed[node]

    def test_preempt_count_matches_result(self):
        result, tracer = traced_run(figure2a_tree(),
                                    ProtocolConfig.interruptible(1), 200)
        assert tracer.count(tr.PREEMPT) == result.preemptions
        assert result.preemptions > 0

    def test_send_legs_close(self):
        """Every send leg has matched start/end; no interval is negative."""
        _result, tracer = traced_run(figure2a_tree(),
                                     ProtocolConfig.interruptible(1), 150)
        legs = tracer.send_intervals(0)
        assert legs
        for start, end in legs:
            assert 0 <= start <= end

    def test_growth_events_recorded(self):
        result, tracer = traced_run(figure2a_tree(),
                                    ProtocolConfig.non_interruptible(), 200)
        grown = sum(b - 1 for b in result.per_node_max_buffers[1:])
        assert tracer.count(tr.GROW) == grown

    def test_mutation_event_recorded(self):
        sched = MutationSchedule([
            Mutation(node=1, attribute="c", value=3, after_tasks=20)])
        _result, tracer = traced_run(
            figure2a_tree(), ProtocolConfig.interruptible(2), 60,
            mutations=sched)
        assert tracer.count(tr.MUTATION) == 1

    def test_limit_drops_oldest(self):
        tracer = Tracer(limit=10)
        _result, tracer = traced_run(figure2a_tree(),
                                     ProtocolConfig.interruptible(2), 100,
                                     tracer=tracer)
        assert len(tracer) == 10
        assert tracer.dropped > 0

    def test_limited_tracer_keeps_exact_tail(self):
        """FIFO eviction keeps exactly the newest ``limit`` events, and
        ``len + dropped`` accounts for every event the unlimited run saw."""
        unlimited = Tracer()
        _result, unlimited = traced_run(figure2a_tree(),
                                        ProtocolConfig.interruptible(2), 100,
                                        tracer=unlimited)
        limited = Tracer(limit=25)
        _result, limited = traced_run(figure2a_tree(),
                                      ProtocolConfig.interruptible(2), 100,
                                      tracer=limited)
        full = list(unlimited.events)
        kept = list(limited.events)
        assert kept == full[-25:]
        assert limited.dropped == len(full) - 25

    def test_limited_eviction_cost_stays_flat(self):
        """Eviction is O(1) per event (deque), not O(n) (list.pop(0)) —
        a tight limit on a long run must not change what is kept."""
        tracer = Tracer(limit=2)
        _result, tracer = traced_run(figure2a_tree(),
                                     ProtocolConfig.interruptible(2), 200,
                                     tracer=tracer)
        unlimited = Tracer()
        _result, unlimited = traced_run(figure2a_tree(),
                                        ProtocolConfig.interruptible(2), 200,
                                        tracer=unlimited)
        assert list(tracer.events) == list(unlimited.events)[-2:]

    def test_for_node(self):
        _result, tracer = traced_run(figure2a_tree(),
                                     ProtocolConfig.interruptible(2), 40)
        events = tracer.for_node(1)
        assert events and all(e.node == 1 for e in events)

    def test_compute_intervals_have_exact_durations(self):
        tree = PlatformTree.linear_chain([3, 5], [2])
        _result, tracer = traced_run(tree, ProtocolConfig.interruptible(2), 30)
        for start, end in tracer.compute_intervals(0):
            assert end - start == 3
        for start, end in tracer.compute_intervals(1):
            assert end - start == 5


class TestPreemptionSemantics:
    def test_preempted_send_total_time_preserved(self):
        """Sum of an interrupted transfer's legs equals the edge cost."""
        _result, tracer = traced_run(figure2a_tree(),
                                     ProtocolConfig.interruptible(1), 120)
        # Transfers to child 2 (c=5) get sliced by requests from child 1.
        legs = [e for e in tracer.events
                if e.node == 0 and e.peer == 2
                and e.kind in (tr.SEND_START, tr.SEND_RESUME,
                               tr.PREEMPT, tr.SEND_DONE)]
        # Walk the legs, accumulating per-transfer transmitted time.
        total, open_at = 0, None
        for event in legs:
            if event.kind in (tr.SEND_START, tr.SEND_RESUME):
                open_at = event.time
            else:
                total += event.time - open_at
                open_at = None
                if event.kind == tr.SEND_DONE:
                    assert total == 5  # the full edge cost, in pieces
                    total = 0


class TestGantt:
    def test_renders_lanes(self):
        _result, tracer = traced_run(figure2a_tree(parent_w=4),
                                     ProtocolConfig.interruptible(2), 60)
        text = ascii_gantt(tracer, num_nodes=3, t0=0, t1=100, width=50)
        lines = text.splitlines()
        assert len(lines) == 4  # header + 3 nodes
        for line in lines[1:]:
            assert line.startswith("P")
            assert len(line.split("|")[1]) == 50
        # Child B computes constantly once warmed up.
        assert "C" in lines[2]

    def test_gantt_validation(self):
        tracer = Tracer()
        with pytest.raises(ProtocolError):
            ascii_gantt(tracer, 1, 10, 10)
        with pytest.raises(ProtocolError):
            ascii_gantt(tracer, 1, 0, 10, width=0)

    def test_node_subset(self):
        _result, tracer = traced_run(figure2a_tree(),
                                     ProtocolConfig.interruptible(2), 40)
        text = ascii_gantt(tracer, num_nodes=3, t0=0, t1=50, nodes=[1])
        assert text.count("\nP") == 1
