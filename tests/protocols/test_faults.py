"""Fault injection and autonomous recovery (crashes, link outages)."""

import pytest

from repro.errors import PlatformError, ProtocolError
from repro.metrics.faults import (post_recovery_rate, recovery_latencies,
                                  recovery_report)
from repro.platform import (ChurnSchedule, CrashEvent, FaultSchedule,
                            JoinEvent, LeaveEvent, LinkFailureEvent,
                            LinkRepairEvent, Mutation, MutationSchedule,
                            PlatformTree, figure1_tree)
from repro.platform.generator import PAPER_DEFAULTS, generate_tree
from repro.protocols import (PriorityRule, ProtocolConfig, ProtocolEngine,
                             simulate)
from repro.protocols import trace as trace_mod
from repro.protocols.trace import Tracer
from repro.steady_state import solve_tree

IC3 = ProtocolConfig.interruptible(3)
NON_IC = ProtocolConfig.non_interruptible()

#: The headline scenario: the subtree rooted at node 2 (nodes 2, 3, 4 of
#: the Figure 1 platform) crashes mid-run and node 5's parent link drops
#: for a while, killing whatever was in flight.
ACCEPTANCE_FAULTS = FaultSchedule([
    CrashEvent(at_time=80, node=2),
    LinkFailureEvent(at_time=60, node=5),
    LinkRepairEvent(at_time=220, node=5),
])


class TestAcceptance:
    def test_crash_and_outage_still_completes_everything(self):
        result = simulate(figure1_tree(), IC3, 2000, faults=ACCEPTANCE_FAULTS)
        assert len(result.completion_times) == 2000
        assert sum(result.per_node_computed) == 2000
        assert result.tasks_reexecuted > 0
        assert result.transfers_wasted > 0
        assert set(result.crashed_node_ids) == {2, 3, 4}
        assert result.crash_times == (80,)

    def test_post_recovery_rate_matches_surviving_tree(self):
        result = simulate(figure1_tree(), IC3, 2000, faults=ACCEPTANCE_FAULTS)
        surviving = result.surviving_tree()
        assert surviving.num_nodes == figure1_tree().num_nodes - 3
        optimal = solve_tree(surviving).rate
        achieved = post_recovery_rate(result)
        assert achieved is not None
        assert abs(float(achieved / optimal) - 1.0) <= 0.05

    def test_non_interruptible_also_recovers(self):
        result = simulate(figure1_tree(), NON_IC, 2000,
                          faults=ACCEPTANCE_FAULTS)
        assert len(result.completion_times) == 2000
        assert result.tasks_reexecuted > 0

    def test_recovery_report(self):
        result = simulate(figure1_tree(), IC3, 2000, faults=ACCEPTANCE_FAULTS)
        report = recovery_report(result)
        assert report.num_crashed_nodes == 3
        assert report.tasks_reexecuted == result.tasks_reexecuted
        assert report.recovery_latencies == tuple(recovery_latencies(result))
        assert all(lat > 0 for lat in report.recovery_latencies)
        assert report.post_recovery_efficiency is not None
        assert report.post_recovery_efficiency >= 0.95

    def test_trace_records_fault_lanes(self):
        engine = ProtocolEngine(figure1_tree(), IC3, 2000,
                                faults=ACCEPTANCE_FAULTS)
        tracer = Tracer()
        engine.tracer = tracer
        engine.run()
        assert tracer.count(trace_mod.CRASH) == 3
        assert tracer.count(trace_mod.LINK_DOWN) == 1
        assert tracer.count(trace_mod.LINK_UP) == 1
        assert tracer.count(trace_mod.SUSPECT) >= 1
        assert tracer.count(trace_mod.RECLAIM) >= 1
        # Reclaims carry the lost-instance count in the peer slot.
        reclaimed = sum(e.peer for e in tracer.events
                        if e.kind == trace_mod.RECLAIM)
        assert reclaimed == engine.tasks_reexecuted


class TestEmptyScheduleIsFree:
    """An empty FaultSchedule must not change a single calendar entry."""

    @pytest.mark.parametrize("config", [IC3, NON_IC],
                             ids=["IC/FB=3", "non-IC"])
    def test_figure1_bit_identical(self, config):
        base = simulate(figure1_tree(), config, 500)
        gated = simulate(figure1_tree(), config, 500, faults=FaultSchedule())
        assert gated.completion_times == base.completion_times
        assert gated.per_node_computed == base.per_node_computed
        assert gated.events_processed == base.events_processed

    def test_random_trees_bit_identical(self):
        for seed in range(5):
            tree = generate_tree(PAPER_DEFAULTS, seed=seed)
            base = simulate(tree, IC3, 400)
            gated = simulate(tree, IC3, 400, faults=FaultSchedule())
            assert gated.completion_times == base.completion_times
            assert gated.events_processed == base.events_processed

    def test_no_fault_result_reports_no_faults(self):
        result = simulate(figure1_tree(), IC3, 100)
        assert result.crashed_node_ids == ()
        assert result.tasks_reexecuted == 0
        assert result.transfers_wasted == 0
        assert result.surviving_tree() is result.tree


class TestRecoverySemantics:
    def test_crashed_nodes_stop_computing(self):
        result = simulate(figure1_tree(), IC3, 2000, faults=ACCEPTANCE_FAULTS)
        survivors = {0, 1, 5, 6, 7}
        lost_side = sum(result.per_node_computed[i] for i in (2, 3, 4))
        # The dead subtree only contributed what it finished before t=80.
        assert lost_side < 2000 // 10
        assert sum(result.per_node_computed[i] for i in survivors) \
            == 2000 - lost_side

    def test_outage_only_is_transparent_to_conservation(self):
        faults = FaultSchedule([
            LinkFailureEvent(at_time=50, node=1),
            LinkRepairEvent(at_time=300, node=1),
        ])
        result = simulate(figure1_tree(), IC3, 1000, faults=faults)
        assert len(result.completion_times) == 1000
        assert result.crashed_node_ids == ()

    def test_quick_flap_repaired_before_detection(self):
        # Repair lands before the first probe (request_timeout=50), so the
        # parent may never even suspect the child.
        faults = FaultSchedule([
            LinkFailureEvent(at_time=100, node=5),
            LinkRepairEvent(at_time=110, node=5),
        ])
        result = simulate(figure1_tree(), IC3, 1000, faults=faults)
        assert len(result.completion_times) == 1000

    def test_long_outage_declares_dead_then_readmits(self):
        # Outage far longer than the full probe backoff (50+100+200):
        # the subtree is declared dead, then re-admitted on repair.
        faults = FaultSchedule([
            LinkFailureEvent(at_time=100, node=5),
            LinkRepairEvent(at_time=2000, node=5),
        ])
        engine = ProtocolEngine(figure1_tree(), IC3, 3000, faults=faults)
        tracer = Tracer()
        engine.tracer = tracer
        result = engine.run()
        assert len(result.completion_times) == 3000
        assert tracer.count(trace_mod.SUSPECT) >= 1
        assert tracer.count(trace_mod.READMIT) >= 1
        # Node 5's subtree survived the partition and computes again after.
        late = [e for e in tracer.events
                if e.kind == trace_mod.COMPUTE_DONE and e.node in (5, 6, 7)
                and e.time > 2000]
        assert late

    def test_crash_of_partitioned_subtree(self):
        # The subtree is unreachable when it dies; no live parent can
        # detect the crash, so the loss must surface via the engine
        # (probes declare the silent child dead after max_retries).
        faults = FaultSchedule([
            LinkFailureEvent(at_time=40, node=2),
            CrashEvent(at_time=60, node=2),
        ])
        result = simulate(figure1_tree(), IC3, 1000, faults=faults)
        assert len(result.completion_times) == 1000
        assert set(result.crashed_node_ids) == {2, 3, 4}

    def test_post_crash_link_events_rejected(self):
        # A repair addressed to a node that already crashed would fire
        # against a dead subtree; validate() now rejects the schedule.
        faults = FaultSchedule([
            LinkFailureEvent(at_time=40, node=2),
            CrashEvent(at_time=60, node=2),
            LinkRepairEvent(at_time=400, node=2),
        ])
        with pytest.raises(PlatformError, match="after the node's crash"):
            simulate(figure1_tree(), IC3, 1000, faults=faults)

    def test_all_root_children_crash(self):
        faults = FaultSchedule([
            CrashEvent(at_time=50, node=1),
            CrashEvent(at_time=50, node=2),
            CrashEvent(at_time=50, node=5),
        ])
        result = simulate(figure1_tree(), IC3, 300, faults=faults)
        assert len(result.completion_times) == 300
        # Only the root is left; it must have finished the reclaimed work.
        assert result.per_node_computed[0] > 0
        assert result.surviving_tree().num_nodes == 1

    def test_timeout_knobs_change_detection_speed(self):
        fast = ProtocolConfig.interruptible(
            3, request_timeout=10, max_retries=2)
        slow = ProtocolConfig.interruptible(
            3, request_timeout=200, max_retries=3)
        # Node 1 is the root's cheapest child: it is always being served,
        # so a crash there is guaranteed to destroy in-system instances.
        faults = FaultSchedule([CrashEvent(at_time=80, node=1)])
        lat_fast = recovery_latencies(
            simulate(figure1_tree(), fast, 2000, faults=faults))
        lat_slow = recovery_latencies(
            simulate(figure1_tree(), slow, 2000, faults=faults))
        assert lat_fast and lat_slow
        assert max(lat_fast) < min(lat_slow)

    def test_faults_with_graceful_churn(self):
        churn = ChurnSchedule([
            JoinEvent(at_time=150, parent=0,
                      subtree=PlatformTree([2, 2], [(0, 1, 1)]),
                      attach_cost=1),
            LeaveEvent(at_time=300, node=1),
        ])
        result = simulate(figure1_tree(), IC3, 1500,
                          faults=ACCEPTANCE_FAULTS, churn=churn)
        assert len(result.completion_times) == 1500
        assert 1 in result.departed_node_ids

    def test_fifo_with_faults_rejected(self):
        config = ProtocolConfig.non_interruptible(
            3, buffer_growth=False, priority_rule=PriorityRule.FIFO)
        with pytest.raises(ProtocolError, match="FIFO"):
            simulate(figure1_tree(), config, 100,
                     faults=FaultSchedule([CrashEvent(at_time=10, node=1)]))

    def test_unknown_node_rejected_at_fire_time(self):
        faults = FaultSchedule([CrashEvent(at_time=10, node=99)])
        with pytest.raises(ProtocolError, match="unknown node"):
            simulate(figure1_tree(), IC3, 100, faults=faults)


class TestDeterminism:
    """Mutations, churn, and faults landing at the same virtual time must
    resolve identically run after run."""

    def _run_once(self):
        tree = figure1_tree()
        mutations = MutationSchedule([
            Mutation(node=1, attribute="c", value=3, at_time=200),
            Mutation(node=5, attribute="w", value=1, at_time=200),
        ])
        churn = ChurnSchedule([
            JoinEvent(at_time=200, parent=0,
                      subtree=PlatformTree([2, 2], [(0, 1, 1)]),
                      attach_cost=1),
        ])
        faults = FaultSchedule([
            CrashEvent(at_time=200, node=2),
            LinkFailureEvent(at_time=200, node=7),
            LinkRepairEvent(at_time=500, node=7),
        ])
        return simulate(tree, IC3, 1200, mutations=mutations, churn=churn,
                        faults=faults)

    def test_same_time_mutation_churn_fault_is_deterministic(self):
        first = self._run_once()
        second = self._run_once()
        assert first.completion_times == second.completion_times
        assert first.per_node_computed == second.per_node_computed
        assert first.events_processed == second.events_processed
        assert first.crashed_node_ids == second.crashed_node_ids
        assert first.reclaim_times == second.reclaim_times
        assert len(first.completion_times) == 1200
