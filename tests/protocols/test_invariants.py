"""Run-time invariant checks on agent state, verified after every event.

The buffer ledger of §3 must balance at all times:
``buffers_total == tasks_held + requested + incoming`` for every non-root
node, and a parent's aggregate request counter must equal the sum of its
children's outstanding requests.  We attach a kernel trace hook and verify
after every processed calendar entry.
"""

import pytest

from repro.platform import figure1_tree, figure2a_tree
from repro.platform.generator import TreeGeneratorParams, generate_tree
from repro.protocols import ProtocolConfig, ProtocolEngine


class InvariantChecker:
    def __init__(self, engine):
        self.engine = engine
        self.checks = 0

    def __call__(self, time, item):
        for node in self.engine.nodes:
            if not node.is_root:
                ledger = node.tasks_held + node.requested + node.incoming
                assert node.buffers_total == ledger, (
                    f"node {node.id} at t={time}: buffers={node.buffers_total} "
                    f"held={node.tasks_held} requested={node.requested} "
                    f"incoming={node.incoming}")
                assert node.undispensed == 0
            assert node.tasks_held >= 0
            assert node.incoming >= 0
            assert node.child_requests == sum(
                ch.requested for ch in node.children)
            if node.current_transfer is not None:
                assert node.current_transfer.remaining > 0
            for child_id in node.shelf:
                assert node.shelf[child_id].remaining > 0
        self.checks += 1


def run_checked(tree, config, num_tasks):
    engine = ProtocolEngine(tree, config, num_tasks)
    checker = InvariantChecker(engine)
    engine.env.trace_hook = checker
    result = engine.run()
    assert checker.checks > 0
    return result


CONFIGS = [
    ProtocolConfig.interruptible(1),
    ProtocolConfig.interruptible(3),
    ProtocolConfig.non_interruptible(),
    ProtocolConfig.non_interruptible(2, buffer_growth=False),
]


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.label)
class TestInvariants:
    def test_figure1(self, config):
        run_checked(figure1_tree(), config, 300)

    def test_figure2a(self, config):
        run_checked(figure2a_tree(parent_w=20), config, 300)

    def test_random_trees(self, config):
        params = TreeGeneratorParams(min_nodes=5, max_nodes=30,
                                     max_comm=10, max_comp=50)
        for seed in (1, 2, 3):
            run_checked(generate_tree(params, seed=seed), config, 150)


class TestFinalState:
    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.label)
    def test_everything_quiescent_at_end(self, config):
        engine = ProtocolEngine(figure1_tree(), config, 200)
        engine.run()
        for node in engine.nodes:
            assert node.tasks_held == 0
            assert node.incoming == 0
            assert not node.cpu_busy
            assert node.current_transfer is None
            assert not node.shelf
            assert node.undispensed == 0
