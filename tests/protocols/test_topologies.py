"""Tests for per-topology protocol adaptations (star, chain, leaf-spine)."""

import pytest

from repro.errors import PlatformError
from repro.platform import PlatformGraph
from repro.protocols import (
    ProtocolConfig,
    chain_relay_config,
    leaf_spine_overlay,
    star_service_order,
    topology_overlay,
)


class TestStarServiceOrder:
    def test_sorted_by_link_cost(self):
        g = PlatformGraph.star(2, [(5, 1), (1, 2), (3, 3)])
        # hosts 1..3 with access costs 5, 1, 3 → serve 2, then 3, then 1
        assert star_service_order(g) == [2, 3, 1]

    def test_cost_ties_break_by_node_id(self):
        g = PlatformGraph.star(1, [(2, 1), (2, 1), (1, 1)])
        assert star_service_order(g) == [3, 1, 2]

    def test_rejects_non_star(self):
        g = PlatformGraph.chain([1, 2, 3], [1, 1])
        with pytest.raises(PlatformError, match="not a star"):
            star_service_order(g)


class TestChainRelayConfig:
    def test_fixed_buffer_config_gains_growth(self):
        base = ProtocolConfig.non_interruptible(3, buffer_growth=False)
        adapted = chain_relay_config(base)
        assert adapted.buffer_growth is True
        assert adapted.initial_buffers == base.initial_buffers
        assert base.buffer_growth is False  # original untouched

    def test_growing_config_passes_through(self):
        base = ProtocolConfig.non_interruptible()
        assert chain_relay_config(base) is base


class TestLeafSpineOverlay:
    def test_head_election_structure(self):
        g = PlatformGraph.leaf_spine([1, 2, 3, 4, 5, 6], hosts_per_leaf=2,
                                     num_spines=2)
        overlay = leaf_spine_overlay(g)
        # Root (host 0) heads rack 0; heads 2 and 4 parent to the root,
        # rack-mates parent to their head.  Overlay ids == graph host ids
        # here (hosts are 0..5 and the root is 0).
        assert overlay.hosts == (0, 1, 2, 3, 4, 5)
        tree = overlay.tree
        assert tree.parent[1] == 0   # root's rack-mate → root
        assert tree.parent[2] == 0   # head of rack 1 → root
        assert tree.parent[3] == 2   # rack-mate → head
        assert tree.parent[4] == 0   # head of rack 2 → root
        assert tree.parent[5] == 4

    def test_head_routes_cross_fabric(self):
        g = PlatformGraph.leaf_spine([1, 2, 3, 4], hosts_per_leaf=2)
        overlay = leaf_spine_overlay(g)
        # A head's route to the root crosses access + two fabric links;
        # a rack-mate's route stays inside the rack (two access links).
        assert len(overlay.routes[2]) == 4
        assert len(overlay.routes[3]) == 2

    def test_rejects_multi_homed_hosts(self):
        g = PlatformGraph([1, None, None, 2],
                          [(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1)])
        with pytest.raises(PlatformError, match="switch links"):
            leaf_spine_overlay(g)


class TestTopologyOverlayDispatch:
    def test_leafspine_meta_gets_head_election(self):
        g = PlatformGraph.leaf_spine([1, 2, 3, 4], hosts_per_leaf=2)
        assert topology_overlay(g) == leaf_spine_overlay(g)

    def test_other_shapes_get_relay_overlay(self):
        for g in (PlatformGraph.star(1, [(1, 1)]),
                  PlatformGraph.chain([1, 2], [3])):
            assert topology_overlay(g) == g.overlay()
