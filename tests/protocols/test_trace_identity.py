"""Event-trace identity: the hot-path refactors must not move a single event.

The kernel's lazy deletion / loop inlining and the agents' cached priority
keys are pure optimizations — same seed, same calendar, bit for bit.  These
tests lock the *full* protocol trace (every kind, including the high-volume
requests) and the kernel-level calendar, with dedicated coverage of the IC
preemption path where cancelled transfer timers and cached keys matter most.
"""

from repro.platform import figure2a_tree
from repro.platform.generator import PAPER_DEFAULTS, generate_tree
from repro.protocols import ProtocolConfig, ProtocolEngine, Tracer
from repro.protocols import trace as trace_mod

IC3 = ProtocolConfig.interruptible(3)
NON_IC = ProtocolConfig.non_interruptible(2, buffer_growth=False)


def _traced_run(tree, config, num_tasks):
    engine = ProtocolEngine(tree, config, num_tasks)
    tracer = Tracer(kinds=trace_mod.ALL_KINDS, limit=None)
    engine.tracer = tracer
    result = engine.run()
    return result, tracer.events


class TestFullTraceIdentity:
    def test_figure2a_ic_trace_identical(self):
        a_result, a_events = _traced_run(figure2a_tree(), IC3, 300)
        b_result, b_events = _traced_run(figure2a_tree(), IC3, 300)
        assert a_result.preemptions > 0  # the IC preemption path is exercised
        assert a_events == b_events
        assert a_result.completion_times == b_result.completion_times

    def test_generated_tree_ic_preemption_trace_identical(self):
        # A random ensemble tree on which IC/FB=3 actually preempts, so the
        # cancelled-timer tombstones and cached priority keys are on the
        # replayed path.
        tree = generate_tree(PAPER_DEFAULTS, seed=11)
        a_result, a_events = _traced_run(tree, IC3, 500)
        b_result, b_events = _traced_run(tree, IC3, 500)
        assert a_result.preemptions > 0
        assert a_events == b_events
        assert a_result.events_processed == b_result.events_processed

    def test_non_ic_trace_identical(self):
        tree = generate_tree(PAPER_DEFAULTS, seed=3)
        a_result, a_events = _traced_run(tree, NON_IC, 400)
        b_result, b_events = _traced_run(tree, NON_IC, 400)
        assert a_events == b_events
        assert a_result.makespan == b_result.makespan


class TestCalendarIdentity:
    """Kernel-level replay: every processed entry at the same virtual time."""

    def _calendar(self, config):
        tree = generate_tree(PAPER_DEFAULTS, seed=11)
        engine = ProtocolEngine(tree, config, 400)
        stamps = []
        engine.env.trace_hook = lambda time, item: stamps.append(
            (time, item.__class__.__name__))
        engine.run()
        return stamps

    def test_ic_calendar_replays(self):
        assert self._calendar(IC3) == self._calendar(IC3)

    def test_non_ic_calendar_replays(self):
        assert self._calendar(NON_IC) == self._calendar(NON_IC)


class TestTracerPropagation:
    """engine.tracer is a property that must reach every agent's cache."""

    def test_setter_reaches_all_agents(self):
        engine = ProtocolEngine(figure2a_tree(), IC3, 10)
        assert all(agent.tracer is None for agent in engine.nodes)
        tracer = Tracer()
        engine.tracer = tracer
        assert engine.tracer is tracer
        assert all(agent.tracer is tracer for agent in engine.nodes)
        engine.tracer = None
        assert all(agent.tracer is None for agent in engine.nodes)

    def test_join_agents_inherit_tracer(self):
        from repro.platform import ChurnSchedule, JoinEvent, PlatformTree

        tree = figure2a_tree()
        cluster = PlatformTree([3, 2], [(0, 1, 1)])
        churn = ChurnSchedule([JoinEvent(at_time=50, parent=tree.root,
                                         subtree=cluster, attach_cost=1)])
        engine = ProtocolEngine(tree, IC3, 200, churn=churn)
        tracer = Tracer(kinds=trace_mod.ALL_KINDS, limit=None)
        engine.tracer = tracer
        before = tree.num_nodes
        engine.run()
        joined = engine.nodes[before:]
        assert joined  # the join actually happened
        assert all(agent.tracer is tracer for agent in joined)
        # ...and the joined nodes' activity was recorded through the cache.
        joined_ids = {agent.id for agent in joined}
        assert any(e.node in joined_ids or e.peer in joined_ids
                   for e in tracer.events)
