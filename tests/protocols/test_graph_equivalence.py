"""Tree-vs-graph bit-identity: the graph engine's correctness anchor.

A tree expressed as a :class:`PlatformGraph` must produce the *same
fingerprint* as the tree engine — same makespan, same completion times,
same buffer high waters, same preemption counts.  Every link of a
tree-degenerate graph carries at most one flow (the single send port
serializes a parent's transfers), so contention never changes a rate,
no timer is rescheduled, and the event calendars coincide exactly.
"""

import pytest

from repro.platform import PlatformGraph, PlatformTree, generate_platform
from repro.platform.generator import generate_tree
from repro.protocols import (
    GraphProtocolEngine,
    ProtocolConfig,
    simulate,
    simulate_graph,
)

SEEDS = [1, 7, 42]
CONFIGS = [
    ProtocolConfig.interruptible(3),
    ProtocolConfig.non_interruptible(),
    ProtocolConfig.non_interruptible(buffer_decay=True),
]
TASKS = 300


def _labels():
    return [c.label for c in CONFIGS]


class TestTreeBitIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("config", CONFIGS, ids=_labels())
    def test_generated_trees_fingerprint_identical(self, seed, config):
        tree = generate_tree(seed=seed)
        want = simulate(tree, config, TASKS).fingerprint()
        got = simulate_graph(tree, config, TASKS).fingerprint()
        assert got == want

    @pytest.mark.parametrize("config", CONFIGS, ids=_labels())
    def test_buffer_timeline_identical(self, config):
        tree = generate_tree(seed=5)
        want = simulate(tree, config, TASKS,
                        record_buffer_timeline=True).fingerprint()
        got = simulate_graph(tree, config, TASKS,
                             record_buffer_timeline=True).fingerprint()
        assert got == want

    def test_explicit_from_tree_embedding(self):
        tree = PlatformTree([4, 2, 6, 8, 3],
                            [(0, 1, 1), (0, 2, 3), (2, 3, 5), (2, 4, 2)])
        graph = PlatformGraph.from_tree(tree)
        config = ProtocolConfig.interruptible(2)
        want = simulate(tree, config, TASKS).fingerprint()
        got = simulate_graph(graph, config, TASKS).fingerprint()
        assert got == want

    def test_no_rate_ever_changes_on_a_tree(self):
        tree = generate_tree(seed=3)
        engine = GraphProtocolEngine(
            tree, ProtocolConfig.interruptible(3), TASKS)
        engine.run()
        assert engine.contention.rate_changes == 0


class TestShapeDegeneracy:
    def test_star_graph_matches_fork_tree(self):
        leaves = [(1, 4), (5, 2), (3, 8), (2, 2)]
        config = ProtocolConfig.non_interruptible()
        want = simulate(PlatformTree.fork(2, leaves), config,
                        TASKS).fingerprint()
        got = simulate_graph(PlatformGraph.star(2, leaves), config,
                             TASKS).fingerprint()
        assert got == want

    def test_chain_graph_matches_linear_chain_tree(self):
        weights, costs = [2, 3, 1, 4], [1, 2, 1]
        config = ProtocolConfig.interruptible(2)
        want = simulate(PlatformTree.linear_chain(weights, costs), config,
                        TASKS).fingerprint()
        got = simulate_graph(PlatformGraph.chain(weights, costs), config,
                             TASKS).fingerprint()
        assert got == want


class TestContendedDeterminism:
    """Shared-link runs have no tree twin, but must still be reproducible."""

    def test_leafspine_repeat_runs_identical(self):
        graph = generate_platform("leafspine", seed=9)
        config = ProtocolConfig.interruptible(3)
        a = simulate_graph(graph, config, 200).fingerprint()
        b = simulate_graph(graph, config, 200).fingerprint()
        assert a == b

    def test_leafspine_actually_contends(self):
        from repro.protocols import topology_overlay

        graph = generate_platform("leafspine", seed=9)
        # The head-election overlay runs root→head and head→mate flows
        # concurrently over shared access links; the relay overlay would
        # degenerate to a one-level fork serialized by the root's port.
        engine = GraphProtocolEngine(
            graph, ProtocolConfig.interruptible(3), 200,
            overlay=topology_overlay(graph))
        engine.run()
        assert engine.contention.rate_changes > 0

    def test_fairshare_never_faster_than_maxmin(self):
        maxmin = generate_platform("leafspine", seed=4)
        fairshare = maxmin.copy()
        fairshare.contention = "fairshare"
        config = ProtocolConfig.interruptible(3)
        mm = simulate_graph(maxmin, config, 200)
        fs = simulate_graph(fairshare, config, 200)
        assert fs.makespan >= mm.makespan

    def test_warp_stands_down_on_graphs(self):
        from dataclasses import replace
        graph = generate_platform("leafspine", seed=9)
        config = replace(ProtocolConfig.interruptible(3), warp=True)
        result = simulate_graph(graph, config, 200)
        assert result.warp.applied is False
        assert "contention" in result.warp.reason
        assert result.fingerprint() == simulate_graph(
            graph, ProtocolConfig.interruptible(3), 200).fingerprint()


class TestWorkerInvariance:
    def test_sweep_workers_bit_identical_on_graphs(self):
        # The PR 3 workers=1 == workers=N invariant extends to graph
        # topologies: max-min's deterministic tie-break keeps per-seed
        # results independent of pool scheduling.
        from repro.experiments.common import ExperimentScale, sweep

        scale = ExperimentScale(trees=4, tasks=120, topology="star")
        configs = [ProtocolConfig.interruptible(2)]
        serial = sweep(configs, scale, workers=1)
        pooled = sweep(configs, scale, workers=2)
        assert serial == pooled
