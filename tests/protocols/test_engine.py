"""Engine-level tests: exact timelines, conservation, determinism, results."""

import pytest

from repro.errors import ProtocolError
from repro.platform import PlatformTree, figure1_tree, figure2a_tree, generate_tree
from repro.platform.generator import TreeGeneratorParams
from repro.protocols import ProtocolConfig, ProtocolEngine, simulate

IC3 = ProtocolConfig.interruptible(3)
SLOW = 10**9  # effectively-infinite compute time


class TestTrivialPlatforms:
    def test_zero_tasks(self):
        result = simulate(PlatformTree.single_node(5), IC3, 0)
        assert result.num_tasks == 0
        assert result.makespan == 0
        assert result.completion_times == ()
        assert result.mean_rate() == 0.0

    def test_negative_tasks_rejected(self):
        with pytest.raises(ProtocolError):
            simulate(PlatformTree.single_node(5), IC3, -1)

    def test_single_node_computes_serially(self):
        result = simulate(PlatformTree.single_node(5), IC3, 4)
        assert result.completion_times == (5, 10, 15, 20)
        assert result.per_node_computed == (4,)

    def test_root_and_one_child_exact_timeline(self):
        """Hand-traced: root w=2 and child (c=1, w=2), 4 tasks, IC/FB=1.

        t=0 root CPU takes task A; root sends task B (arrives t=1).
        t=1 child computes B (done t=3); child re-requests; root sends C
            (arrives t=2, buffered).
        t=2 root finishes A, takes the last task D (done t=4).
        t=3 child finishes B, starts buffered C (done t=5).
        """
        tree = PlatformTree.linear_chain([2, 2], [1])
        result = simulate(tree, ProtocolConfig.interruptible(1), 4)
        assert result.completion_times == (2, 3, 4, 5)
        assert result.per_node_computed == (2, 2)

    def test_pipeline_keeps_fast_child_busy(self):
        """Compute-less root feeding a fast child over a c=1 link: after the
        first arrival the child completes one task every w=1 steps."""
        tree = PlatformTree.linear_chain([SLOW, 1], [1])
        result = simulate(tree, IC3, 6)
        # Root CPU swallows one task forever; the other 5 flow to the child.
        child_times = result.completion_times[:5]
        assert child_times == (2, 3, 4, 5, 6)


class TestConservation:
    @pytest.mark.parametrize("config", [
        IC3,
        ProtocolConfig.interruptible(1),
        ProtocolConfig.non_interruptible(),
        ProtocolConfig.non_interruptible(2, buffer_growth=False),
    ], ids=lambda c: c.label)
    def test_all_tasks_complete_exactly_once(self, config):
        tree = generate_tree(TreeGeneratorParams(min_nodes=10, max_nodes=40),
                             seed=9)
        result = simulate(tree, config, 300)
        assert sum(result.per_node_computed) == 300
        assert len(result.completion_times) == 300

    def test_completion_times_nondecreasing(self):
        result = simulate(figure1_tree(), IC3, 500)
        times = result.completion_times
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_makespan_is_last_completion(self):
        result = simulate(figure1_tree(), IC3, 100)
        assert result.makespan == result.completion_times[-1]


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        tree = generate_tree(TreeGeneratorParams(min_nodes=10, max_nodes=60),
                             seed=4)
        a = simulate(tree, IC3, 400)
        b = simulate(tree, IC3, 400)
        assert a.completion_times == b.completion_times
        assert a.per_node_computed == b.per_node_computed
        assert a.preemptions == b.preemptions

    def test_caller_tree_never_mutated(self):
        tree = figure1_tree()
        snapshot = tree.copy()
        simulate(tree, ProtocolConfig.non_interruptible(), 200)
        assert tree == snapshot


class TestEngineLifecycle:
    def test_engine_single_use(self):
        engine = ProtocolEngine(figure1_tree(), IC3, 10)
        engine.run()
        with pytest.raises(ProtocolError):
            engine.run()

    def test_result_metadata(self):
        result = simulate(figure1_tree(), IC3, 50)
        assert result.config is IC3
        assert result.events_processed > 0
        assert result.transfers > 0

    def test_buffer_timeline_recording(self):
        tree = figure2a_tree()
        result = simulate(tree, ProtocolConfig.non_interruptible(), 200,
                          record_buffer_timeline=True)
        timeline = result.buffer_high_water_at_completion
        assert len(timeline) == 200
        assert all(a <= b for a, b in zip(timeline, timeline[1:]))
        assert timeline[-1] == result.max_buffers

    def test_buffer_timeline_off_by_default(self):
        result = simulate(figure2a_tree(), ProtocolConfig.non_interruptible(), 50)
        assert result.buffer_high_water_at_completion == ()


class TestBufferBehaviour:
    def test_fixed_buffers_never_grow(self):
        result = simulate(figure2a_tree(), ProtocolConfig.interruptible(3), 300)
        assert result.max_buffers == 3
        assert all(b == 3 for b in result.per_node_max_buffers)

    def test_growth_cap_respected(self):
        cfg = ProtocolConfig.non_interruptible(1, max_buffers=2)
        result = simulate(figure2a_tree(), cfg, 300)
        assert result.max_buffers <= 2

    def test_non_ic_growth_on_figure2a(self):
        """Growth must provide at least the 3 buffers Figure 2(a) demands."""
        result = simulate(figure2a_tree(), ProtocolConfig.non_interruptible(), 500)
        assert result.per_node_max_buffers[1] >= 3

    def test_root_never_grows(self):
        result = simulate(figure2a_tree(), ProtocolConfig.non_interruptible(), 300)
        assert result.per_node_max_buffers[0] == 1


class TestPreemption:
    def test_non_ic_never_preempts(self):
        result = simulate(figure2a_tree(), ProtocolConfig.non_interruptible(), 300)
        assert result.preemptions == 0

    def test_ic_preempts_on_figure2a(self):
        """B's requests must interrupt the long sends to C."""
        result = simulate(figure2a_tree(), ProtocolConfig.interruptible(1), 300)
        assert result.preemptions > 0


class TestUsedSubtree:
    def test_used_nodes_match_theory_on_figure1(self):
        from repro.steady_state import allocate

        result = simulate(figure1_tree(), IC3, 2000)
        # Theory says P0, P1, P5 carry all the optimal flow; simulation may
        # touch a couple more during startup but the workhorses must be used.
        for node_id in allocate(figure1_tree()).used_nodes:
            assert node_id in result.used_node_ids

    def test_used_depth(self):
        result = simulate(figure1_tree(), IC3, 500)
        assert 0 < result.used_depth <= figure1_tree().max_depth

    def test_num_used_nodes(self):
        result = simulate(figure1_tree(), IC3, 500)
        assert result.num_used_nodes == len(result.used_node_ids)
