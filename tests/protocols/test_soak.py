"""Soak test: every dynamic feature active in one long run.

Mutations, churn (join + graceful leave), buffer growth *and* decay, and a
tracer all run together on a mid-sized random platform, with the ledger
invariant checked after every calendar entry.  If feature interactions
corrupt any state, this is where it shows.
"""

import pytest

from repro.platform import (
    ChurnSchedule,
    JoinEvent,
    LeaveEvent,
    Mutation,
    MutationSchedule,
    PlatformTree,
    generate_tree,
)
from repro.platform.generator import TreeGeneratorParams
from repro.protocols import ProtocolConfig, ProtocolEngine, Tracer
from repro.protocols import trace as tr

NUM_TASKS = 1500


@pytest.fixture(scope="module")
def soak_engine():
    tree = generate_tree(
        TreeGeneratorParams(min_nodes=60, max_nodes=120), seed=21)
    root_children = tree.children[tree.root]
    mutations = MutationSchedule([
        Mutation(node=root_children[0], attribute="c", value=50,
                 after_tasks=300),
        Mutation(node=root_children[0], attribute="c", value=2,
                 after_tasks=900),
        Mutation(node=root_children[-1], attribute="w", value=3,
                 after_tasks=600),
    ])
    churn = ChurnSchedule([
        JoinEvent(at_time=500, parent=tree.root,
                  subtree=PlatformTree([4, 2], [(0, 1, 1)]), attach_cost=1),
        LeaveEvent(at_time=2000, node=root_children[len(root_children) // 2]),
    ])
    config = ProtocolConfig.non_interruptible(buffer_decay=True)
    engine = ProtocolEngine(tree, config, NUM_TASKS,
                            mutations=mutations, churn=churn,
                            record_buffer_timeline=True)
    tracer = Tracer(limit=200_000)
    engine.tracer = tracer

    checks = [0]

    def invariant(time, item):
        checks[0] += 1
        if checks[0] % 7:  # sample to keep the soak fast
            return
        for node in engine.nodes:
            if not node.is_root:
                assert node.buffers_total == (
                    node.tasks_held + node.requested + node.incoming)
            assert node.child_requests == sum(
                ch.requested for ch in node.children)

    engine.env.trace_hook = invariant
    result = engine.run()
    return engine, tracer, result


class TestSoak:
    def test_all_tasks_conserved(self, soak_engine):
        _engine, _tracer, result = soak_engine
        assert sum(result.per_node_computed) == NUM_TASKS

    def test_mutations_applied(self, soak_engine):
        engine, _tracer, result = soak_engine
        first_child = result.tree.children[result.tree.root][0]
        assert result.tree.c[first_child] == 2  # last mutation won

    def test_churn_happened(self, soak_engine):
        engine, tracer, result = soak_engine
        assert len(result.departed_node_ids) >= 1
        joined = result.tree.num_nodes
        assert result.per_node_computed[joined - 1] >= 0  # joined node exists
        assert tracer.count(tr.MUTATION) == 3

    def test_growth_and_decay_both_fired(self, soak_engine):
        _engine, tracer, result = soak_engine
        assert tracer.count(tr.GROW) > 0
        assert result.buffers_decayed > 0

    def test_quiescent_at_end(self, soak_engine):
        engine, _tracer, _result = soak_engine
        for node in engine.nodes:
            assert node.tasks_held == 0
            assert node.incoming == 0
            assert not node.cpu_busy
            assert node.current_transfer is None
            assert not node.shelf

    def test_timelines_consistent(self, soak_engine):
        _engine, _tracer, result = soak_engine
        assert len(result.buffer_high_water_at_completion) == NUM_TASKS
        assert result.held_high_water_at_completion[-1] == result.max_held
