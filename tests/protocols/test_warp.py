"""Steady-state warp: exactness contract, guards, and memory gating.

The warp's whole value rests on one promise: a warped run and its exact
twin produce identical :meth:`SimulationResult.fingerprint`\\ s — same
completion times, same per-node tallies, same makespan — just faster.  The
property test here hammers that promise across random trees, both protocol
variants, and several buffer counts; the rest pins the guard rails (warp
must stand down under faults, mutations, churn, and tracing) and the
``record_completion_times`` memory gate.
"""

import random

from dataclasses import replace
from fractions import Fraction

import pytest

from repro.metrics import node_utilization, steady_state_rate
from repro.platform.examples import figure2a_tree
from repro.platform.faults import CrashEvent, FaultSchedule
from repro.platform.generator import TreeGeneratorParams, generate_tree
from repro.platform.mutation import Mutation, MutationSchedule
from repro.protocols import ProtocolConfig, Tracer, simulate
from repro.protocols.engine import ProtocolEngine
from repro.sim.warp import LEDGER_CAP, FAR_HORIZON, WarpSummary

IC3 = ProtocolConfig.interruptible(3)
IC3_WARP = ProtocolConfig.interruptible(3, warp=True)


def _random_case(rng, index):
    """One (tree, config, num_tasks) triple for the property test."""
    params = TreeGeneratorParams(
        min_nodes=rng.randint(3, 10),
        max_nodes=rng.randint(10, 35),
        max_comm=rng.choice([2, 4, 8]),
        max_comp=rng.choice([4, 8, 16]),
        comp_divisor=rng.choice([1, 4, 16]),
    )
    tree = generate_tree(params, seed=10_000 + index)
    buffers = rng.randint(1, 4)
    if rng.random() < 0.5:
        config = ProtocolConfig.interruptible(buffers)
    else:
        config = ProtocolConfig.non_interruptible(min(buffers, 3))
    return tree, config, rng.choice([200, 500, 1200])


class TestWarpedEqualsExact:
    def test_property_fingerprints_identical(self):
        """Warped and exact runs agree bit-for-bit on >= 200 random cases.

        Also checks the warp is not vacuous: with short-period trees it
        must actually engage on a meaningful fraction of the ensemble
        (otherwise this test would pass with the warp hook disconnected).
        """
        rng = random.Random(0xBADC0DE)
        applied = 0
        total = 220
        for index in range(total):
            tree, config, tasks = _random_case(rng, index)
            exact = simulate(tree, config, tasks)
            warped = simulate(tree, replace(config, warp=True), tasks)
            assert exact.fingerprint() == warped.fingerprint(), (
                f"warp diverged: case {index}, {config.label}, "
                f"{tree.num_nodes} nodes, {tasks} tasks: {warped.warp}")
            assert warped.warp is not None
            if warped.warp.applied:
                applied += 1
                assert warped.warp.tasks_skipped == (
                    warped.warp.periods * warped.warp.period_tasks)
        assert applied >= total // 5, (
            f"warp engaged on only {applied}/{total} short-period cases")

    def test_figure2a_long_run_warps(self):
        exact = simulate(figure2a_tree(), IC3, 5000)
        warped = simulate(figure2a_tree(), IC3_WARP, 5000)
        assert exact.fingerprint() == warped.fingerprint()
        summary = warped.warp
        assert summary.applied
        assert summary.periods > 0
        assert summary.period_tasks > 0
        assert summary.events_skipped > 0
        # The root's effectively-infinite compute sentinel is a far timer;
        # detection must survive it (this run is the regression witness for
        # the far-horizon split).
        assert figure2a_tree().w[0] > FAR_HORIZON
        assert warped.makespan == exact.makespan

    def test_warp_off_by_default_leaves_no_summary(self):
        result = simulate(figure2a_tree(), IC3, 300)
        assert result.warp is None

    def test_no_recurrence_reports_reason(self):
        # non-IC with unbounded growth on this tree adds a buffer every
        # period forever — the state genuinely never recurs, and the warp
        # must degrade to exact simulation with a reason, not guess.
        config = ProtocolConfig.non_interruptible(warp=True)
        result = simulate(figure2a_tree(), config, 800)
        exact = simulate(figure2a_tree(),
                         ProtocolConfig.non_interruptible(), 800)
        assert result.warp is not None
        assert not result.warp.applied
        assert result.warp.reason
        assert result.warp.periods == 0
        assert result.fingerprint() == exact.fingerprint()

    def test_metrics_agree_between_warped_and_exact(self):
        exact = simulate(figure2a_tree(), IC3, 5000)
        warped = simulate(figure2a_tree(), IC3_WARP, 5000)
        assert list(node_utilization(warped)) == list(node_utilization(exact))
        rate = steady_state_rate(warped)
        assert rate == Fraction(warped.warp.period_tasks,
                                warped.warp.period_time)
        # The detected period's rate is a real throughput: within the
        # window-measured band of the exact run.
        assert rate > 0


class TestGuards:
    def test_faults_disable_warp(self):
        faults = FaultSchedule([CrashEvent(at_time=150, node=2)])
        warped = simulate(figure2a_tree(), IC3_WARP, 2000, faults=faults)
        exact = simulate(figure2a_tree(), IC3, 2000, faults=faults)
        assert not warped.warp.applied
        assert warped.warp.reason == "disabled: dynamic platform schedule active"
        assert warped.fingerprint() == exact.fingerprint()

    def test_mutations_disable_warp(self):
        sched = MutationSchedule([
            Mutation(node=1, attribute="c", value=3, after_tasks=200)])
        warped = simulate(figure2a_tree(), IC3_WARP, 2000, mutations=sched)
        exact = simulate(figure2a_tree(), IC3, 2000, mutations=sched)
        assert not warped.warp.applied
        assert warped.warp.reason == "disabled: dynamic platform schedule active"
        assert warped.fingerprint() == exact.fingerprint()

    def test_tracer_disables_warp(self):
        engine = ProtocolEngine(figure2a_tree(), IC3_WARP, 1000)
        engine.tracer = Tracer()
        result = engine.run()
        assert not result.warp.applied
        assert result.warp.reason == "disabled: tracing active"

    def test_ledger_cap_is_a_backstop(self):
        # Default-parameter trees have lcm-scale periods; the search must
        # give up cleanly instead of hoarding fingerprints forever.
        assert LEDGER_CAP >= 1024
        tree = generate_tree(
            TreeGeneratorParams(min_nodes=40, max_nodes=40), seed=7)
        warped = simulate(tree, IC3_WARP, 2000)
        exact = simulate(tree, IC3, 2000)
        assert warped.fingerprint() == exact.fingerprint()

    def test_summary_is_frozen(self):
        summary = WarpSummary(applied=False, reason="x")
        with pytest.raises(AttributeError):
            summary.applied = True


class TestCompletionTimeGate:
    def test_streaming_aggregates_survive_without_timelines(self):
        full = simulate(figure2a_tree(), IC3, 1500)
        lean = simulate(figure2a_tree(), IC3, 1500,
                        record_completion_times=False)
        assert lean.completion_times == ()
        assert lean.makespan == full.makespan
        assert lean.last_completion_time == full.makespan
        assert lean.per_node_computed == full.per_node_computed
        assert lean.events_processed == full.events_processed

    def test_gate_composes_with_warp(self):
        full = simulate(figure2a_tree(), IC3_WARP, 1500)
        lean = simulate(figure2a_tree(), IC3_WARP, 1500,
                        record_completion_times=False)
        assert lean.warp.applied
        assert lean.completion_times == ()
        assert lean.makespan == full.makespan
        assert list(node_utilization(lean)) == list(node_utilization(full))
