"""Tests for sliding growing-window rates."""

from fractions import Fraction

import numpy as np
import pytest

from repro.errors import ReproError
from repro.metrics import (
    normalized_window_rates,
    num_windows,
    window_rate,
    window_rates,
)


class TestWindowRate:
    def test_paper_definition(self):
        """rate(x) = (2x - x) / (t_2x - t_x)."""
        times = [10, 20, 30, 40, 50, 60]
        assert window_rate(times, 1) == Fraction(1, 10)    # (t2 - t1) = 10
        assert window_rate(times, 2) == Fraction(2, 20)    # (t4 - t2) = 20
        assert window_rate(times, 3) == Fraction(3, 30)

    def test_constant_rate_stream(self):
        times = [5 * i for i in range(1, 41)]
        for x in range(1, 21):
            assert window_rate(times, x) == Fraction(1, 5)

    def test_out_of_range(self):
        with pytest.raises(ReproError):
            window_rate([1, 2, 3, 4], 3)  # needs t_6
        with pytest.raises(ReproError):
            window_rate([1, 2], 0)

    def test_zero_duration_window_saturates(self):
        times = [7, 7, 7, 7]  # burst: four tasks at one timestep
        assert window_rate(times, 2) > 10**6

    def test_negative_duration_rejected(self):
        # Out-of-order completion times are corrupted input, not a burst:
        # they must raise, never report an infinite rate.
        times = [10, 20, 30, 5]  # t_4 < t_2
        with pytest.raises(ReproError, match="out of order"):
            window_rate(times, 2)


class TestWindowRates:
    def test_matches_exact_computation(self):
        times = [3, 7, 10, 18, 21, 30, 33, 40]
        rates = window_rates(times)
        assert len(rates) == num_windows(len(times)) == 4
        for x in range(1, 5):
            assert rates[x - 1] == pytest.approx(float(window_rate(times, x)))

    def test_empty_input(self):
        assert window_rates([]).size == 0
        assert window_rates([5]).size == 0  # a single completion has no window

    def test_num_windows(self):
        assert num_windows(0) == 0
        assert num_windows(9) == 4
        assert num_windows(10) == 5

    def test_negative_duration_rejected_vectorized(self):
        times = [10, 20, 30, 5]
        with pytest.raises(ReproError, match="out of order"):
            window_rates(times)

    def test_zero_duration_still_saturates_vectorized(self):
        assert np.isinf(window_rates([7, 7, 7, 7])).all()


class TestNormalized:
    def test_steady_stream_normalizes_to_one(self):
        times = [4 * i for i in range(1, 101)]
        normalized = normalized_window_rates(times, Fraction(1, 4))
        assert np.allclose(normalized, 1.0)

    def test_below_optimal_stream(self):
        times = [8 * i for i in range(1, 101)]
        normalized = normalized_window_rates(times, Fraction(1, 4))
        assert np.allclose(normalized, 0.5)

    def test_invalid_optimal(self):
        with pytest.raises(ReproError):
            normalized_window_rates([1, 2], 0)
