"""Tests for the onset-of-optimal-steady-state detector."""

from fractions import Fraction

import pytest

from repro.errors import ReproError
from repro.metrics import (
    PAPER_NUM_TASKS,
    PAPER_THRESHOLD_WINDOW,
    default_threshold,
    detect_onset,
    reached_optimal,
)


def stream(rate_fn, n):
    """Completion times where task i completes at rate_fn-cumulated steps."""
    times, t = [], 0
    for i in range(n):
        t += rate_fn(i)
        times.append(t)
    return times


class TestDefaultThreshold:
    def test_paper_scale(self):
        assert default_threshold(PAPER_NUM_TASKS) == PAPER_THRESHOLD_WINDOW

    def test_proportional_scaling(self):
        assert default_threshold(1000) == 30
        assert default_threshold(4000) == 120

    def test_minimum_one(self):
        assert default_threshold(10) == 1

    def test_invalid(self):
        with pytest.raises(ReproError):
            default_threshold(0)


class TestDetectOnset:
    def test_steady_at_optimal_with_wiggle_detected(self):
        """Alternating 5,3 gaps averaging 1/4: odd windows run strictly
        above the optimum (rate x/(4x-1) > 1/4), so crossings accumulate."""
        times = stream(lambda i: 5 if i % 2 == 0 else 3, 400)
        onset = detect_onset(times, Fraction(1, 4), threshold_window=20)
        assert onset is not None
        assert onset > 20

    def test_wiggle_phase_that_never_exceeds(self):
        """The opposite phase (3,5) peaks exactly *at* the optimum on even
        windows and below it on odd ones: strictly-over never happens."""
        times = stream(lambda i: 3 if i % 2 == 0 else 5, 400)
        assert detect_onset(times, Fraction(1, 4), threshold_window=20) is None

    def test_sub_optimal_run_never_detected(self):
        times = stream(lambda i: 5, 400)  # exactly 1/5 < 1/4, never above
        assert detect_onset(times, Fraction(1, 4), threshold_window=20) is None
        assert not reached_optimal(times, Fraction(1, 4), threshold_window=20)

    def test_exactly_at_optimal_never_crosses(self):
        """The criterion is strict: a rate that equals the optimum is not
        'over' it (exact rational comparison, no float fuzz)."""
        times = stream(lambda i: 4, 400)
        assert detect_onset(times, Fraction(1, 4), threshold_window=20) is None

    def test_single_fast_gap_influences_a_window_range(self):
        """One fast gap at task 60 lifts every window [x, 2x] with
        30 <= x <= 60 above optimal — so a threshold beyond that range must
        yield no detection, while a threshold inside it does."""
        times = stream(lambda i: 3 if i == 60 else 5, 300)
        assert detect_onset(times, Fraction(1, 5), threshold_window=60) is None
        assert detect_onset(times, Fraction(1, 5), threshold_window=29) == 32

    def test_onset_is_second_crossing(self):
        """Construct exactly two above-optimal windows past the threshold and
        check the reported onset is the second one's window index."""
        optimal = Fraction(1, 4)
        # Baseline gap 4 (= optimal, never over); two isolated gaps of 2
        # create a bounded run of above-optimal windows.
        times = stream(lambda i: 2 if i in (50, 52) else 4, 400)
        onset = detect_onset(times, optimal, threshold_window=10)
        # Windows containing exactly one fast gap tie at optimal; windows
        # containing both fast gaps are strictly above.  The second such
        # window is the onset.
        crossings = [x for x in range(11, 201)
                     if Fraction(x, times[2 * x - 1] - times[x - 1]) > optimal]
        assert len(crossings) >= 2
        assert onset == crossings[1]

    def test_threshold_excludes_startup_noise(self):
        """Crossings at or before the threshold window don't count."""
        times = stream(lambda i: 2 if i < 40 else 6, 400)
        assert detect_onset(times, Fraction(1, 5), threshold_window=100) is None

    def test_zero_dt_burst_counts_as_over(self):
        times = [5] * 200 + [6 * i for i in range(1, 201)]
        onset = detect_onset(times, Fraction(10**6), threshold_window=10)
        assert onset is not None

    def test_invalid_optimal(self):
        with pytest.raises(ReproError):
            detect_onset([1, 2], 0)

    def test_uses_scaled_default_threshold(self):
        times = stream(lambda i: 3 if i % 2 == 0 else 5, 1000)
        explicit = detect_onset(times, Fraction(1, 4), threshold_window=30)
        assert detect_onset(times, Fraction(1, 4)) == explicit


class TestEndToEnd:
    def test_ic3_on_figure1_reaches_optimal(self):
        from repro.platform import figure1_tree
        from repro.protocols import ProtocolConfig, simulate
        from repro.steady_state import solve_tree

        tree = figure1_tree()
        result = simulate(tree, ProtocolConfig.interruptible(3), 2000)
        optimal = solve_tree(tree).rate
        assert reached_optimal(result.completion_times, optimal)

    def test_starved_protocol_on_figure2a_fails_detection(self):
        from repro.platform import figure2a_tree
        from repro.protocols import ProtocolConfig, simulate
        from repro.steady_state import solve_tree

        tree = figure2a_tree()
        cfg = ProtocolConfig.non_interruptible(1, buffer_growth=False)
        result = simulate(tree, cfg, 2000)
        optimal = solve_tree(tree).rate
        assert not reached_optimal(result.completion_times, optimal)
