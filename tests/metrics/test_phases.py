"""Tests for startup / steady / wind-down phase analysis."""

import pytest

from repro.errors import ReproError
from repro.metrics import phase_breakdown
from repro.platform import PlatformTree, figure1_tree, figure2a_tree
from repro.protocols import ProtocolConfig, simulate
from repro.steady_state import solve_tree

IC3 = ProtocolConfig.interruptible(3)


class TestBreakdownStructure:
    def test_phases_partition_the_makespan(self):
        tree = figure1_tree()
        result = simulate(tree, IC3, 1500)
        phases = phase_breakdown(result, solve_tree(tree).rate)
        assert phases.reached_steady_state
        assert phases.startup + phases.steady + phases.wind_down == \
            phases.makespan
        assert phases.startup > 0
        assert phases.steady > 0
        assert phases.wind_down >= 0
        assert 0 < phases.startup_fraction < 1

    def test_never_reached_gives_none_phases(self):
        tree = figure2a_tree()
        cfg = ProtocolConfig.non_interruptible(1, buffer_growth=False)
        result = simulate(tree, cfg, 1200)
        phases = phase_breakdown(result, solve_tree(tree).rate)
        assert not phases.reached_steady_state
        assert phases.startup is None and phases.steady is None
        assert phases.startup_fraction is None
        assert phases.wind_down >= 0

    def test_empty_run_rejected(self):
        result = simulate(figure1_tree(), IC3, 0)
        with pytest.raises(ReproError):
            phase_breakdown(result, 1)

    def test_repository_exhaustion_recorded(self):
        result = simulate(figure1_tree(), IC3, 500)
        assert result.repository_exhausted_at is not None
        assert result.repository_exhausted_at <= result.makespan


class TestPaperClaims:
    @pytest.mark.parametrize("seed", [11, 42])
    def test_more_buffers_longer_startup(self, seed):
        """§4.2.1: 'with FB=3 we see longer startup phases' than FB=1 — on
        the paper's tree distribution (buffers must fill through the whole
        hierarchy before steady rates emerge)."""
        from repro.platform import generate_tree

        tree = generate_tree(seed=seed)
        optimal = solve_tree(tree).rate
        fb1 = phase_breakdown(simulate(tree, ProtocolConfig.interruptible(1),
                                       2000), optimal)
        fb3 = phase_breakdown(simulate(tree, ProtocolConfig.interruptible(3),
                                       2000), optimal)
        assert fb1.reached_steady_state and fb3.reached_steady_state
        assert fb3.startup > fb1.startup

    def test_wind_down_grows_with_slow_straggler(self):
        slow = PlatformTree.fork(3, [(1, 2), (3, 2000)])
        fast = PlatformTree.fork(3, [(1, 2), (3, 20)])
        r_slow = simulate(slow, IC3, 400)
        r_fast = simulate(fast, IC3, 400)
        p_slow = phase_breakdown(r_slow, solve_tree(slow).rate)
        p_fast = phase_breakdown(r_fast, solve_tree(fast).rate)
        assert p_slow.wind_down > p_fast.wind_down
