"""Tests for buffer stats, usage stats, and ensemble aggregation."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.metrics import (
    UsageStats,
    buffers_at_completions,
    histogram_pdf,
    median_or_none,
    onset_cdf,
    percentage_reached,
    reached_within_buffers,
    summarize,
    usage_stats,
)
from repro.platform import figure1_tree, figure2a_tree
from repro.protocols import ProtocolConfig, simulate


class TestBuffersAt:
    def test_timeline_lookup(self):
        result = simulate(figure2a_tree(), ProtocolConfig.non_interruptible(),
                          300, record_buffer_timeline=True)
        stats = buffers_at_completions(result, [1, 100, 300, 999])
        assert stats[1] >= 1
        assert stats[1] <= stats[100] <= stats[300]
        assert stats[999] is None  # run was shorter

    def test_requires_recording(self):
        result = simulate(figure2a_tree(), ProtocolConfig.non_interruptible(), 50)
        with pytest.raises(ReproError):
            buffers_at_completions(result, [10])

    def test_invalid_count(self):
        result = simulate(figure2a_tree(), ProtocolConfig.non_interruptible(),
                          10, record_buffer_timeline=True)
        with pytest.raises(ReproError):
            buffers_at_completions(result, [0])

    def test_reached_within_buffers_predicate(self):
        assert reached_within_buffers(onset=500, max_buffers=3, budget=3)
        assert not reached_within_buffers(onset=500, max_buffers=4, budget=3)
        assert not reached_within_buffers(onset=None, max_buffers=1, budget=3)


class TestUsage:
    def test_usage_stats_figure1(self):
        result = simulate(figure1_tree(), ProtocolConfig.interruptible(3), 1000)
        stats = usage_stats(result)
        assert stats.total_nodes == 8
        assert stats.total_depth == 2
        assert 1 <= stats.used_nodes <= 8
        assert 0 <= stats.used_depth <= 2
        assert 0 < stats.used_fraction <= 1

    def test_histogram_pdf_sums_to_one(self):
        lefts, fractions = histogram_pdf([1, 1, 2, 5, 5, 5], bin_width=1)
        assert fractions.sum() == pytest.approx(1.0)
        assert fractions[1] == pytest.approx(2 / 6)  # value 1
        assert fractions[5] == pytest.approx(3 / 6)  # value 5

    def test_histogram_pdf_binning(self):
        lefts, fractions = histogram_pdf([0, 9, 10, 19, 20], bin_width=10)
        assert lefts[0] == 0 and lefts[1] == 10
        assert fractions[0] == pytest.approx(2 / 5)

    def test_histogram_pdf_empty(self):
        lefts, fractions = histogram_pdf([])
        assert lefts.size == 0 and fractions.size == 0

    def test_histogram_pdf_invalid_bin(self):
        with pytest.raises(ReproError):
            histogram_pdf([1], bin_width=0)


class TestEnsemble:
    def test_onset_cdf(self):
        onsets = [100, 200, None, 400]
        cdf = onset_cdf(onsets, [50, 100, 250, 1000])
        assert np.allclose(cdf, [0, 0.25, 0.5, 0.75])  # None never counts

    def test_onset_cdf_empty_raises(self):
        with pytest.raises(ReproError):
            onset_cdf([], [1])

    def test_percentage_reached(self):
        assert percentage_reached([1, None, 3, None]) == 50.0
        assert percentage_reached([None]) == 0.0
        with pytest.raises(ReproError):
            percentage_reached([])

    def test_median_or_none(self):
        assert median_or_none([5, None, 1, 3]) == 3
        assert median_or_none([None, None]) is None

    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0, 10.0])
        assert stats["mean"] == 4.0
        assert stats["median"] == 2.5
        assert stats["min"] == 1.0 and stats["max"] == 10.0
        with pytest.raises(ReproError):
            summarize([])
