"""End-to-end open-loop service runs: engines, warp, multi-app, digests."""

import dataclasses

import pytest

from repro import simulate
from repro.apps import Application, Workload
from repro.errors import ProtocolError
from repro.harness.checkpoint import config_digest
from repro.platform import figure1_tree, generate_platform
from repro.platform.faults import CrashEvent, FaultSchedule
from repro.platform.generator import TreeGeneratorParams, generate_tree
from repro.protocols.config import ProtocolConfig
from repro.service import (PeriodicArrivals, PoissonArrivals, QueueDepthBound,
                           TokenBucket)
from repro.sim.warp import REASON_OPEN_LOOP

IC3 = ProtocolConfig.interruptible(3)
IC3_WARP = ProtocolConfig.interruptible(3, warp=True)


def service_invariants(stats):
    assert stats.offered == stats.admitted + stats.dropped
    assert stats.completed == stats.admitted  # open-loop runs drain fully
    assert 0 <= stats.utilization <= 1 + 1e-9
    assert 0 <= stats.saturation <= 1 + 1e-9
    if stats.completed:
        assert stats.latency_total >= 0 and stats.latency_max >= 0
        assert None not in (stats.p50, stats.p95, stats.p99)


class TestClosedBagUnchanged:
    def test_no_arrivals_means_no_service(self):
        result = simulate(figure1_tree(), 50, IC3)
        assert result.service is None

    def test_workload_without_arrivals_matches_int(self):
        tree = figure1_tree()
        assert simulate(tree, Workload(tasks=50), IC3).fingerprint() == \
            simulate(tree, 50, IC3).fingerprint()


class TestOpenLoopRuns:
    @pytest.mark.parametrize("platform", [
        figure1_tree(), generate_platform("star", seed=3),
        generate_platform("leafspine", seed=5),
    ], ids=["tree", "star", "leafspine"])
    def test_poisson_drains_and_accounts(self, platform):
        workload = Workload(
            arrivals=PoissonArrivals(rate=0.05, horizon=4000, seed=1))
        result = simulate(platform, workload, IC3)
        stats = result.service
        service_invariants(stats)
        assert stats.dropped == 0
        assert stats.offered == len(result.completion_times)
        assert result.makespan == result.last_completion_time

    def test_token_bucket_sheds_overload(self):
        workload = Workload(
            arrivals=PeriodicArrivals(interval=2, horizon=4000),
            admission=TokenBucket(rate="1/10", burst=5))
        stats = simulate(figure1_tree(), workload, IC3).service
        service_invariants(stats)
        assert stats.dropped > 0
        assert 0.75 < stats.drop_rate < 0.85  # 1/10 admitted of 1/2 offered

    def test_queue_bound_caps_outstanding_work(self):
        workload = Workload(
            arrivals=PeriodicArrivals(interval=1, horizon=4000, batch=2),
            admission=QueueDepthBound(limit=12))
        stats = simulate(figure1_tree(), workload, IC3).service
        service_invariants(stats)
        assert stats.pending_high_water <= 12
        assert stats.dropped > 0

    def test_no_completion_list_retention(self):
        workload = Workload(
            arrivals=PeriodicArrivals(interval=5, horizon=5000))
        result = simulate(figure1_tree(), workload, IC3,
                          record_completion_times=False)
        assert result.completion_times == ()
        service_invariants(result.service)

    def test_fingerprint_folds_service(self):
        base = Workload(arrivals=PoissonArrivals(rate=0.05, horizon=3000))
        gated = Workload(arrivals=PoissonArrivals(rate=0.05, horizon=3000),
                         admission=TokenBucket(rate="1/25", burst=2))
        tree = figure1_tree()
        assert simulate(tree, base, IC3).fingerprint() != \
            simulate(tree, gated, IC3).fingerprint()


class TestRejections:
    def test_arrivals_exclude_closed_tasks(self):
        with pytest.raises(ProtocolError):
            Workload(tasks=10, arrivals=PeriodicArrivals(interval=1,
                                                         horizon=5))
        with pytest.raises(ProtocolError):
            Application(tasks=10,
                        arrivals=PeriodicArrivals(interval=1, horizon=5))

    def test_admission_requires_arrivals(self):
        with pytest.raises(ProtocolError):
            Workload(tasks=10, admission=TokenBucket(rate=1, burst=1))

    def test_open_loop_rejects_faults(self):
        faults = FaultSchedule([CrashEvent(at_time=50, node=1)])
        workload = Workload(
            arrivals=PeriodicArrivals(interval=5, horizon=500))
        with pytest.raises(ProtocolError):
            simulate(figure1_tree(), workload, IC3, faults=faults)


class TestWarp:
    PARAMS = TreeGeneratorParams(min_nodes=30, max_nodes=30, max_comm=8,
                                 max_comp=16, comp_divisor=16)

    @pytest.mark.parametrize("seed,interval,batch", [
        (1, 40, 2), (2, 25, 1), (5, 60, 3),
    ])
    def test_periodic_warp_is_bit_identical(self, seed, interval, batch):
        tree = generate_tree(self.PARAMS, seed=seed)
        workload = Workload(arrivals=PeriodicArrivals(
            interval=interval, horizon=60_000, batch=batch))
        exact = simulate(tree, workload, IC3)
        warped = simulate(tree, workload, IC3_WARP)
        assert warped.warp is not None and warped.warp.applied
        assert warped.warp.events_skipped > 0
        assert exact.fingerprint() == warped.fingerprint()
        assert exact.service == warped.service  # latency fold included

    def test_aperiodic_stands_down(self):
        workload = Workload(
            arrivals=PoissonArrivals(rate=0.1, horizon=3000))
        result = simulate(figure1_tree(), workload, IC3_WARP)
        assert result.warp is not None and not result.warp.applied
        assert result.warp.reason == REASON_OPEN_LOOP

    def test_periodic_with_admission_warps_identically(self):
        tree = generate_tree(self.PARAMS, seed=1)
        workload = Workload(
            arrivals=PeriodicArrivals(interval=10, horizon=40_000),
            admission=TokenBucket(rate="1/15", burst=8))
        exact = simulate(tree, workload, IC3)
        warped = simulate(tree, workload, IC3_WARP)
        assert warped.warp.applied
        assert exact.fingerprint() == warped.fingerprint()
        assert exact.service == warped.service


class TestMultiApp:
    def test_mixed_closed_and_open_lanes(self):
        workload = Workload(apps=(
            Application(tasks=40),
            Application(arrivals=PoissonArrivals(rate=0.05, horizon=3000,
                                                 seed=2)),
        ))
        result = simulate(figure1_tree(), workload, IC3)
        assert result.apps[0].service is None
        lane_stats = result.apps[1].service
        service_invariants(lane_stats)
        # Merged platform view covers exactly the open-loop lane here.
        assert result.service.offered == lane_stats.offered
        assert result.service.completed == lane_stats.completed

    def test_two_open_lanes_merge(self):
        workload = Workload(apps=(
            Application(arrivals=PeriodicArrivals(interval=25, horizon=2000)),
            Application(arrivals=PeriodicArrivals(interval=35, horizon=2000),
                        arrival=500),
        ))
        result = simulate(figure1_tree(), workload, IC3)
        merged = result.service
        service_invariants(merged)
        assert merged.offered == sum(a.service.offered for a in result.apps)
        assert merged.completed == sum(a.service.completed
                                       for a in result.apps)


class TestSources:
    GRAPH = generate_platform("leafspine", seed=5)

    def hosts(self):
        return [h for h in self.GRAPH.hosts if h != self.GRAPH.root]

    def test_distinct_sources_complete_and_differ(self):
        hosts = self.hosts()
        distinct = simulate(self.GRAPH, Workload(apps=(
            Application(tasks=30), Application(tasks=30, source=hosts[2]),
        )), IC3)
        both_root = simulate(self.GRAPH, Workload(apps=(
            Application(tasks=30), Application(tasks=30),
        )), IC3)
        assert len(distinct.completion_times) == 60
        assert sum(distinct.per_node_computed) == 60
        assert distinct.fingerprint() != both_root.fingerprint()

    def test_single_app_non_root_source(self):
        result = simulate(self.GRAPH, Workload(apps=(
            Application(tasks=20, source=self.hosts()[0]),)), IC3)
        assert len(result.completion_times) == 20

    def test_open_loop_lane_with_source(self):
        result = simulate(self.GRAPH, Workload(apps=(
            Application(arrivals=PeriodicArrivals(interval=30, horizon=1500),
                        source=self.hosts()[1]),)), IC3)
        service_invariants(result.service)
        assert result.service.completed == 50

    def test_non_host_source_rejected(self):
        switch = next(iter(self.GRAPH.switches))
        with pytest.raises(Exception):
            simulate(self.GRAPH, Workload(apps=(
                Application(tasks=5, source=switch),)), IC3)

    def test_faults_with_non_root_source_rejected(self):
        faults = FaultSchedule([CrashEvent(at_time=50,
                                           node=self.hosts()[0])])
        with pytest.raises(ProtocolError):
            simulate(self.GRAPH, Workload(apps=(
                Application(tasks=5, source=self.hosts()[1]),)), IC3,
                faults=faults)


class TestCheckpointDigests:
    def test_open_and_closed_digests_differ(self):
        closed = Workload(tasks=100)
        open_loop = Workload(
            arrivals=PeriodicArrivals(interval=5, horizon=500))
        assert config_digest("exp", closed) != config_digest("exp", open_loop)

    def test_arrival_spec_changes_digest(self):
        a = Workload(arrivals=PeriodicArrivals(interval=5, horizon=500))
        b = Workload(arrivals=PeriodicArrivals(interval=6, horizon=500))
        c = Workload(arrivals=PeriodicArrivals(interval=5, horizon=500),
                     admission=QueueDepthBound(limit=4))
        assert len({config_digest("exp", w) for w in (a, b, c)}) == 3

    def test_closed_bag_repr_is_pre_service_stable(self):
        # The digest contract: specs without arrivals render exactly as
        # they did before service mode existed.
        assert "arrivals" not in repr(Application(5))
        assert "arrivals" not in repr(Workload(tasks=5))
        assert "arrivals" in repr(
            Workload(arrivals=PeriodicArrivals(interval=5, horizon=50)))


class TestTelemetry:
    def test_probes_do_not_change_results(self):
        from repro.telemetry import TelemetryConfig

        workload = Workload(
            arrivals=PoissonArrivals(rate=0.2, horizon=3000, seed=4),
            admission=TokenBucket(rate="1/8", burst=8))
        cfg_tel = dataclasses.replace(
            IC3, telemetry=TelemetryConfig(sample_dt=50))
        plain = simulate(figure1_tree(), workload, IC3)
        probed = simulate(figure1_tree(), workload, cfg_tel)
        assert plain.fingerprint() == probed.fingerprint()
        snap = probed.telemetry
        assert snap.counters["service.offered"] == probed.service.offered
        assert snap.counters["service.dropped"] == probed.service.dropped
        assert "service_in_system" in snap.series
        assert "service_admitted" in snap.series
