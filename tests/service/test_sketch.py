"""Property tests: the streaming quantile sketch vs exact statistics.

Documented error bound (see :mod:`repro.service.slo`): for any stream,
``LatencySketch.quantile(q)`` returns a value within **relative error
``alpha``** of the exact order statistic ``sorted(stream)[int(q * (n -
1))]`` — the bucket midpoint is at most a factor ``(1 + alpha)`` above
and ``(1 - alpha)`` below every value in its bucket.  Against the
interpolating ``statistics.quantiles(..., method="inclusive")`` the
bound gains at most the gap to the next order statistic (interpolation
never leaves the ``[sorted[r], sorted[r + 1]]`` bracket).
"""

import random
import statistics

import pytest

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in the test env
    HAVE_HYPOTHESIS = False

from repro.service import LatencySketch

QS = (0.50, 0.95, 0.99)


def exact_rank(values, q):
    ordered = sorted(values)
    return ordered[int(q * (len(ordered) - 1))]


def assert_within_alpha(sketch, values):
    alpha = sketch.alpha
    for q in QS:
        exact = exact_rank(values, q)
        est = sketch.quantile(q)
        assert abs(est - exact) <= alpha * abs(exact) + 1e-9, \
            f"q={q}: estimate {est} vs exact {exact} (alpha={alpha})"


def fill(values, alpha=0.01):
    sketch = LatencySketch(alpha)
    for v in values:
        sketch.observe(v)
    return sketch


def _streams():
    """Seeded stream shapes spanning seeds, burstiness, and lengths."""
    cases = []
    for seed in range(6):
        rng = random.Random(seed)
        n = rng.choice([3, 10, 100, 1000, 5000])
        shape = seed % 3
        if shape == 0:        # smooth exponential latencies
            values = [rng.expovariate(0.01) for _ in range(n)]
        elif shape == 1:      # bursty: bimodal fast/slow mix
            values = [rng.randint(1, 5) if rng.random() < 0.8
                      else rng.randint(1000, 5000) for _ in range(n)]
        else:                 # heavy-tailed integer latencies
            values = [int(rng.paretovariate(1.2) * 10) for _ in range(n)]
        cases.append((f"seed{seed}-n{n}-shape{shape}", values))
    return cases


@pytest.mark.parametrize("label,values", _streams(),
                         ids=[c[0] for c in _streams()])
def test_quantiles_within_alpha_of_exact(label, values):
    assert_within_alpha(fill(values), values)


@pytest.mark.parametrize("alpha", [0.001, 0.01, 0.05])
def test_alpha_parameter_is_honoured(alpha):
    rng = random.Random(42)
    values = [rng.expovariate(0.005) for _ in range(2000)]
    assert_within_alpha(fill(values, alpha), values)


def test_against_statistics_quantiles():
    rng = random.Random(7)
    values = sorted(rng.expovariate(0.01) for _ in range(999))
    sketch = fill(values)
    # statistics.quantiles with n=100 yields cut points at q = k/100;
    # "inclusive" interpolates between adjacent order statistics.
    cuts = statistics.quantiles(values, n=100, method="inclusive")
    for q, cut in ((0.50, cuts[49]), (0.95, cuts[94]), (0.99, cuts[98])):
        rank = int(q * (len(values) - 1))
        gap = values[min(rank + 1, len(values) - 1)] - values[rank]
        est = sketch.quantile(q)
        assert abs(est - cut) <= sketch.alpha * cut + gap + 1e-9


def test_exact_scalars_and_extremes():
    values = [5, 1, 7, 3, 3]
    sketch = fill(values)
    assert sketch.count == 5
    assert sketch.total == sum(values)   # exact int arithmetic
    assert sketch.max == 7 and sketch.min == 1
    assert sketch.quantile(0.0) <= 1 * 1.01
    assert sketch.quantile(1.0) >= 7 * 0.99


def test_zero_and_empty_handling():
    assert LatencySketch().quantile(0.5) is None
    sketch = fill([0, 0, 0, 10])
    assert sketch.quantile(0.5) == 0.0   # zeros sort first
    assert sketch.zero_count == 3


def test_weighted_observe_equals_repetition():
    a, b = LatencySketch(), LatencySketch()
    for v, k in [(3, 4), (17, 2), (120, 9)]:
        a.observe(v, k)
        for _ in range(k):
            b.observe(v)
    assert a.canonical() == b.canonical()
    assert (a.count, a.total, a.max, a.min) == (b.count, b.total, b.max,
                                                b.min)
    for q in QS:
        assert a.quantile(q) == b.quantile(q)


def test_merge_equals_union():
    rng = random.Random(11)
    left = [rng.expovariate(0.02) for _ in range(500)]
    right = [rng.expovariate(0.002) for _ in range(300)]
    merged = fill(left)
    merged.merge(fill(right))
    union = fill(left + right)
    assert merged.canonical() == union.canonical()
    assert merged.count == union.count
    assert_within_alpha(merged, left + right)


def test_merge_rejects_mismatched_alpha():
    with pytest.raises(ValueError):
        LatencySketch(0.01).merge(LatencySketch(0.02))


def test_canonical_round_trip():
    sketch = fill([1, 5, 5, 900, 0])
    rebuilt = LatencySketch.from_canonical(sketch.alpha, sketch.canonical(),
                                           sketch.zero_count)
    assert rebuilt.canonical() == sketch.canonical()
    assert rebuilt.count == sketch.count
    for q in QS:
        assert rebuilt.quantile(q) == sketch.quantile(q)


if HAVE_HYPOTHESIS:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.one_of(
        st.integers(min_value=1, max_value=10**6),
        st.floats(min_value=1e-3, max_value=1e6, allow_nan=False,
                  allow_infinity=False)),
        min_size=1, max_size=400))
    def test_property_quantiles_within_alpha(values):
        assert_within_alpha(fill(values), values)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10**5),
                    min_size=1, max_size=200),
           st.lists(st.integers(min_value=0, max_value=10**5),
                    min_size=1, max_size=200))
    def test_property_merge_equals_union(left, right):
        merged = fill(left)
        merged.merge(fill(right))
        assert merged.canonical() == fill(left + right).canonical()
