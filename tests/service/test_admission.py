"""Admission-policy semantics and the spec/state split."""

from fractions import Fraction

import pytest

from repro.service import (AlwaysAdmit, QueueDepthBound, TokenBucket,
                           parse_admission)


class TestAlwaysAdmit:
    def test_admits_everything(self):
        state = AlwaysAdmit().state()
        assert state.admit(0, 5, 0) == 5
        assert state.admit(100, 3, 10**9) == 3
        assert state.fingerprint_state(100) == ()


class TestQueueDepthBound:
    def test_bounds_in_system(self):
        state = QueueDepthBound(limit=10).state()
        assert state.admit(0, 4, 0) == 4
        assert state.admit(1, 4, 8) == 2      # room-capped
        assert state.admit(2, 4, 10) == 0     # full
        assert state.admit(3, 4, 12) == 0     # over-full stays closed

    def test_states_are_independent(self):
        policy = QueueDepthBound(limit=1)
        assert policy.state().admit(0, 1, 0) == 1
        assert policy.state().admit(0, 1, 0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueDepthBound(limit=0)


class TestTokenBucket:
    def test_starts_full_and_refills_exactly(self):
        state = TokenBucket(rate="1/7", burst=3).state()
        assert state.admit(0, 5, 0) == 3       # full bucket drained
        assert state.admit(6, 5, 0) == 0       # 6/7 tokens: not yet one
        assert state.admit(7, 5, 0) == 1       # exactly one banked
        assert state.tokens == 0

    def test_burst_caps_banked_tokens(self):
        state = TokenBucket(rate=1, burst=4).state()
        state.admit(0, 4, 0)
        assert state.admit(100, 10, 0) == 4    # 100 steps bank only burst

    def test_fractional_tokens_are_exact(self):
        assert TokenBucket(rate="1/7", burst=1).rate == Fraction(1, 7)
        state = TokenBucket(rate="1/3", burst=2).state()
        state.admit(0, 2, 0)
        granted = sum(state.admit(t, 1, 0) for t in range(1, 31))
        assert granted == 10                   # 30 steps at 1/3: exactly 10

    def test_fingerprint_is_time_relative(self):
        state = TokenBucket(rate="1/7", burst=3).state()
        state.admit(0, 5, 0)
        before = state.fingerprint_state(3)
        state.shift(1000)
        assert state.fingerprint_state(1003) == before

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


class TestParse:
    def test_round_trips(self):
        assert parse_admission("always") == AlwaysAdmit()
        assert parse_admission("queue:limit=64") == QueueDepthBound(limit=64)
        assert parse_admission("token:rate=1/20,burst=16") == \
            TokenBucket(rate=Fraction(1, 20), burst=16)

    @pytest.mark.parametrize("spec", [
        "queue",                       # missing limit
        "token:rate=0.1",              # missing burst
        "token:rate=0.1,burst=2,x=1",  # unknown key
        "lottery:odds=1",              # unknown kind
    ])
    def test_bad_strings_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_admission(spec)
