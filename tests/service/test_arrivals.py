"""Arrival-process contracts: determinism, laziness, stream shape."""

import itertools

import pytest

from repro.service import (ArrivalProcess, BurstArrivals, DiurnalArrivals,
                           PeriodicArrivals, PoissonArrivals, parse_arrivals)

PROCESSES = [
    PoissonArrivals(rate=0.05, horizon=5000, seed=3),
    BurstArrivals(rate=0.01, horizon=5000, min_size=2, max_size=5, seed=9),
    DiurnalArrivals(rates=(0.01, 0.2, 0.05), phase_len=700, horizon=5000,
                    seed=4),
    PeriodicArrivals(interval=17, horizon=5000, batch=3, phase=5),
]


@pytest.mark.parametrize("process", PROCESSES,
                         ids=lambda p: type(p).__name__)
class TestStreamShape:
    def test_events_are_increasing_int_times(self, process):
        events = list(process.events())
        assert events, "stream should emit at least one event"
        times = [t for t, _ in events]
        assert all(isinstance(t, int) for t in times)
        assert all(a < b for a, b in zip(times, times[1:]))
        assert times[0] >= 0 and times[-1] < process.horizon
        assert all(count >= 1 for _, count in events)

    def test_fresh_iterators_are_identical(self, process):
        assert list(process.events()) == list(process.events())

    def test_stream_is_lazy(self, process):
        # Consuming a prefix must not require materializing the rest.
        iterator = process.events()
        prefix = list(itertools.islice(iterator, 5))
        assert len(prefix) == 5
        assert list(iterator) == list(process.events())[5:]


class TestSeeding:
    def test_seed_changes_the_stream(self):
        a = list(PoissonArrivals(rate=0.05, horizon=5000, seed=0).events())
        b = list(PoissonArrivals(rate=0.05, horizon=5000, seed=1).events())
        assert a != b

    def test_rate_scales_volume(self):
        slow = sum(c for _, c in
                   PoissonArrivals(rate=0.01, horizon=50_000).events())
        fast = sum(c for _, c in
                   PoissonArrivals(rate=0.1, horizon=50_000).events())
        assert 5 * slow < fast  # ~10x on average

    def test_diurnal_phases_modulate_rate(self):
        process = DiurnalArrivals(rates=(0.0, 0.5), phase_len=1000,
                                  horizon=10_000, seed=2)
        by_phase = [0, 0]
        for t, count in process.events():
            by_phase[(t // 1000) % 2] += count
        assert by_phase[0] == 0  # silent phase stays silent
        assert by_phase[1] > 100


class TestPeriodic:
    def test_analytic_counts(self):
        process = PeriodicArrivals(interval=20, horizon=1000, batch=2,
                                   phase=10)
        events = list(process.events())
        assert len(events) == process.num_events == 50
        assert process.total_tasks == 100
        assert events[0] == (10, 2) and events[1] == (30, 2)

    def test_skip_matches_manual_advance(self):
        process = PeriodicArrivals(interval=7, horizon=500, batch=1)
        fast, slow = process.events(), process.events()
        fast.skip(13)
        for _ in range(13):
            next(slow)
        assert list(fast) == list(slow)

    def test_is_periodic_flag(self):
        assert PeriodicArrivals(interval=1, horizon=2).is_periodic
        assert not PoissonArrivals(rate=1, horizon=2).is_periodic
        assert ArrivalProcess.is_periodic is False


class TestValidation:
    @pytest.mark.parametrize("factory", [
        lambda: PoissonArrivals(rate=0, horizon=10),
        lambda: PoissonArrivals(rate=1, horizon=0),
        lambda: BurstArrivals(rate=1, horizon=10, min_size=0),
        lambda: BurstArrivals(rate=1, horizon=10, min_size=5, max_size=2),
        lambda: DiurnalArrivals(rates=(), phase_len=10, horizon=10),
        lambda: DiurnalArrivals(rates=(0.0,), phase_len=10, horizon=10),
        lambda: DiurnalArrivals(rates=(0.1,), phase_len=0, horizon=10),
        lambda: PeriodicArrivals(interval=0, horizon=10),
        lambda: PeriodicArrivals(interval=3, horizon=10, batch=0),
        lambda: PeriodicArrivals(interval=3, horizon=10, phase=10),
    ])
    def test_bad_specs_rejected(self, factory):
        with pytest.raises(ValueError):
            factory()


class TestParse:
    def test_round_trips(self):
        assert parse_arrivals("poisson:rate=0.05,horizon=1000,seed=3") == \
            PoissonArrivals(rate=0.05, horizon=1000, seed=3)
        assert parse_arrivals("burst:rate=0.01,horizon=500,min=2,max=4") == \
            BurstArrivals(rate=0.01, horizon=500, min_size=2, max_size=4)
        assert parse_arrivals(
            "diurnal:rates=0.01/0.2,phase=100,horizon=1000") == \
            DiurnalArrivals(rates=(0.01, 0.2), phase_len=100, horizon=1000)
        assert parse_arrivals("periodic:interval=20,horizon=400,batch=2") == \
            PeriodicArrivals(interval=20, horizon=400, batch=2)

    @pytest.mark.parametrize("spec", [
        "poisson",                                # no body
        "poisson:rate=0.1",                       # missing horizon
        "poisson:rate=0.1,horizon=10,bogus=1",    # unknown key
        "metronome:interval=5,horizon=10",        # unknown kind
        "periodic:interval",                      # not key=value
    ])
    def test_bad_strings_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_arrivals(spec)
