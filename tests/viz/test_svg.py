"""Tests for the SVG charting primitives."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import ReproError
from repro.viz import LineChart, StepChart, nice_ticks

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text):
    return ET.fromstring(svg_text)


class TestNiceTicks:
    def test_simple_range(self):
        ticks = nice_ticks(0, 10)
        assert ticks[0] == 0 and ticks[-1] == 10
        steps = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
        assert len(steps) == 1  # uniform spacing

    def test_one_two_five_spacing(self):
        for lo, hi in ((0, 1), (0, 37), (0, 420), (3, 7)):
            ticks = nice_ticks(lo, hi)
            step = ticks[1] - ticks[0]
            mantissa = step / (10 ** int(f"{step:e}".split("e")[1]))
            assert round(mantissa, 6) in (1.0, 2.0, 5.0, 10.0)

    def test_ticks_cover_range(self):
        ticks = nice_ticks(2.3, 97.1)
        assert all(2.3 <= t <= 97.1 for t in ticks)
        assert len(ticks) >= 2

    def test_degenerate_range(self):
        ticks = nice_ticks(5, 5)
        assert len(ticks) >= 2

    def test_reversed_range(self):
        assert nice_ticks(10, 0) == nice_ticks(0, 10)

    def test_non_finite_rejected(self):
        with pytest.raises(ReproError):
            nice_ticks(0, float("inf"))


class TestLineChart:
    def chart(self):
        chart = LineChart("Title", "x axis", "y axis")
        chart.add_series("alpha", [(0, 0), (10, 5), (20, 3)])
        chart.add_series("beta", [(0, 1), (20, 1)], dashed=True)
        chart.add_hline(4.0)
        return chart

    def test_well_formed_xml(self):
        root = parse(self.chart().render())
        assert root.tag == f"{SVG_NS}svg"

    def test_one_polyline_per_series_plus_hline(self):
        root = parse(self.chart().render())
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) == 2
        dashed = [p for p in polylines if p.get("stroke-dasharray")]
        assert len(dashed) == 1

    def test_labels_present(self):
        text = self.chart().render()
        assert "Title" in text and "x axis" in text and "y axis" in text
        assert "alpha" in text and "beta" in text

    def test_points_stay_inside_plot_frame(self):
        chart = LineChart("t", "x", "y")
        chart.y_min, chart.y_max = 0, 1
        chart.add_series("spiky", [(0, 0.5), (1, 99.0), (2, 0.5)])  # clamps
        root = parse(chart.render())
        poly = root.find(f"{SVG_NS}polyline")
        ys = [float(pair.split(",")[1]) for pair in poly.get("points").split()]
        assert all(20 <= y <= 400 for y in ys)

    def test_empty_series_rejected(self):
        with pytest.raises(ReproError):
            LineChart("t", "x", "y").add_series("none", [])

    def test_render_without_series_rejected(self):
        with pytest.raises(ReproError):
            LineChart("t", "x", "y").render()

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ReproError):
            LineChart("t", "x", "y", width=10, height=10)

    def test_xml_escaping(self):
        chart = LineChart("a < b & c", "x", "y")
        chart.add_series("s<1>", [(0, 0), (1, 1)])
        root = parse(chart.render())  # must not raise
        assert "a < b & c" in "".join(root.itertext())


class TestStepChart:
    def test_distribution_renders_steps(self):
        chart = StepChart("pdf", "value", "fraction")
        chart.add_distribution("d", [0, 10, 20], [0.2, 0.5, 0.3], bin_width=10)
        root = parse(chart.render())
        poly = root.find(f"{SVG_NS}polyline")
        # 3 bins → 6 step points
        assert len(poly.get("points").split()) == 6

    def test_mismatched_lengths_rejected(self):
        chart = StepChart("pdf", "v", "f")
        with pytest.raises(ReproError):
            chart.add_distribution("d", [0, 1], [0.5], bin_width=1)

    def test_empty_distribution_rejected(self):
        chart = StepChart("pdf", "v", "f")
        with pytest.raises(ReproError):
            chart.add_distribution("d", [], [], bin_width=1)
