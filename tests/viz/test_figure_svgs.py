"""Tests for figure rendering (micro-scale experiment → valid SVG)."""

import xml.etree.ElementTree as ET

import pytest

from repro.experiments import ExperimentScale, fig3, fig4, fig5, fig6, fig7
from repro.platform.generator import TreeGeneratorParams
from repro.viz import fig3_svg, fig4_svg, fig5_svg, fig6_svg, fig7_svg, save_all

SVG_NS = "{http://www.w3.org/2000/svg}"
MICRO = ExperimentScale(trees=4, tasks=600)
MICRO_PARAMS = TreeGeneratorParams(min_nodes=8, max_nodes=40)


def assert_valid_svg(text, min_polylines=1):
    root = ET.fromstring(text)
    assert root.tag == f"{SVG_NS}svg"
    assert len(root.findall(f"{SVG_NS}polyline")) >= min_polylines
    return root


class TestFigureRenderers:
    def test_fig3(self):
        result = fig3.run(MICRO, MICRO_PARAMS, candidates=5, sample_points=8)
        text = fig3_svg(result)
        assert_valid_svg(text, min_polylines=3)
        assert "Figure 3" in text

    def test_fig4(self):
        result = fig4.run(MICRO, MICRO_PARAMS)
        text = fig4_svg(result)
        assert_valid_svg(text, min_polylines=4)
        assert "IC, FB=3" in text

    def test_fig5(self):
        scale = ExperimentScale(trees=2, tasks=600)
        result = fig5.run(scale, MICRO_PARAMS)
        text = fig5_svg(result)
        assert_valid_svg(text, min_polylines=8)  # 4 classes × 2 protocols

    def test_fig6_both_dimensions(self):
        result = fig6.run(MICRO, MICRO_PARAMS)
        for dimension in ("nodes", "depth"):
            text = fig6_svg(result, dimension=dimension)
            assert_valid_svg(text, min_polylines=3)

    def test_fig7(self):
        result = fig7.run(ExperimentScale(trees=1, tasks=600))
        text = fig7_svg(result)
        # 3 scenario curves + 3 dashed optimal references
        root = assert_valid_svg(text, min_polylines=6)
        dashed = [p for p in root.findall(f"{SVG_NS}polyline")
                  if p.get("stroke-dasharray")]
        assert len(dashed) == 3


class TestSaveAll:
    def test_writes_files(self, tmp_path, monkeypatch):
        # save_all uses the default generator params; shrink the scale so
        # the test stays fast.
        paths = save_all(str(tmp_path), scale=ExperimentScale(trees=3, tasks=600))
        assert set(paths) == {"fig3", "fig4", "fig5", "fig6a", "fig7"}
        for path in paths.values():
            text = open(path).read()
            ET.fromstring(text)
