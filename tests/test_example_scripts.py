"""Integration tests: every example script runs clean end to end.

The examples carry their own assertions (tracking errors, conservation,
optimality claims), so a zero exit status means the scenario's claims held.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

ALL_EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py"))


def test_every_example_is_covered_here():
    """A new example must be added to the parametrization below."""
    assert ALL_EXAMPLES == [
        "dynamic_pool.py",
        "grid_deployment.py",
        "overlay_construction.py",
        "quickstart.py",
        "volunteer_computing.py",
    ]


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must narrate what they show"


def test_volunteer_computing_accepts_seed_argument():
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "volunteer_computing.py"),
         "42"],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
