"""Tests for kernel instrumentation hooks."""

import pytest

from repro.sim import Environment
from repro.sim.monitor import KindCounter, TraceRecorder, attach, detach


class TestTraceRecorder:
    def test_records_time_and_kind(self):
        env = Environment()
        rec = TraceRecorder()
        attach(env, rec)
        env.call_in(2, lambda: None)
        env.timeout(5)
        env.run()
        assert [t for t, _ in rec.records] == [2, 5]
        assert [k for _, k in rec.records] == ["Timer", "Timeout"]

    def test_limit_drops_oldest(self):
        env = Environment()
        rec = TraceRecorder(limit=3)
        attach(env, rec)
        for i in range(5):
            env.call_in(i + 1, lambda: None)
        env.run()
        assert len(rec) == 3
        assert rec.dropped == 2
        assert rec.records[0][0] == 3

    def test_unlimited(self):
        env = Environment()
        rec = TraceRecorder(limit=None)
        attach(env, rec)
        for i in range(10):
            env.call_in(1, lambda: None)
        env.run()
        assert len(rec) == 10 and rec.dropped == 0


class TestKindCounter:
    def test_counts_by_class(self):
        env = Environment()
        counter = KindCounter()
        attach(env, counter)
        env.call_in(1, lambda: None)
        env.timeout(1)
        env.timeout(2)
        env.run()
        assert counter.counts["Timer"] == 1
        assert counter.counts["Timeout"] == 2
        assert counter.total() == 3


class TestAttachDetach:
    def test_attach_conflict_raises(self):
        env = Environment()
        attach(env, KindCounter())
        with pytest.raises(ValueError):
            attach(env, KindCounter())

    def test_attach_same_hook_twice_ok(self):
        env = Environment()
        hook = KindCounter()
        attach(env, hook)
        attach(env, hook)

    def test_detach(self):
        env = Environment()
        attach(env, KindCounter())
        detach(env)
        assert env.trace_hook is None
        attach(env, KindCounter())  # free slot again
