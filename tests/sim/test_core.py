"""Tests for the event-loop core: clock, calendar ordering, timers, run()."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Infinity


class TestClock:
    def test_starts_at_zero(self):
        assert Environment().now == 0

    def test_custom_initial_time(self):
        assert Environment(initial_time=100).now == 100

    def test_time_advances_to_timer(self):
        env = Environment()
        env.call_in(7, lambda: None)
        env.run()
        assert env.now == 7

    def test_integer_times_stay_integral(self):
        env = Environment()
        seen = []
        env.call_in(3, lambda: seen.append(env.now))
        env.run()
        assert seen == [3] and isinstance(seen[0], int)


class TestTimers:
    def test_call_in_executes_with_args(self):
        env = Environment()
        out = []
        env.call_in(1, out.append, "x")
        env.run()
        assert out == ["x"]

    def test_call_at_absolute(self):
        env = Environment(initial_time=10)
        out = []
        env.call_at(15, lambda: out.append(env.now))
        env.run()
        assert out == [15]

    def test_call_at_past_raises(self):
        env = Environment(initial_time=10)
        with pytest.raises(SimulationError):
            env.call_at(9, lambda: None)

    def test_negative_delay_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.call_in(-1, lambda: None)

    def test_zero_delay_runs_now(self):
        env = Environment()
        out = []
        env.call_in(0, lambda: out.append(env.now))
        env.run()
        assert out == [0]

    def test_cancel_prevents_execution(self):
        env = Environment()
        out = []
        t = env.call_in(5, out.append, 1)
        t.cancel()
        env.run()
        assert out == []

    def test_cancel_after_fire_is_noop(self):
        env = Environment()
        t = env.call_in(1, lambda: None)
        env.run()
        t.cancel()  # must not raise

    def test_active_property(self):
        env = Environment()
        t = env.call_in(1, lambda: None)
        assert t.active
        t.cancel()
        assert not t.active

    def test_active_false_after_fire(self):
        env = Environment()
        t = env.call_in(1, lambda: None)
        env.run()
        assert not t.active

    def test_fifo_order_at_equal_times(self):
        env = Environment()
        out = []
        for i in range(5):
            env.call_in(3, out.append, i)
        env.run()
        assert out == [0, 1, 2, 3, 4]

    def test_interleaved_times_sorted(self):
        env = Environment()
        out = []
        for delay in (5, 1, 4, 2, 3):
            env.call_in(delay, out.append, delay)
        env.run()
        assert out == [1, 2, 3, 4, 5]

    def test_timer_scheduled_from_timer(self):
        env = Environment()
        out = []
        env.call_in(1, lambda: env.call_in(2, lambda: out.append(env.now)))
        env.run()
        assert out == [3]


class TestPeek:
    def test_peek_empty(self):
        assert Environment().peek() == Infinity

    def test_peek_returns_next_time(self):
        env = Environment()
        env.call_in(9, lambda: None)
        env.call_in(4, lambda: None)
        assert env.peek() == 4

    def test_peek_skips_cancelled(self):
        env = Environment()
        t = env.call_in(1, lambda: None)
        env.call_in(2, lambda: None)
        t.cancel()
        assert env.peek() == 2

    def test_is_empty(self):
        env = Environment()
        assert env.is_empty()
        t = env.call_in(1, lambda: None)
        assert not env.is_empty()
        t.cancel()
        assert env.is_empty()


class TestRun:
    def test_run_until_time_stops_before_events_at_bound(self):
        env = Environment()
        out = []
        env.call_in(5, out.append, "at5")
        env.call_in(10, out.append, "at10")
        env.run(until=10)
        assert out == ["at5"]
        assert env.now == 10

    def test_run_until_past_raises(self):
        env = Environment(initial_time=5)
        with pytest.raises(SimulationError):
            env.run(until=1)

    def test_run_until_beyond_heap_advances_clock(self):
        env = Environment()
        env.call_in(2, lambda: None)
        env.run(until=100)
        assert env.now == 100

    def test_run_empty_returns_none(self):
        assert Environment().run() is None

    def test_run_can_be_resumed(self):
        env = Environment()
        out = []
        env.call_in(5, out.append, 1)
        env.call_in(15, out.append, 2)
        env.run(until=10)
        assert out == [1]
        env.run()
        assert out == [1, 2]

    def test_run_until_event_returns_value(self):
        env = Environment()
        ev = env.event()
        env.call_in(3, ev.succeed, "done")
        assert env.run(until=ev) == "done"
        assert env.now == 3

    def test_run_until_never_triggered_event_raises(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(SimulationError):
            env.run(until=ev)

    def test_run_until_failed_event_raises_its_exception(self):
        env = Environment()
        ev = env.event()
        env.call_in(1, ev.fail, ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            env.run(until=ev)

    def test_step_on_empty_raises(self):
        with pytest.raises(SimulationError):
            Environment().step()

    def test_processed_count_increments(self):
        env = Environment()
        for _ in range(4):
            env.call_in(1, lambda: None)
        env.run()
        assert env.processed_count == 4

    def test_cancelled_timers_not_counted(self):
        env = Environment()
        t = env.call_in(1, lambda: None)
        env.call_in(2, lambda: None)
        t.cancel()
        env.run()
        assert env.processed_count == 1


class TestDeterminism:
    def test_identical_schedules_identical_traces(self):
        def trace():
            env = Environment()
            out = []
            for i, d in enumerate((3, 1, 3, 2)):
                env.call_in(d, out.append, (env.now + d, i))
            env.run()
            return out

        assert trace() == trace()
