"""Tests for Store / FilterStore / PriorityStore."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, FilterStore, PriorityItem, PriorityStore, Store


@pytest.fixture
def env():
    return Environment()


class TestStore:
    def test_capacity_positive(self, env):
        with pytest.raises(SimulationError):
            Store(env, capacity=0)

    def test_put_then_get(self, env):
        store = Store(env)
        got = []

        def producer(env):
            yield store.put("item")

        def consumer(env):
            got.append((yield store.get()))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == ["item"]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((env.now, item))

        def producer(env):
            yield env.timeout(7)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(7, "late")]

    def test_put_blocks_when_full(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer(env):
            for i in range(2):
                yield store.put(i)
                log.append((env.now, f"put-{i}"))

        def consumer(env):
            yield env.timeout(5)
            item = yield store.get()
            log.append((env.now, f"got-{item}"))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert log == [(0, "put-0"), (5, "got-0"), (5, "put-1")]

    def test_fifo_item_order(self, env):
        store = Store(env)
        for i in range(3):
            store.put(i)
        got = []

        def consumer(env):
            for _ in range(3):
                got.append((yield store.get()))

        env.process(consumer(env))
        env.run()
        assert got == [0, 1, 2]

    def test_multiple_consumers_fifo(self, env):
        store = Store(env)
        got = []

        def consumer(env, name):
            item = yield store.get()
            got.append((name, item))

        env.process(consumer(env, "first"))
        env.process(consumer(env, "second"))
        env.run(until=2)
        store.put("x")
        store.put("y")
        env.run()
        assert got == [("first", "x"), ("second", "y")]

    def test_items_attribute_reflects_content(self, env):
        store = Store(env)
        store.put("a")
        env.run()
        assert store.items == ["a"]


class TestFilterStore:
    def test_get_matching_item_only(self, env):
        store = FilterStore(env)
        for item in ("apple", "banana", "cherry"):
            store.put(item)
        got = []

        def consumer(env):
            got.append((yield store.get(lambda x: x.startswith("b"))))

        env.process(consumer(env))
        env.run()
        assert got == ["banana"]
        assert sorted(store.items) == ["apple", "cherry"]

    def test_waits_for_matching_item(self, env):
        store = FilterStore(env)
        got = []

        def consumer(env):
            item = yield store.get(lambda x: x == "wanted")
            got.append((env.now, item))

        def producer(env):
            yield store.put("other")
            yield env.timeout(3)
            yield store.put("wanted")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(3, "wanted")]

    def test_default_filter_accepts_anything(self, env):
        store = FilterStore(env)
        store.put(123)
        got = []

        def consumer(env):
            got.append((yield store.get()))

        env.process(consumer(env))
        env.run()
        assert got == [123]

    def test_blocked_consumer_does_not_starve_others(self, env):
        store = FilterStore(env)
        got = []

        def picky(env):
            got.append(("picky", (yield store.get(lambda x: x == "never"))))

        def easy(env):
            got.append(("easy", (yield store.get())))

        env.process(picky(env))
        env.process(easy(env))
        env.run(until=1)
        store.put("generic")
        env.run(until=2)
        assert got == [("easy", "generic")]


class TestPriorityStore:
    def test_smallest_item_first(self, env):
        store = PriorityStore(env)
        for value in (5, 1, 3):
            store.put(value)
        got = []

        def consumer(env):
            for _ in range(3):
                got.append((yield store.get()))

        env.process(consumer(env))
        env.run()
        assert got == [1, 3, 5]

    def test_priority_item_ordering(self):
        a = PriorityItem(1, "urgent")
        b = PriorityItem(2, "later")
        assert a < b
        assert a == PriorityItem(1, "urgent")
        assert not (a == PriorityItem(1, "different"))

    def test_priority_item_eq_non_item(self):
        assert PriorityItem(1, "x").__eq__(42) is NotImplemented

    def test_priority_items_in_store(self, env):
        store = PriorityStore(env)
        store.put(PriorityItem(9, "low"))
        store.put(PriorityItem(1, "high"))
        got = []

        def consumer(env):
            got.append((yield store.get()).item)

        env.process(consumer(env))
        env.run()
        assert got == ["high"]
