"""Tests for coroutine processes: sequencing, return values, interrupts."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Interrupt


@pytest.fixture
def env():
    return Environment()


class TestBasics:
    def test_sequential_timeouts(self, env):
        log = []

        def proc(env):
            yield env.timeout(2)
            log.append(env.now)
            yield env.timeout(3)
            log.append(env.now)

        env.process(proc(env))
        env.run()
        assert log == [2, 5]

    def test_return_value_becomes_event_value(self, env):
        def proc(env):
            yield env.timeout(1)
            return "result"

        assert env.run(until=env.process(proc(env))) == "result"

    def test_non_generator_raises(self, env):
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_body_does_not_run_before_loop(self, env):
        log = []

        def proc(env):
            log.append("started")
            yield env.timeout(1)

        env.process(proc(env))
        assert log == []
        env.run()
        assert log == ["started"]

    def test_timeout_value_passed_to_yield(self, env):
        got = []

        def proc(env):
            got.append((yield env.timeout(1, value="tv")))

        env.process(proc(env))
        env.run()
        assert got == ["tv"]

    def test_yield_non_event_fails_process(self, env):
        def proc(env):
            yield 42

        p = env.process(proc(env))
        with pytest.raises(SimulationError, match="non-event"):
            env.run(until=p)

    def test_yield_foreign_event_fails_process(self, env):
        other = Environment()

        def proc(env):
            yield other.timeout(1)

        p = env.process(proc(env))
        with pytest.raises(SimulationError, match="different environment"):
            env.run(until=p)

    def test_exception_in_body_propagates(self, env):
        def proc(env):
            yield env.timeout(1)
            raise KeyError("inside")

        p = env.process(proc(env))
        with pytest.raises(KeyError):
            env.run(until=p)

    def test_is_alive_transitions(self, env):
        def proc(env):
            yield env.timeout(5)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive


class TestComposition:
    def test_wait_for_another_process(self, env):
        def child(env):
            yield env.timeout(3)
            return "child-done"

        def parent(env):
            value = yield env.process(child(env))
            return (env.now, value)

        assert env.run(until=env.process(parent(env))) == (3, "child-done")

    def test_wait_for_already_finished_process(self, env):
        def child(env):
            yield env.timeout(1)
            return 9

        c = env.process(child(env))

        def parent(env):
            yield env.timeout(5)
            value = yield c  # c processed long ago
            return (env.now, value)

        assert env.run(until=env.process(parent(env))) == (5, 9)

    def test_failure_propagates_to_waiter(self, env):
        def child(env):
            yield env.timeout(1)
            raise RuntimeError("child crash")

        def parent(env):
            try:
                yield env.process(child(env))
            except RuntimeError as exc:
                return f"caught {exc}"

        assert env.run(until=env.process(parent(env))) == "caught child crash"

    def test_two_processes_interleave(self, env):
        log = []

        def proc(env, name, delay):
            for _ in range(3):
                yield env.timeout(delay)
                log.append((env.now, name))

        env.process(proc(env, "a", 2))
        env.process(proc(env, "b", 3))
        env.run()
        # At t=6 both fire; "b" scheduled its timeout at t=3, before "a" did
        # at t=4, so "b" is processed first (FIFO at equal times).
        assert log == [(2, "a"), (3, "b"), (4, "a"), (6, "b"), (6, "a"), (9, "b")]

    def test_wait_on_condition(self, env):
        def proc(env):
            yield env.timeout(1) & env.timeout(4)
            return env.now

        assert env.run(until=env.process(proc(env))) == 4


class TestInterrupts:
    def test_interrupt_delivers_cause(self, env):
        log = []

        def victim(env):
            try:
                yield env.timeout(10)
            except Interrupt as i:
                log.append((env.now, i.cause))

        v = env.process(victim(env))

        def attacker(env):
            yield env.timeout(3)
            v.interrupt("reason")

        env.process(attacker(env))
        env.run()
        assert log == [(3, "reason")]

    def test_interrupted_process_can_continue(self, env):
        log = []

        def victim(env):
            remaining = 10
            start = env.now
            try:
                yield env.timeout(remaining)
            except Interrupt:
                remaining -= env.now - start
            yield env.timeout(remaining)
            log.append(env.now)

        v = env.process(victim(env))
        env.call_in(4, v.interrupt)
        env.run()
        assert log == [10]  # total waiting time preserved across interrupt

    def test_interrupt_terminated_process_raises(self, env):
        def proc(env):
            yield env.timeout(1)

        p = env.process(proc(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_self_interrupt_raises(self, env):
        errors = []

        def proc(env):
            try:
                p.interrupt()
            except SimulationError as exc:
                errors.append(str(exc))
            yield env.timeout(1)

        p = env.process(proc(env))
        env.run()
        assert errors and "itself" in errors[0]

    def test_uncaught_interrupt_fails_process(self, env):
        def victim(env):
            yield env.timeout(10)

        v = env.process(victim(env))
        env.call_in(1, v.interrupt, "zap")
        with pytest.raises(Interrupt):
            env.run(until=v)

    def test_interrupt_does_not_cancel_target_event(self, env):
        """The event the victim waited on still fires for other waiters."""
        log = []
        shared = env.timeout(5, value="shared")
        shared.add_callback(lambda e: log.append(env.now))

        def victim(env):
            try:
                yield shared
            except Interrupt:
                log.append("interrupted")

        v = env.process(victim(env))
        env.call_in(2, v.interrupt)
        env.run()
        assert log == ["interrupted", 5]

    def test_multiple_interrupts(self, env):
        log = []

        def victim(env):
            for _ in range(2):
                try:
                    yield env.timeout(10)
                except Interrupt as i:
                    log.append((env.now, i.cause))
            yield env.timeout(1)
            log.append(env.now)

        v = env.process(victim(env))
        env.call_in(1, v.interrupt, "first")
        env.call_in(2, v.interrupt, "second")
        env.run()
        assert log == [(1, "first"), (2, "second"), 3]

    def test_active_process_visible_inside_body(self, env):
        seen = []

        def proc(env):
            seen.append(env.active_process)
            yield env.timeout(1)

        p = env.process(proc(env))
        env.run()
        assert seen == [p]
        assert env.active_process is None
